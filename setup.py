"""Setuptools shim.

The offline evaluation environment ships setuptools without the ``wheel``
package, so PEP 660 editable installs (which build a wheel) fail.  Keeping a
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works without network access.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
