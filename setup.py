"""Setuptools shim.

The offline evaluation environment ships setuptools without the ``wheel``
package, so PEP 660 editable installs (which build a wheel) fail — and
modern pip refuses ``--no-use-pep517`` without wheel too.  Keeping a
``setup.py`` preserves the one editable path that works fully offline::

    python setup.py develop

Online, plain ``pip install -e .`` works (pip's isolated build fetches
setuptools + wheel).  All project metadata lives in ``pyproject.toml``;
setuptools >= 61 reads it on both paths.
"""

from setuptools import setup

setup()
