"""Figure 20: sensitivity studies — MoS page size and large memory footprints.

* Figure 20a — SQLite throughput on advanced HAMS (hams-TE) while sweeping
  the MoS page size from 4 KB to 1 MB.  Reproduced shape: mid-sized pages
  (tens to low hundreds of KB) win; tiny pages lose the prefetch benefit and
  huge pages pay too much migration on misses for random workloads.
* Figure 20b — a stress test that grows the dataset to 44 GB (paper scale):
  hams-TE loses ground to the oracle because misses become frequent, but it
  still clearly outperforms mmap.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import format_table
from repro.runner import RunSpec
from repro.units import GB, KB

from conftest import emit, BENCH_SCALE, record_figure, run_once

PAGE_SIZES = [KB(4), KB(16), KB(64), KB(128), KB(256), KB(1024)]
SQLITE_WORKLOADS = ["seqSel", "rndSel", "seqIns", "rndIns", "update"]
STRESS_WORKLOADS = ["seqSel", "rndSel", "update"]


def test_fig20a_page_size_sweep(benchmark, bench_runner):
    def experiment():
        # One spec per (workload, page size): the config override travels to
        # the worker, which rebuilds hams-TE with the swept MoS page size.
        sweep = bench_runner.collect([
            RunSpec("hams-TE", workload,
                    config_overrides={"hams": {"mos_page_bytes": page_size}},
                    label=f"{page_size // 1024}KB")
            for workload in SQLITE_WORKLOADS
            for page_size in PAGE_SIZES
        ])
        return {workload: {f"{page_size // 1024}KB":
                           sweep.get(f"{page_size // 1024}KB", workload)
                           .operations_per_second
                           for page_size in PAGE_SIZES}
                for workload in SQLITE_WORKLOADS}

    table = run_once(benchmark, experiment)
    emit()
    emit(format_table(table, title="Figure 20a: SQLite throughput (ops/s) "
                                    "vs MoS page size (hams-TE)",
                       float_format="{:.0f}", row_header="workload"))

    record_figure("fig20a", {"page_size_sweep_ops_per_s": table})
    for workload, row in table.items():
        best = max(row, key=row.get)
        emit(f"  best page size for {workload}: {best}")
    # Mid-sized pages beat the 1 MB extreme for the random workloads.
    assert table["rndSel"]["128KB"] >= table["rndSel"]["1024KB"]
    assert table["rndIns"]["128KB"] >= table["rndIns"]["1024KB"]


def test_fig20b_large_memory_footprint(benchmark, bench_runner):
    def experiment():
        # 44 GB at paper scale, shrunk by the same capacity factor as the rest
        # of the system; the oracle DIMM is sized up through the registry's
        # platform kwargs so it still holds the stressed dataset.
        stressed_bytes = BENCH_SCALE.scaled_bytes(GB(44))
        stress = bench_runner.collect([
            RunSpec(platform, workload,
                    dataset_bytes_override=stressed_bytes,
                    platform_kwargs=({"capacity_bytes": stressed_bytes * 2}
                                     if platform == "oracle" else {}))
            for workload in STRESS_WORKLOADS
            for platform in ("mmap", "hams-TE", "oracle")
        ])
        return {workload: {platform: stress.get(platform, workload)
                           .operations_per_second
                           for platform in ("mmap", "hams-TE", "oracle")}
                for workload in STRESS_WORKLOADS}

    table = run_once(benchmark, experiment)
    emit()
    emit(format_table(table, title="Figure 20b: 44 GB-footprint stress test "
                                    "(ops/s)", float_format="{:.0f}",
                       row_header="workload"))
    record_figure("fig20b", {"stress_test_ops_per_s": table})

    for workload, row in table.items():
        # hams-TE trails the oracle but clearly beats mmap (paper: -24% vs
        # oracle, +181% vs mmap).
        assert row["oracle"] >= row["hams-TE"]
        assert row["hams-TE"] > row["mmap"]
