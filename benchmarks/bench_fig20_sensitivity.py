"""Figure 20: sensitivity studies — MoS page size and large memory footprints.

* Figure 20a — SQLite throughput on advanced HAMS (hams-TE) while sweeping
  the MoS page size from 4 KB to 1 MB.  Reproduced shape: mid-sized pages
  (tens to low hundreds of KB) win; tiny pages lose the prefetch benefit and
  huge pages pay too much migration on misses for random workloads.
* Figure 20b — a stress test that grows the dataset to 44 GB (paper scale):
  hams-TE loses ground to the oracle because misses become frequent, but it
  still clearly outperforms mmap.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.analysis.reporting import format_table
from repro.platforms.hams_platform import HAMSPlatform
from repro.platforms.mmap_platform import MmapPlatform
from repro.platforms.oracle import OraclePlatform
from repro.units import GB, KB
from repro.workloads.registry import build_trace

from conftest import emit, BENCH_SCALE, run_once

PAGE_SIZES = [KB(4), KB(16), KB(64), KB(128), KB(256), KB(1024)]
SQLITE_WORKLOADS = ["seqSel", "rndSel", "seqIns", "rndIns", "update"]
STRESS_WORKLOADS = ["seqSel", "rndSel", "update"]


def test_fig20a_page_size_sweep(benchmark, bench_runner):
    def experiment():
        table: Dict[str, Dict[str, float]] = {}
        for workload in SQLITE_WORKLOADS:
            trace = bench_runner.trace(workload)
            table[workload] = {}
            for page_size in PAGE_SIZES:
                config = bench_runner.config.with_hams(mos_page_bytes=page_size)
                platform = HAMSPlatform(config, variant="hams-TE")
                result = platform.run(trace)
                table[workload][f"{page_size // 1024}KB"] = \
                    result.operations_per_second
        return table

    table = run_once(benchmark, experiment)
    emit()
    emit(format_table(table, title="Figure 20a: SQLite throughput (ops/s) "
                                    "vs MoS page size (hams-TE)",
                       float_format="{:.0f}", row_header="workload"))

    for workload, row in table.items():
        best = max(row, key=row.get)
        emit(f"  best page size for {workload}: {best}")
    # Mid-sized pages beat the 1 MB extreme for the random workloads.
    assert table["rndSel"]["128KB"] >= table["rndSel"]["1024KB"]
    assert table["rndIns"]["128KB"] >= table["rndIns"]["1024KB"]


def test_fig20b_large_memory_footprint(benchmark, bench_runner):
    def experiment():
        # 44 GB at paper scale, shrunk by the same capacity factor as the rest
        # of the system.
        stressed_bytes = BENCH_SCALE.scaled_bytes(GB(44))
        table: Dict[str, Dict[str, float]] = {}
        for workload in STRESS_WORKLOADS:
            trace = build_trace(workload, BENCH_SCALE,
                                dataset_bytes_override=stressed_bytes)
            results = {
                "mmap": MmapPlatform(bench_runner.config).run(trace),
                "hams-TE": HAMSPlatform(bench_runner.config,
                                        variant="hams-TE").run(trace),
                "oracle": OraclePlatform(bench_runner.config,
                                         capacity_bytes=stressed_bytes * 2
                                         ).run(trace),
            }
            table[workload] = {name: result.operations_per_second
                               for name, result in results.items()}
        return table

    table = run_once(benchmark, experiment)
    emit()
    emit(format_table(table, title="Figure 20b: 44 GB-footprint stress test "
                                    "(ops/s)", float_format="{:.0f}",
                       row_header="workload"))

    for workload, row in table.items():
        # hams-TE trails the oracle but clearly beats mmap (paper: -24% vs
        # oracle, +181% vs mmap).
        assert row["oracle"] >= row["hams-TE"]
        assert row["hams-TE"] > row["mmap"]
