#!/usr/bin/env python3
"""Adaptive-sweep efficiency benchmark: same knee, half the accesses.

The adaptive sweep driver (``src/repro/sweep/``) exists so fig20-style
sensitivity studies stop paying for the flat parts of their grids.  This
benchmark holds it to that promise on the page-size study: a dense
quarter-octave ``mos_page_bytes`` grid (29 cells, 16 KB..2 MB) on the two
HAMS integrations, workload ``rndRd`` — the curve rises to a mid-page peak
and collapses past it, exactly the knee Figure 20a plots.

Per platform, two sweeps run against **separate** run caches:

* the **fixed grid** — every cell, the baseline cost; its metric curve
  defines the reference knee (max discrete curvature, the same
  :func:`repro.sweep.knee_index` the driver uses);
* the **adaptive** sweep — seeds 5 of 29 cells, refines where the
  curvature exceeds the tolerance.

Asserted, per platform:

* **knee parity** — the adaptive knee equals the full grid's knee;
* **cost** — the adaptive run simulates at most ``MAX_COST_FRACTION``
  (50%) of the grid's total estimated accesses;
* **cell parity** — every cell the adaptive run resolved is bit-identical
  to the same cell of the fixed grid (the golden-parity contract).

The record lands as ``results/BENCH_adaptive_sweep.json``.  Runs
standalone (``python benchmarks/bench_adaptive_sweep.py``) and as a
pytest-benchmark test (``pytest benchmarks/bench_adaptive_sweep.py``).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.api import Session
from repro.runner.artifacts import run_result_to_dict
from repro.sweep import knee_index
from repro.workloads.registry import ExperimentScale

#: Schema tag of the JSON record this benchmark writes.
ADAPTIVE_BENCH_SCHEMA = "repro.bench-adaptive-sweep/1"

#: Ceiling on adaptive spend as a fraction of the full grid's cost.
MAX_COST_FRACTION = 0.5

#: Large enough that the page-size knee is a real feature of the curve
#: (it needs page faults, migrations and cache pressure to show), small
#: enough that both sweeps finish in seconds.
SCALE = ExperimentScale(capacity_scale=1 / 256, min_accesses=600,
                        max_accesses=1200)

KB = 1024
#: Quarter-octave geometric grid snapped to the 4 KB mos-page quantum —
#: dense enough that a fixed-grid study visibly overpays, geometric so the
#: metric curve is smooth in grid-index space (the axis fig20a plots).
PAGE_GRID = [size for size in sorted(
    {max(1, round(4 * 2 ** (step / 4))) * 4 * KB for step in range(33)})
    if size <= 2048 * KB]

PLATFORMS = ("hams-TE", "hams-LE")
WORKLOAD = "rndRd"
TOLERANCE = 0.06
SEED_POINTS = 5

DEFAULT_OUTPUT = Path(__file__).parent / "results" / \
    "BENCH_adaptive_sweep.json"


def measure(workers: Optional[int] = None) -> Dict[str, Dict[str, Any]]:
    """Run grid + adaptive per platform; return the comparison rows."""
    rows: Dict[str, Dict[str, Any]] = {}
    with tempfile.TemporaryDirectory(prefix="bench-adaptive-") as tmp:
        for platform in PLATFORMS:
            grid_session = Session(SCALE, workers=workers,
                                   cache_dir=Path(tmp) / f"grid-{platform}")
            started = time.perf_counter()
            grid = grid_session.sweep(platform, [WORKLOAD], "hams",
                                      "mos_page_bytes", PAGE_GRID)
            grid_seconds = time.perf_counter() - started
            curve = {index: grid.get(str(value), WORKLOAD)
                     .operations_per_second
                     for index, value in enumerate(PAGE_GRID)}
            grid_knee_idx = knee_index(curve)
            grid_knee = (PAGE_GRID[grid_knee_idx]
                         if grid_knee_idx is not None else None)

            adaptive_session = Session(
                SCALE, workers=workers,
                cache_dir=Path(tmp) / f"adaptive-{platform}")
            started = time.perf_counter()
            adaptive = adaptive_session.adaptive_sweep(
                platform, [WORKLOAD], "hams", "mos_page_bytes", PAGE_GRID,
                tolerance=TOLERANCE, seed_points=SEED_POINTS)
            adaptive_seconds = time.perf_counter() - started

            mismatched = [
                cell.label for cell in
                adaptive.evaluated_cells + adaptive.skipped_cells
                if run_result_to_dict(
                    adaptive.experiment.get(cell.label, WORKLOAD))
                != run_result_to_dict(grid.get(cell.label, WORKLOAD))]
            rows[platform] = {
                "grid_cells": len(PAGE_GRID),
                "grid_cost": adaptive.grid_cost,
                "grid_knee": grid_knee,
                "grid_seconds": grid_seconds,
                "adaptive_cells": len(adaptive.evaluated_cells),
                "adaptive_cost": adaptive.spent_cost,
                "adaptive_knee": adaptive.knees[WORKLOAD],
                "adaptive_rounds": len(adaptive.rounds),
                "adaptive_seconds": adaptive_seconds,
                "cost_fraction": (adaptive.spent_cost / adaptive.grid_cost
                                  if adaptive.grid_cost else 0.0),
                "stop_reason": adaptive.stop_reason,
                "mismatched_cells": mismatched,
            }
    return rows


def check(rows: Dict[str, Dict[str, Any]]) -> None:
    for platform, row in rows.items():
        assert row["adaptive_knee"] == row["grid_knee"], (
            f"{platform}: adaptive knee {row['adaptive_knee']} != "
            f"grid knee {row['grid_knee']}")
        assert row["cost_fraction"] <= MAX_COST_FRACTION, (
            f"{platform}: adaptive spent {row['cost_fraction']:.0%} of the "
            f"grid's accesses (ceiling {MAX_COST_FRACTION:.0%})")
        assert not row["mismatched_cells"], (
            f"{platform}: cells diverged from the fixed grid: "
            f"{row['mismatched_cells']}")


def write_record(rows: Dict[str, Dict[str, Any]], path: Path) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": ADAPTIVE_BENCH_SCHEMA,
        "created_unix": time.time(),
        "max_cost_fraction": MAX_COST_FRACTION,
        "tolerance": TOLERANCE,
        "seed_points": SEED_POINTS,
        "workload": WORKLOAD,
        "page_grid": PAGE_GRID,
        "platforms": rows,
    }
    path.write_text(json.dumps(payload, sort_keys=True, indent=1),
                    encoding="utf-8")
    return path


def _report(rows: Dict[str, Dict[str, Any]]) -> str:
    lines = [f"{'platform':10s} {'grid':>10s} {'adaptive':>10s} "
             f"{'spend':>7s} {'knee':>8s} {'rounds':>6s}"]
    for platform, row in rows.items():
        lines.append(
            f"{platform:10s} "
            f"{row['grid_cells']:6d} cell {row['adaptive_cells']:6d} cell "
            f"{row['cost_fraction']:6.0%} "
            f"{(row['adaptive_knee'] or 0) // KB:6d}KB "
            f"{row['adaptive_rounds']:6d}")
    return "\n".join(lines)


def test_adaptive_sweep_recovers_the_knee_cheaply(benchmark):
    """pytest-benchmark wrapper; asserts knee parity and the cost ceiling."""
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    path = write_record(rows, DEFAULT_OUTPUT)
    print()
    print(_report(rows))
    print(f"-> {path}")
    check(rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="adaptive vs fixed-grid page-size sweep: knee parity "
                    "and simulated-access savings")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON record path "
                             "(default: results/BENCH_adaptive_sweep.json)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: $REPRO_WORKERS or "
                             "CPU count)")
    args = parser.parse_args(argv)
    rows = measure(workers=args.workers)
    print(_report(rows))
    print(f"-> {write_record(rows, args.output)}")
    try:
        check(rows)
    except AssertionError as error:
        print(f"FAIL: {error}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
