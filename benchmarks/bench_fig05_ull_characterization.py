"""Figure 5: ULL-Flash vs NVMe SSD device characterisation.

* Figure 5a — average 4 KB access latency of DDR4 vs ULL-Flash,
* Figure 5b — 4 KB latency vs I/O queue depth (1..32) for both SSDs,
* Figure 5c — bandwidth vs I/O queue depth for both SSDs.

The paper's headline observations reproduced here: the ULL-Flash 4 KB read
sits within a small factor of a DDR4 page access (8 us vs 2.4 us class),
its latency stays flat as the queue deepens while the conventional NVMe SSD
degrades, and it reaches peak bandwidth at much lower queue depths.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.reporting import format_series, format_table
from repro.config import DDRConfig
from repro.flash.ssd import SSD, make_ssd
from repro.memory.dram import DRAMDevice
from repro.units import GB, KB, MB, to_us, bandwidth_gbps

from conftest import emit, record_figure, run_once

QUEUE_DEPTHS = [1, 2, 4, 8, 16, 32]
DEVICE_CAPACITY = MB(512)
IO_SIZE = KB(4)
IOS_PER_DEPTH = 64


def _drive(ssd: SSD, depth: int, is_write: bool, sequential: bool) -> Dict[str, float]:
    """Issue IOS_PER_DEPTH 4 KB requests keeping *depth* of them in flight."""
    ssd.precondition(0, min(ssd.logical_pages, 4 * IOS_PER_DEPTH * depth))
    latencies: List[float] = []
    finish_times: List[float] = []
    submit = 0.0
    for index in range(IOS_PER_DEPTH):
        offset = (index * IO_SIZE if sequential
                  else ((index * 7919) % (ssd.capacity_bytes // IO_SIZE)) * IO_SIZE)
        result = (ssd.write(offset, IO_SIZE, submit)
                  if is_write else ssd.read(offset, IO_SIZE, submit))
        latencies.append(result.latency_ns)
        finish_times.append(result.finish_ns)
        # A queue of the given depth keeps `depth` commands outstanding: the
        # next submission happens as soon as a slot frees.
        window = finish_times[-depth:] if depth <= len(finish_times) else finish_times
        submit = max(submit, min(window)) if len(finish_times) >= depth else submit
    elapsed = max(finish_times)
    return {
        "latency_us": to_us(sum(latencies) / len(latencies)),
        "bandwidth_gbps": bandwidth_gbps(IOS_PER_DEPTH * IO_SIZE, elapsed),
    }


def _figure_5a() -> Dict[str, Dict[str, float]]:
    dram = DRAMDevice(DDRConfig(), GB(1))
    ull = make_ssd("ull-flash", capacity_bytes=DEVICE_CAPACITY)
    ull.precondition(0, 256)
    read = ull.read(0, IO_SIZE, 0.0)
    write = ull.write(IO_SIZE, IO_SIZE, read.finish_ns)
    return {
        "DDR4": {"read_us": to_us(dram.bulk_access_ns(IO_SIZE)),
                 "write_us": to_us(dram.bulk_access_ns(IO_SIZE))},
        "ULL-Flash": {"read_us": to_us(read.latency_ns),
                      "write_us": to_us(write.latency_ns)},
    }


def _sweep(device_kind: str, is_write: bool, sequential: bool,
           metric: str) -> Dict[str, float]:
    series = {}
    for depth in QUEUE_DEPTHS:
        ssd = make_ssd(device_kind, capacity_bytes=DEVICE_CAPACITY)
        series[str(depth)] = _drive(ssd, depth, is_write, sequential)[metric]
    return series


def test_fig05_ull_flash_characterization(benchmark):
    def experiment():
        fig5a = _figure_5a()
        latency_series = {
            "ULL seqRd": _sweep("ull-flash", False, True, "latency_us"),
            "ULL rndRd": _sweep("ull-flash", False, False, "latency_us"),
            "NVMe seqRd": _sweep("nvme-ssd", False, True, "latency_us"),
            "NVMe rndRd": _sweep("nvme-ssd", False, False, "latency_us"),
        }
        bandwidth_series = {
            "ULL seqRd": _sweep("ull-flash", False, True, "bandwidth_gbps"),
            "ULL seqWr": _sweep("ull-flash", True, True, "bandwidth_gbps"),
            "NVMe seqRd": _sweep("nvme-ssd", False, True, "bandwidth_gbps"),
            "NVMe seqWr": _sweep("nvme-ssd", True, True, "bandwidth_gbps"),
        }
        return fig5a, latency_series, bandwidth_series

    fig5a, latency_series, bandwidth_series = run_once(benchmark, experiment)

    emit()
    emit(format_table(fig5a, title="Figure 5a: 4KB access latency (us)"))
    emit()
    emit(format_series(latency_series,
                        title="Figure 5b: 4KB read latency (us) vs queue depth"))
    emit()
    emit(format_series(bandwidth_series,
                        title="Figure 5c: bandwidth (GB/s) vs queue depth"))
    record_figure("fig05", {"fig05a_latency_us": fig5a,
                            "fig05b_latency_us_vs_depth": latency_series,
                            "fig05c_bandwidth_gbps_vs_depth": bandwidth_series})

    # Shape checks mirroring the paper's observations.
    assert fig5a["ULL-Flash"]["read_us"] < 15.0
    assert fig5a["ULL-Flash"]["read_us"] > fig5a["DDR4"]["read_us"]
    # ULL-Flash latency stays flat with depth; the conventional SSD is slower.
    assert latency_series["ULL rndRd"]["32"] < latency_series["NVMe rndRd"]["32"]
    # ULL-Flash delivers more bandwidth than the NVMe SSD.
    assert bandwidth_series["ULL seqRd"]["32"] > bandwidth_series["NVMe seqRd"]["32"]
