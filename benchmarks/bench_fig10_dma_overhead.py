"""Figure 10a: interface/DMA share of the memory access time in baseline HAMS.

The loosely-coupled HAMS moves every miss over PCIe after crossing the DDR4
controller, and the paper measures that this interface time contributes a
large share (up to ~39-47 %) of the average memory access time — the
motivation for the aggressive integration.  The benchmark reports, per
workload, the DMA share of the memory delay for the baseline (loose) design
and, for contrast, for the advanced (tight) design where the PCIe hop is
gone.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import format_table

from conftest import emit, record_figure, run_once

WORKLOADS = ["rndRd", "rndWr", "seqRd", "seqWr", "rndIns", "seqIns",
             "update", "rndSel", "seqSel"]


def test_fig10a_dma_overhead(benchmark, bench_runner):
    def experiment():
        # The controller publishes its DMA share through the run result's
        # extras, so the workers' platforms never need to come back whole.
        matrix = bench_runner.compare(["hams-LE", "hams-TE"], WORKLOADS)
        return {
            workload: {
                "hams-L dma share": matrix.get("hams-LE", workload)
                .extras["dma_overhead_fraction"],
                "hams-T dma share": matrix.get("hams-TE", workload)
                .extras["dma_overhead_fraction"],
            }
            for workload in WORKLOADS
        }

    table = run_once(benchmark, experiment)
    emit()
    emit(format_table(table, title="Figure 10a: DMA/interface share of "
                                    "memory delay", row_header="workload"))
    record_figure("fig10a", {"dma_share": table})

    loose_shares = [row["hams-L dma share"] for row in table.values()]
    tight_shares = [row["hams-T dma share"] for row in table.values()]
    average_loose = sum(loose_shares) / len(loose_shares)
    average_tight = sum(tight_shares) / len(tight_shares)
    emit(f"\naverage DMA share: hams-L={average_loose:.2f} "
          f"hams-T={average_tight:.2f}")
    # The PCIe datapath makes the interface a significant fraction of the
    # memory time, and the tight integration reduces it.
    assert average_loose > 0.10
    assert average_tight < average_loose
