#!/usr/bin/env python3
"""Scenario-engine overhead microbenchmark: what attribution costs.

The multi-tenant scenario engine (``src/repro/scenario/``) merges N
tenant streams onto one issue clock, tags every access with its tenant,
and splits the platform's statistics back out per tenant during replay.
All of that rides the same batched replay loop as a plain run, so the
engine's promise is that attribution is close to free.

Two comparisons are recorded as ``results/BENCH_scenario.json``; only
the second is asserted:

* **mixed vs solo** (recorded) — the attributed mix's accesses/s against
  each tenant replayed alone on a fresh platform.  This gap is dominated
  by *contention*, not machinery: the interleaved stream makes tenants
  evict each other from the DRAM cache and touches several working sets
  per replay chunk, so the platform legitimately simulates more work.
  That is the phenomenon the subsystem exists to study, and it grows
  with scale — so it is reported, not gated.
* **overhead** (asserted <= ``MAX_OVERHEAD``) — end-to-end
  ``run_scenario`` (mix construction + policy install + attributed
  replay + per-tenant harvest) against constructing the same mix and
  replaying it with a plain ``platform.run``.  Identical accesses,
  identical contention; the ratio isolates exactly what the engine adds:
  the tenant column, the per-chunk bincount attribution and the
  registry harvest.

Platforms cover the analytic floor (``oracle``, where the attribution
bincounts are the largest relative cost) and a stateful DRAM-cache +
flash tier (``nvdimm-C``, the paper's NVDIMM platform).

Runs standalone (``python benchmarks/bench_scenario.py``) and as a
pytest-benchmark test (``pytest benchmarks/bench_scenario.py``).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.config import default_config
from repro.platforms.registry import create_platform
from repro.scenario import (
    ScenarioSpec,
    TenantSpec,
    build_mixed_trace,
    run_scenario,
)
from repro.workloads.registry import (
    ExperimentScale,
    build_trace,
    scale_system_config,
)

#: Schema tag of the JSON record this benchmark writes.
SCENARIO_BENCH_SCHEMA = "repro.bench-scenario/1"

#: The attributed replay may cost at most this multiple of a plain
#: replay of the identical mixed stream.  The merge is era-vectorized
#: and attribution is a bincount per chunk, so 1.5x is a generous
#: ceiling — measured values sit near 1.1x.
MAX_OVERHEAD = 1.5

#: Tenant mix: a streaming reader, a cache-hostile random reader and a
#: double-weight read/write mix — the contention study's default trio.
TENANTS = (TenantSpec(workload="seqRd"),
           TenantSpec(workload="rndRd"),
           TenantSpec(workload="update", weight=2))

#: One analytic platform (attribution cost is most visible) and one
#: stateful DRAM-cache + flash platform (the paper's NVDIMM tier).
PLATFORMS = ("oracle", "nvdimm-C")

DEFAULT_ACCESSES = 50_000

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_scenario.json"


def _bench_scale(accesses: int) -> ExperimentScale:
    """Smoke-preset capacity pinned to ~*accesses* accesses per tenant."""
    return ExperimentScale(capacity_scale=1 / 256, min_accesses=accesses,
                           max_accesses=accesses)


def _solo_seconds(platform_name: str, traces, config, repeats: int) -> float:
    """Summed replay wall-clock of every tenant alone (best-of)."""
    best = float("inf")
    for _ in range(repeats):
        total = 0.0
        for trace in traces:
            platform = create_platform(platform_name, config)
            platform.prepare(trace)
            started = time.perf_counter()
            platform.run(trace)
            total += time.perf_counter() - started
        best = min(best, total)
    return best


def _plain_mixed_seconds(platform_name: str, spec, scale, config,
                         repeats: int) -> float:
    """Mix construction + untagged ``platform.run`` of the mix (best-of)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        trace = build_mixed_trace(spec, scale)
        create_platform(platform_name, config).run(trace)
        best = min(best, time.perf_counter() - started)
    return best


def _attributed_seconds(platform_name: str, spec, scale, config,
                        repeats: int) -> float:
    """End-to-end ``run_scenario`` wall-clock (best-of)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run_scenario(spec, create_platform(platform_name, config), scale)
        best = min(best, time.perf_counter() - started)
    return best


def measure(accesses: int = DEFAULT_ACCESSES,
            repeats: int = 3) -> Dict[str, Dict[str, float]]:
    """Solo, plain-mixed and attributed replay rates per platform."""
    scale = _bench_scale(accesses)
    config = scale_system_config(default_config(), scale)
    spec = ScenarioSpec(name="bench", tenants=TENANTS)
    traces = [build_trace(tenant.workload, scale) for tenant in TENANTS]
    total = sum(len(trace) for trace in traces)
    results: Dict[str, Dict[str, float]] = {}
    for platform_name in PLATFORMS:
        solo = _solo_seconds(platform_name, traces, config, repeats)
        plain = _plain_mixed_seconds(platform_name, spec, scale, config,
                                     repeats)
        attributed = _attributed_seconds(platform_name, spec, scale,
                                         config, repeats)
        results[platform_name] = {
            "accesses": float(total),
            "solo_seconds": solo,
            "plain_mixed_seconds": plain,
            "attributed_seconds": attributed,
            "solo_accesses_per_s": total / solo,
            "mixed_accesses_per_s": total / attributed,
            "contention_ratio": attributed / solo,
            "overhead": attributed / plain,
        }
    return results


def overheads(results: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """The attributed/plain wall-clock ratio per platform (the gate)."""
    return {platform: row["overhead"] for platform, row in results.items()}


def write_record(results: Dict[str, Dict[str, float]], path: Path) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": SCENARIO_BENCH_SCHEMA,
        "figure": "scenario",
        "created_unix": time.time(),
        "max_overhead": MAX_OVERHEAD,
        "tables": results,
    }
    path.write_text(json.dumps(payload, sort_keys=True, indent=1),
                    encoding="utf-8")
    return path


def _report(results: Dict[str, Dict[str, float]]) -> str:
    lines = [f"{'platform':12s} {'solo acc/s':>14s} {'mixed acc/s':>14s} "
             f"{'contention':>11s} {'overhead':>9s}"]
    for platform, row in results.items():
        lines.append(f"{platform:12s} {row['solo_accesses_per_s']:14.0f} "
                     f"{row['mixed_accesses_per_s']:14.0f} "
                     f"{row['contention_ratio']:11.2f} "
                     f"{row['overhead']:9.2f}")
    return "\n".join(lines)


def test_scenario_overhead(benchmark):
    """pytest-benchmark wrapper; asserts the attribution-overhead ceiling."""
    results = benchmark.pedantic(
        measure, kwargs={"accesses": 20_000, "repeats": 1},
        rounds=1, iterations=1)
    path = write_record(results, DEFAULT_OUTPUT)
    print()
    print(_report(results))
    print(f"-> {path}")
    for platform, ratio in overheads(results).items():
        assert ratio <= MAX_OVERHEAD, (platform, ratio)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="scenario-engine attribution overhead vs plain replay")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON record path "
                             "(default: results/BENCH_scenario.json)")
    parser.add_argument("--accesses", type=int, default=DEFAULT_ACCESSES,
                        help="accesses per tenant "
                             f"(default {DEFAULT_ACCESSES})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurements per rate (best-of, default 3)")
    args = parser.parse_args(argv)
    results = measure(accesses=args.accesses, repeats=args.repeats)
    print(_report(results))
    print(f"-> {write_record(results, args.output)}")
    ok = all(ratio <= MAX_OVERHEAD for ratio in overheads(results).values())
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
