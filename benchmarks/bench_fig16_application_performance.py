"""Figure 16: application-level performance across all evaluated platforms.

* Figure 16a — microbenchmark + Rodinia throughput (K pages/s),
* Figure 16b — SQLite throughput (operations/s),

plus the headline claim of the paper: HAMS (hams-LE) and advanced HAMS
(hams-TE) outperform the software MMF design (mmap), with the advanced
integration ahead of the baseline, and the oracle (all-NVDIMM) on top.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.platforms.registry import PLATFORM_NAMES
from repro.workloads.registry import (
    MICROBENCH_WORKLOADS,
    RODINIA_WORKLOADS,
    SQLITE_WORKLOADS,
)

from conftest import emit, record_figure, run_once

PAGE_WORKLOADS = list(MICROBENCH_WORKLOADS) + list(RODINIA_WORKLOADS)
ALL_WORKLOADS = PAGE_WORKLOADS + list(SQLITE_WORKLOADS)


def test_fig16_application_performance(benchmark, bench_runner):
    def experiment():
        # The full 11x12 matrix fans out over the runner's worker pool.
        return bench_runner.compare(PLATFORM_NAMES, ALL_WORKLOADS)

    experiment_result = run_once(benchmark, experiment)

    figure_16a = {
        workload: {
            platform: experiment_result.get(platform, workload)
            .kilo_pages_per_second
            for platform in PLATFORM_NAMES
        }
        for workload in PAGE_WORKLOADS
    }
    figure_16b = {
        workload: {
            platform: experiment_result.get(platform, workload)
            .operations_per_second
            for platform in PLATFORM_NAMES
        }
        for workload in SQLITE_WORKLOADS
    }

    emit()
    emit(format_table(figure_16a,
                       title="Figure 16a: microbench + Rodinia (K pages/s)",
                       float_format="{:.1f}", row_header="workload"))
    emit()
    emit(format_table(figure_16b, title="Figure 16b: SQLite (ops/s)",
                       float_format="{:.0f}", row_header="workload"))

    headline = {
        platform: {"speedup vs mmap":
                   experiment_result.mean_speedup(platform, "mmap")}
        for platform in PLATFORM_NAMES
    }
    emit()
    emit(format_table(headline, title="Headline: average speedup over mmap",
                       row_header="platform"))
    record_figure("fig16", {"fig16a_kpages_per_s": figure_16a,
                            "fig16b_ops_per_s": figure_16b,
                            "headline_speedup_vs_mmap": headline},
                  meta={"workers": bench_runner.workers})

    # --- the paper's qualitative results -------------------------------------
    hams_le = experiment_result.mean_speedup("hams-LE", "mmap")
    hams_te = experiment_result.mean_speedup("hams-TE", "mmap")
    # HAMS and advanced HAMS outperform the MMF design (paper: +97% / +119%).
    assert hams_le > 1.3
    assert hams_te > hams_le
    # Extend mode beats persist mode.
    assert hams_te > experiment_result.mean_speedup("hams-TP", "mmap")
    assert hams_le > experiment_result.mean_speedup("hams-LP", "mmap")
    # The oracle is the upper bound.
    assert experiment_result.mean_speedup("oracle", "mmap") >= hams_te
    # flatflash-P underperforms mmap on the page-granular microbenchmark.
    for workload in MICROBENCH_WORKLOADS:
        assert (experiment_result.get("flatflash-P", workload)
                .operations_per_second
                < experiment_result.get("mmap", workload).operations_per_second)
    # Advanced HAMS stays ahead of the Optane memory-mode baseline on average.
    assert hams_te > experiment_result.mean_speedup("optane-M", "mmap") * 0.95
