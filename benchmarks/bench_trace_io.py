#!/usr/bin/env python3
"""Trace-store I/O microbenchmark: write/read GB/s and replay parity cost.

Measures the three rates that decide whether the out-of-core trace store
(``repro.trace/1``, see ``src/repro/trace/``) is usable as the default
substrate for large experiments, and records them as
``results/BENCH_trace_io.json``:

* **write** — ``build_trace_file`` end to end (generator synthesis +
  chunked columnar encode + crc32 + fsync/rename), in accesses/sec and
  GB/s of column bytes, for both compressions (``none`` / ``zlib``);
  synthesis rides in the timed region deliberately — it is what a user
  building a trace actually waits for,
* **read** — draining every chunk through ``TraceReader.chunk_stream``
  (the zero-copy
  mmap path for uncompressed files, the chunk-at-a-time inflate path for
  zlib), in accesses/sec and GB/s,
* **replay** — ``Platform.run`` over the file-backed
  :class:`~repro.trace.reader.FileAccessStream` versus the same trace held
  in memory, on one analytic platform (``oracle``) and one stateful one
  (``hams-TE``).  The two replays are bit-identical (see
  ``tests/test_trace_store.py``); this records what the file indirection
  costs in wall-clock terms.  The acceptance bar: file-backed replay keeps
  >= ``MIN_REPLAY_RATIO`` of in-memory throughput on every row, i.e. the
  store never becomes the bottleneck of an experiment.

Runs standalone (``python benchmarks/bench_trace_io.py``) and as a
pytest-benchmark test (``pytest benchmarks/bench_trace_io.py``).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.config import default_config
from repro.platforms.registry import create_platform
from repro.trace.format import ACCESS_BYTES
from repro.trace.reader import TraceReader, load_trace_file
from repro.trace.writer import build_trace_file
from repro.workloads.registry import (
    ExperimentScale,
    build_trace,
    scale_system_config,
)

#: Schema tag of the JSON record this benchmark writes.
TRACE_IO_BENCH_SCHEMA = "repro.bench-trace-io/1"

#: The workload streamed through the store; ``update`` mixes reads and
#: writes so all three columns carry entropy.
WORKLOAD = "update"

#: Default access count: large enough that mmap/decompress rates dominate
#: constant costs, small enough for a CI leg (~17 MB uncompressed).
DEFAULT_ACCESSES = 1_000_000

#: (platform, label) replay rows: one analytic platform whose batched
#: path is pure numpy (file I/O shows up most), one stateful DRAM-cache +
#: flash platform (file I/O amortised behind simulation work).
REPLAY_PLATFORMS = ("oracle", "hams-TE")

#: File-backed replay must retain this fraction of in-memory throughput.
MIN_REPLAY_RATIO = 0.5

DEFAULT_OUTPUT = Path(__file__).parent / "results" / "BENCH_trace_io.json"


def _bench_scale(accesses: int) -> ExperimentScale:
    """The library-default scale pinned to exactly *accesses* accesses."""
    return ExperimentScale(min_accesses=accesses, max_accesses=accesses)


def _write_rate(path: Path, accesses: int, compression: str,
                repeats: int) -> Dict[str, float]:
    """Best-of-*repeats* TraceWriter rate for one compression mode."""
    scale = _bench_scale(accesses)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        build_trace_file(WORKLOAD, path, scale=scale,
                         compression=compression)
        best = min(best, time.perf_counter() - started)
    stored = path.stat().st_size
    logical = accesses * ACCESS_BYTES
    return {
        "accesses": float(accesses),
        "seconds": best,
        "stored_bytes": float(stored),
        "accesses_per_s": accesses / best,
        "gb_per_s": logical / best / 1e9,
        "stored_ratio": stored / logical,
    }


def _read_rate(path: Path, repeats: int) -> Dict[str, float]:
    """Best-of-*repeats* rate of draining every chunk of the file."""
    best = float("inf")
    accesses = 0
    for _ in range(repeats):
        started = time.perf_counter()
        with TraceReader(path) as reader:
            accesses = 0
            for index in range(len(reader.footer["chunks"])):
                stream = reader.chunk_stream(index)
                accesses += len(stream)
                # Reduce every column so the mmap pages actually fault in;
                # without this the zero-copy path would time only the view
                # construction, not the bytes.
                stream.addresses.sum()
                stream.sizes.sum()
                stream.writes.sum()
        best = min(best, time.perf_counter() - started)
    logical = accesses * ACCESS_BYTES
    return {
        "accesses": float(accesses),
        "seconds": best,
        "accesses_per_s": accesses / best,
        "gb_per_s": logical / best / 1e9,
    }


def _replay_rate(platform_name: str, trace, config,
                 repeats: int) -> float:
    """Accesses/sec of the fastest of *repeats* fresh-platform replays."""
    best = float("inf")
    for _ in range(repeats):
        platform = create_platform(platform_name, config)
        platform.prepare(trace)
        started = time.perf_counter()
        platform.run(trace)
        best = min(best, time.perf_counter() - started)
    return len(trace) / best


def measure(accesses: int = DEFAULT_ACCESSES,
            repeats: int = 3,
            replay_accesses: Optional[int] = None,
            directory: Optional[Path] = None) -> Dict[str, Dict]:
    """Measure write, read and replay rates of the trace store.

    Replay rows use *replay_accesses* (default: ``accesses // 10``) —
    stateful platforms simulate orders of magnitude slower than the raw
    store moves bytes, so the replay rows need fewer accesses to converge.
    """
    if replay_accesses is None:
        replay_accesses = max(10_000, accesses // 10)
    own_tmp = directory is None
    tmp = tempfile.TemporaryDirectory(prefix="bench-trace-io-") \
        if own_tmp else None
    root = Path(tmp.name) if own_tmp else Path(directory)
    try:
        results: Dict[str, Dict] = {"io": {}, "replay": {}}
        for compression in ("none", "zlib"):
            path = root / f"bench-{compression}.trace"
            row = {"write": _write_rate(path, accesses, compression,
                                        repeats)}
            row["read"] = _read_rate(path, repeats)
            results["io"][compression] = row

        replay_scale = _bench_scale(replay_accesses)
        config = scale_system_config(default_config(), replay_scale)
        replay_path = root / "bench-replay.trace"
        build_trace_file(WORKLOAD, replay_path, scale=replay_scale)
        memory_trace = build_trace(WORKLOAD, replay_scale)
        file_trace = load_trace_file(replay_path)
        for platform_name in REPLAY_PLATFORMS:
            memory = _replay_rate(platform_name, memory_trace, config,
                                  repeats)
            file_backed = _replay_rate(platform_name, file_trace, config,
                                       repeats)
            results["replay"][platform_name] = {
                "accesses": float(replay_accesses),
                "memory_accesses_per_s": memory,
                "file_accesses_per_s": file_backed,
                "ratio": file_backed / memory,
            }
        return results
    finally:
        if tmp is not None:
            tmp.cleanup()


def replay_ratios(results: Dict[str, Dict]) -> Dict[str, float]:
    """The file-backed/in-memory throughput ratio per replay platform."""
    return {platform: row["ratio"]
            for platform, row in results["replay"].items()}


def write_record(results: Dict[str, Dict], path: Path) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": TRACE_IO_BENCH_SCHEMA,
        "figure": "trace_io",
        "created_unix": time.time(),
        "tables": results,
    }
    path.write_text(json.dumps(payload, sort_keys=True, indent=1),
                    encoding="utf-8")
    return path


def _report(results: Dict[str, Dict]) -> str:
    lines = [f"{'stage':24s} {'accesses/s':>14s} {'GB/s':>8s}"]
    for compression, row in results["io"].items():
        for stage in ("write", "read"):
            rates = row[stage]
            lines.append(f"{stage + ' (' + compression + ')':24s} "
                         f"{rates['accesses_per_s']:14.0f} "
                         f"{rates['gb_per_s']:8.3f}")
    lines.append(f"{'replay':24s} {'memory/s':>14s} {'file/s':>14s} "
                 f"{'ratio':>6s}")
    for platform, row in results["replay"].items():
        lines.append(f"{platform:24s} {row['memory_accesses_per_s']:14.0f} "
                     f"{row['file_accesses_per_s']:14.0f} "
                     f"{row['ratio']:6.2f}")
    return "\n".join(lines)


def test_trace_io(benchmark):
    """pytest-benchmark wrapper; asserts the replay-retention bar."""
    results = benchmark.pedantic(
        measure, kwargs={"accesses": 200_000, "repeats": 1,
                         "replay_accesses": 20_000},
        rounds=1, iterations=1)
    path = write_record(results, DEFAULT_OUTPUT)
    print()
    print(_report(results))
    print(f"-> {path}")
    for platform, ratio in replay_ratios(results).items():
        assert ratio >= MIN_REPLAY_RATIO, (platform, ratio)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="trace-store write/read/replay throughput")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON record path "
                             "(default: results/BENCH_trace_io.json)")
    parser.add_argument("--accesses", type=int, default=DEFAULT_ACCESSES,
                        help="accesses streamed through the store "
                             f"(default {DEFAULT_ACCESSES})")
    parser.add_argument("--replay-accesses", type=int, default=None,
                        help="accesses of the replay rows "
                             "(default: --accesses / 10)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurements per rate (best-of, default 3)")
    args = parser.parse_args(argv)
    results = measure(accesses=args.accesses, repeats=args.repeats,
                      replay_accesses=args.replay_accesses)
    print(_report(results))
    print(f"-> {write_record(results, args.output)}")
    ok = all(ratio >= MIN_REPLAY_RATIO
             for ratio in replay_ratios(results).values())
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
