"""Figure 6: MMF-based (mmap) system performance on SATA / NVMe / ULL SSDs.

* Figure 6a — mmap-bench bandwidth (MB/s) for seqRd/rndRd/seqWr/rndWr,
* Figure 6b — SQLite application latency (us per operation).

The reproduced shape: the MMF system is fastest on ULL-Flash, then the NVMe
SSD, then SATA, for every workload; and the per-transaction latency ordering
is the inverse.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import format_table
from repro.units import to_MB

from conftest import emit, record_figure, run_once

#: SSD kind -> mmap platform registry name (the runner builds platforms by
#: registry name in its workers).
SSD_PLATFORMS = {"sata-ssd": "mmap-sata", "nvme-ssd": "mmap-nvme",
                 "ull-flash": "mmap-ull"}
SSD_KINDS = list(SSD_PLATFORMS)
MICRO_WORKLOADS = ["seqRd", "rndRd", "seqWr", "rndWr"]
SQLITE_WORKLOADS = ["seqSel", "rndSel", "seqIns", "rndIns", "update"]


def _bandwidth_mb_per_s(result) -> float:
    bytes_accessed = result.memory_accesses * 4096
    seconds = result.total_ns / 1e9
    return to_MB(int(bytes_accessed)) / seconds if seconds > 0 else 0.0


def test_fig06_mmf_system_performance(benchmark, small_runner):
    def experiment():
        matrix = small_runner.compare(
            SSD_PLATFORMS.values(), MICRO_WORKLOADS + SQLITE_WORKLOADS)
        bandwidth: Dict[str, Dict[str, float]] = {}
        latency: Dict[str, Dict[str, float]] = {}
        for workload in MICRO_WORKLOADS:
            bandwidth[workload] = {
                kind: _bandwidth_mb_per_s(matrix.get(platform, workload))
                for kind, platform in SSD_PLATFORMS.items()}
        for workload in SQLITE_WORKLOADS:
            latency[workload] = {}
            for kind, platform in SSD_PLATFORMS.items():
                result = matrix.get(platform, workload)
                latency[workload][kind] = (result.total_ns / 1e3
                                           / max(result.operations, 1.0))
        return bandwidth, latency

    bandwidth, latency = run_once(benchmark, experiment)

    emit()
    emit(format_table(bandwidth, title="Figure 6a: mmap-bench bandwidth (MB/s)",
                       float_format="{:.0f}", row_header="workload"))
    emit()
    emit(format_table(latency, title="Figure 6b: SQLite latency (us/op)",
                       float_format="{:.1f}", row_header="workload"))
    record_figure("fig06", {"fig06a_bandwidth_mb_per_s": bandwidth,
                            "fig06b_latency_us_per_op": latency})

    # ULL-Flash is the fastest backing device for the MMF system everywhere.
    for workload in MICRO_WORKLOADS:
        assert bandwidth[workload]["ull-flash"] >= bandwidth[workload]["nvme-ssd"]
        assert bandwidth[workload]["ull-flash"] > bandwidth[workload]["sata-ssd"]
    for workload in SQLITE_WORKLOADS:
        assert latency[workload]["ull-flash"] <= latency[workload]["sata-ssd"]
