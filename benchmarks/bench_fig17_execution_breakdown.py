"""Figure 17: system-level execution-time breakdown (app / OS / SSD).

For every workload the execution time of mmap and of the four HAMS variants
is decomposed into the application itself, OS (software-stack) time, and raw
SSD wait time, all normalised to mmap's total.  Reproduced shape: mmap spends
a large share in OS+SSD that the application cannot hide, while HAMS has no
OS/SSD component at all (its storage accesses are LD/ST latencies) and a
shorter total.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.breakdown import average_breakdown, execution_breakdown_table
from repro.analysis.reporting import format_table

from conftest import emit, record_figure, run_once

PLATFORMS = ["mmap", "hams-LP", "hams-LE", "hams-TP", "hams-TE"]
WORKLOADS = ["seqRd", "rndRd", "seqWr", "rndWr", "BFS", "KMN", "NN",
             "seqSel", "rndSel", "seqIns", "rndIns", "update"]


def test_fig17_execution_time_breakdown(benchmark, bench_runner):
    def experiment():
        # One parallel fan-out over the whole matrix, then per-workload
        # breakdown tables from the merged experiment result.
        matrix = bench_runner.compare(PLATFORMS, WORKLOADS)
        per_workload: Dict[str, Dict[str, Dict[str, float]]] = {}
        for workload in WORKLOADS:
            results = {platform: matrix.get(platform, workload)
                       for platform in PLATFORMS}
            per_workload[workload] = execution_breakdown_table(results,
                                                               baseline="mmap")
        return per_workload

    per_workload = run_once(benchmark, experiment)

    for workload in ("seqRd", "rndWr", "update"):
        emit()
        emit(format_table(per_workload[workload],
                           title=f"Figure 17 ({workload}): normalised "
                                 "execution time", row_header="platform"))

    averaged = average_breakdown(per_workload.values())
    emit()
    emit(format_table(averaged, title="Figure 17 (average over workloads)",
                       row_header="platform"))
    record_figure("fig17", {"normalised_breakdown_average": averaged,
                            **{f"breakdown_{workload}": table
                               for workload, table in per_workload.items()}})

    # mmap pays a substantial OS share; HAMS pays none and finishes sooner.
    assert averaged["mmap"]["os"] > 0.15
    for variant in ("hams-LE", "hams-TE"):
        assert averaged[variant]["os"] == 0.0
        assert averaged[variant]["ssd"] == 0.0
        assert averaged[variant]["total"] < 1.0
    # The advanced integration is at least as fast as the baseline design.
    assert averaged["hams-TE"]["total"] <= averaged["hams-LE"]["total"] * 1.05
