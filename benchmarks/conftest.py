"""Shared fixtures and helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section VI).  The simulations are deterministic, so each benchmark runs its
experiment exactly once (``benchmark.pedantic(..., rounds=1)``) and prints
the same rows/series the figure plots; the pytest-benchmark timing then
reports how long regenerating that figure takes.

The harness runs on the public :class:`repro.api.Session` facade: each
figure's (platform x workload) matrix fans out over the session's process
pool (``$REPRO_WORKERS`` workers, defaulting to the CPU count), and every
figure additionally records its plotted tables as a machine-readable
``results/BENCH_<figure>.json`` artifact that CI uploads.  The run cache is
deliberately disabled here so the benchmark timings measure real work; the
``python -m repro run`` CLI is the cache-aware path.

The experiment scale used here is deliberately smaller than the library
default so the full harness finishes in minutes; the relative platform
ordering — the part of the figures we reproduce — is insensitive to it.

Setting ``$REPRO_BENCH_SHARDS`` to an integer > 0 routes every figure's
matrix through the ``repro.distrib`` sharding tier (plan → work → merge in
this process), and ``$REPRO_BENCH_EXECUTOR`` (``serial``/``pool``/
``sharded``) pins the execution tier outright.  The results are
bit-identical either way — that is the executor layer's contract — so
these are ways to measure each tier's overhead on real figure matrices,
not different experiments.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

import pytest

from repro.api import Session
from repro.workloads.registry import ExperimentScale

#: > 0: run each figure matrix through the sharded plan/work/merge path.
_BENCH_SHARDS_RAW = os.environ.get("REPRO_BENCH_SHARDS", "0") or "0"
try:
    BENCH_SHARDS = int(_BENCH_SHARDS_RAW)
except ValueError:
    raise SystemExit(f"$REPRO_BENCH_SHARDS must be an integer, "
                     f"got {_BENCH_SHARDS_RAW!r}") from None

#: Execution tier override: serial | pool | sharded (empty: the default).
BENCH_EXECUTOR = os.environ.get("REPRO_BENCH_EXECUTOR", "").strip() or None

#: All figure tables are appended here as well as printed, so the numbers
#: survive pytest's stdout capture of passing tests.
RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_FILE = RESULTS_DIR / "figures.txt"

#: Schema tag of the per-figure JSON records written by :func:`record_figure`.
FIGURE_SCHEMA = "repro.bench-figure/1"


def emit(text: str = "") -> None:
    """Print *text* and append it to ``benchmarks/results/figures.txt``."""
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with RESULTS_FILE.open("a", encoding="utf-8") as handle:
        handle.write(str(text) + "\n")


def record_figure(figure: str, tables: Mapping[str, Any],
                  meta: Optional[Mapping[str, Any]] = None) -> Path:
    """Write the figure's plotted tables as ``results/BENCH_<figure>.json``.

    *tables* maps a table name to the nested ``{row: {column: value}}``
    mapping the benchmark printed, so CI (and regression tooling) can diff
    the numbers without scraping stdout.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{figure}.json"
    payload: Dict[str, Any] = {
        "schema": FIGURE_SCHEMA,
        "figure": figure,
        "created_unix": time.time(),
        "host": socket.gethostname(),
        "shards": BENCH_SHARDS,
        "executor": BENCH_EXECUTOR or "default",
        "tables": dict(tables),
    }
    if meta:
        payload["meta"] = dict(meta)
    path.write_text(json.dumps(payload, sort_keys=True, indent=1),
                    encoding="utf-8")
    return path


#: Scale used by the application-level benchmarks (Figures 16-20).
BENCH_SCALE = ExperimentScale(capacity_scale=1 / 64, min_accesses=1_500,
                              max_accesses=3_000)

#: Scale used by the motivation benchmarks (Figures 6, 7, 10), which run
#: more platform/workload combinations per figure.
SMALL_SCALE = ExperimentScale(capacity_scale=1 / 128, min_accesses=1_000,
                              max_accesses=2_000)


@pytest.fixture(scope="session")
def bench_runner() -> Session:
    """Session shared by the application-level figure benchmarks."""
    return Session(BENCH_SCALE, shards=BENCH_SHARDS,
                   executor=BENCH_EXECUTOR)


@pytest.fixture(scope="session")
def small_runner() -> Session:
    """Session shared by the motivation-figure benchmarks."""
    return Session(SMALL_SCALE, shards=BENCH_SHARDS,
                   executor=BENCH_EXECUTOR)


def run_once(benchmark, function):
    """Execute *function* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
