"""Shared fixtures and helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section VI).  The simulations are deterministic, so each benchmark runs its
experiment exactly once (``benchmark.pedantic(..., rounds=1)``) and prints
the same rows/series the figure plots; the pytest-benchmark timing then
reports how long regenerating that figure takes.

The experiment scale used here is deliberately smaller than the library
default so the full harness finishes in minutes; the relative platform
ordering — the part of the figures we reproduce — is insensitive to it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentRunner
from repro.workloads.registry import ExperimentScale

#: All figure tables are appended here as well as printed, so the numbers
#: survive pytest's stdout capture of passing tests.
RESULTS_FILE = Path(__file__).parent / "results" / "figures.txt"


def emit(text: str = "") -> None:
    """Print *text* and append it to ``benchmarks/results/figures.txt``."""
    print(text)
    RESULTS_FILE.parent.mkdir(parents=True, exist_ok=True)
    with RESULTS_FILE.open("a", encoding="utf-8") as handle:
        handle.write(str(text) + "\n")

#: Scale used by the application-level benchmarks (Figures 16-20).
BENCH_SCALE = ExperimentScale(capacity_scale=1 / 64, min_accesses=1_500,
                              max_accesses=3_000)

#: Scale used by the motivation benchmarks (Figures 6, 7, 10), which run
#: more platform/workload combinations per figure.
SMALL_SCALE = ExperimentScale(capacity_scale=1 / 128, min_accesses=1_000,
                              max_accesses=2_000)


@pytest.fixture(scope="session")
def bench_runner() -> ExperimentRunner:
    """Runner shared by the application-level figure benchmarks."""
    return ExperimentRunner(BENCH_SCALE)


@pytest.fixture(scope="session")
def small_runner() -> ExperimentRunner:
    """Runner shared by the motivation-figure benchmarks."""
    return ExperimentRunner(SMALL_SCALE)


def run_once(benchmark, function):
    """Execute *function* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
