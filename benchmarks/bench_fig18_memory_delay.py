"""Figure 18: memory access delay breakdown (NVDIMM / DMA / SSD).

For the four HAMS variants, the total memory delay is decomposed into time
spent in the NVDIMM (tag probes, data service, page landings, clones), time
on the interface (NVMe protocol + PCIe or DDR4 transfer) and time inside the
ULL-Flash, normalised per workload to hams-LP.  Reproduced shape: the NVDIMM
dominates thanks to the high MoS hit rate, the persist modes suffer more
total delay than the extend modes, and the tight integration trims the DMA
share relative to the loose one.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.breakdown import average_breakdown, memory_delay_table
from repro.analysis.reporting import format_table

from conftest import emit, record_figure, run_once

PLATFORMS = ["hams-LP", "hams-LE", "hams-TP", "hams-TE"]
WORKLOADS = ["seqRd", "rndRd", "seqWr", "rndWr", "BFS", "KMN", "NN",
             "seqSel", "rndSel", "seqIns", "rndIns", "update"]


def test_fig18_memory_delay_breakdown(benchmark, bench_runner):
    def experiment():
        # Parallel fan-out over the whole matrix; tables come from the
        # merged experiment result.
        matrix = bench_runner.compare(PLATFORMS, WORKLOADS)
        per_workload: Dict[str, Dict[str, Dict[str, float]]] = {}
        hit_rates: Dict[str, float] = {}
        for workload in WORKLOADS:
            results = {platform: matrix.get(platform, workload)
                       for platform in PLATFORMS}
            per_workload[workload] = memory_delay_table(results,
                                                        baseline="hams-LP")
            hit_rates[workload] = results["hams-TE"].extras[
                "nvdimm_cache_hit_rate"]
        return per_workload, hit_rates

    per_workload, hit_rates = run_once(benchmark, experiment)

    for workload in ("seqRd", "rndWr", "update"):
        emit()
        emit(format_table(per_workload[workload],
                           title=f"Figure 18 ({workload}): memory delay "
                                 "normalised to hams-LP", row_header="platform"))

    averaged = average_breakdown(per_workload.values())
    emit()
    emit(format_table(averaged, title="Figure 18 (average over workloads)",
                       row_header="platform"))
    average_hit = sum(hit_rates.values()) / len(hit_rates)
    emit(f"\naverage NVDIMM (MoS) cache hit rate: {average_hit:.3f}")
    record_figure("fig18", {"memory_delay_average": averaged,
                            "hams_te_mos_hit_rate": {"hams-TE": hit_rates}})

    # Persist mode has more memory delay than extend mode (paper: ~+34%).
    assert averaged["hams-LP"]["total"] > averaged["hams-LE"]["total"]
    assert averaged["hams-TP"]["total"] > averaged["hams-TE"]["total"]
    # The tight integration reduces total memory stalls vs the loose design.
    assert averaged["hams-TE"]["total"] <= averaged["hams-LE"]["total"]
    # The large NVDIMM absorbs the vast majority of requests (paper: ~94%).
    assert average_hit > 0.85
