"""Figure 7: the cost of the software storage stack and of naive bypassing.

* Figure 7a — execution-time breakdown of the MMF (mmap) system into
  mmap / I/O-stack / SSD / CPU components, plus the performance degradation
  relative to an all-NVDIMM system,
* Figure 7b — IPC of the three bypass strategies (NVDIMM only, ULL-Flash as
  memory, ULL-Flash with a small page buffer).

Reproduced shape: the software stack (mmap + I/O stack) dominates the MMF
execution time while the raw SSD access is a small slice, and serving
load/store traffic directly from flash collapses IPC by orders of magnitude
compared to NVDIMM.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.reporting import format_table

from conftest import emit, record_figure, run_once

WORKLOADS = ["rndRd", "rndWr", "seqRd", "seqWr", "rndIns", "seqIns",
             "update", "rndSel", "seqSel"]
BYPASS_WORKLOADS = ["rndRd", "rndWr", "rndSel", "update"]
#: Strategy label -> bypass platform registry name.
BYPASS_PLATFORMS = {"nvdimm": "bypass-nvdimm", "ull": "bypass-ull",
                    "ull-buff": "bypass-ull-buff"}


def test_fig07a_mmf_execution_breakdown(benchmark, small_runner):
    def experiment():
        matrix = small_runner.compare(["mmap", "oracle"], WORKLOADS)
        table: Dict[str, Dict[str, float]] = {}
        for workload in WORKLOADS:
            mmap_result = matrix.get("mmap", workload)
            oracle_result = matrix.get("oracle", workload)
            stack = mmap_result.extras
            total = mmap_result.total_ns
            mmap_share = stack.get("os_total_mmap_ns", 0.0) / total
            io_share = (stack.get("os_total_io_stack_ns", 0.0)
                        + stack.get("os_total_copy_ns", 0.0)) / total
            ssd_share = mmap_result.ssd_ns / total
            cpu_share = max(0.0, 1.0 - mmap_share - io_share - ssd_share)
            degradation = 100.0 * (1.0 - (oracle_result.total_ns
                                          / mmap_result.total_ns))
            table[workload] = {
                "mmap": mmap_share,
                "io_stack": io_share,
                "ssd": ssd_share,
                "cpu": cpu_share,
                "degradation_vs_nvdimm_pct": degradation,
            }
        return table

    table = run_once(benchmark, experiment)
    emit()
    emit(format_table(table, title="Figure 7a: MMF execution breakdown "
                                    "(fractions) and slowdown vs NVDIMM",
                       row_header="workload"))
    record_figure("fig07a", {"mmf_breakdown": table})

    software = [row["mmap"] + row["io_stack"] for row in table.values()]
    ssd = [row["ssd"] for row in table.values()]
    # The software stack is the dominant overhead, well above the raw device.
    assert sum(software) / len(software) > sum(ssd) / len(ssd)
    # The MMF system is substantially slower than an all-NVDIMM system on
    # average (the paper reports 48% mean degradation); the sequential
    # DBMS workloads are CPU-bound and degrade the least.
    degradations = [row["degradation_vs_nvdimm_pct"] for row in table.values()]
    assert sum(degradations) / len(degradations) > 30.0
    assert all(value > 0.0 for value in degradations)


def test_fig07b_bypass_ipc(benchmark, small_runner):
    def experiment():
        matrix = small_runner.compare(BYPASS_PLATFORMS.values(),
                                         BYPASS_WORKLOADS)
        return {workload: {strategy: matrix.get(platform, workload).ipc
                           for strategy, platform in BYPASS_PLATFORMS.items()}
                for workload in BYPASS_WORKLOADS}

    table = run_once(benchmark, experiment)
    emit()
    emit(format_table(table, title="Figure 7b: IPC of bypass strategies",
                       float_format="{:.4f}", row_header="workload"))
    record_figure("fig07b", {"bypass_ipc": table})

    for workload, row in table.items():
        assert row["nvdimm"] > row["ull-buff"] > row["ull"]
