"""Figure 19: system energy breakdown normalised to mmap.

Energy is split into CPU, system memory (NVDIMM), SSD-internal DRAM and
Z-NAND, for mmap and the four HAMS variants, each workload normalised to the
mmap total.  Reproduced shape: every HAMS variant consumes less total energy
than the MMF design (the paper reports -31%/-41%/-34%/-45% for
LP/LE/TP/TE), mostly because the shorter runtime cuts CPU + DRAM idle
energy, and the advanced designs additionally delete the SSD-internal DRAM.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.breakdown import average_breakdown, normalised_energy_table
from repro.analysis.reporting import format_table

from conftest import emit, record_figure, run_once

PLATFORMS = ["mmap", "hams-LP", "hams-LE", "hams-TP", "hams-TE"]
WORKLOADS = ["seqRd", "rndRd", "seqWr", "rndWr", "BFS", "KMN", "NN",
             "seqSel", "rndSel", "seqIns", "rndIns", "update"]


def test_fig19_energy_breakdown(benchmark, bench_runner):
    def experiment():
        # Parallel fan-out over the whole matrix; tables come from the
        # merged experiment result.
        matrix = bench_runner.compare(PLATFORMS, WORKLOADS)
        per_workload: Dict[str, Dict[str, Dict[str, float]]] = {}
        for workload in WORKLOADS:
            results = {platform: matrix.get(platform, workload)
                       for platform in PLATFORMS}
            per_workload[workload] = normalised_energy_table(results,
                                                             baseline="mmap")
        return per_workload

    per_workload = run_once(benchmark, experiment)

    for workload in ("seqRd", "rndWr", "update"):
        emit()
        emit(format_table(per_workload[workload],
                           title=f"Figure 19 ({workload}): energy normalised "
                                 "to mmap", row_header="platform"))

    averaged = average_breakdown(per_workload.values())
    emit()
    emit(format_table(averaged, title="Figure 19 (average over workloads)",
                       row_header="platform"))
    record_figure("fig19", {"normalised_energy_average": averaged})

    # Every extend-mode HAMS variant saves energy over mmap; the advanced
    # design saves at least as much as the baseline design.
    assert averaged["hams-LE"]["total"] < 1.0
    assert averaged["hams-TE"]["total"] < 1.0
    assert averaged["hams-TE"]["total"] <= averaged["hams-LE"]["total"] * 1.05
    # The tight integration removes the SSD-internal DRAM energy entirely.
    assert averaged["hams-TE"]["internal_dram"] == 0.0
    assert averaged["hams-TP"]["internal_dram"] == 0.0
    # CPU + system memory dominate mmap's budget (the idle-energy argument).
    assert (averaged["mmap"]["cpu"] + averaged["mmap"]["nvdimm"]) > 0.5
