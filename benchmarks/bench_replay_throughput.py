#!/usr/bin/env python3
"""Replay-throughput microbenchmark: scalar vs batched accesses/sec.

Replays the same traces through both execution strategies of the shared
replay loop (``Platform.run(..., execution="scalar" | "batched")``) and
records the accesses/sec of each, per (platform, workload), as
``results/BENCH_replay_throughput.json``.  The two strategies produce
bit-identical results (see ``tests/test_batched_replay.py``); this records
what the batched path buys in wall-clock terms:

* ``oracle`` / ``optane-P`` have truly vectorized ``service_batch``
  implementations — page-granular traces collapse to numpy work, so these
  are the headline speedups,
* ``hams-TE`` exercises the exact sequential fallback, documenting that the
  batched loop costs clock-dependent platforms nothing.

Runs standalone (``python benchmarks/bench_replay_throughput.py``) and as a
pytest-benchmark test (``pytest benchmarks/bench_replay_throughput.py``).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.config import default_config
from repro.platforms.registry import create_platform
from repro.workloads.registry import (
    ExperimentScale,
    build_trace,
    scale_system_config,
)

#: Schema tag of the JSON record this benchmark writes.
REPLAY_BENCH_SCHEMA = "repro.bench-replay/1"

#: (platform, workload) pairs: the two vectorized platforms on a
#: page-granular and a fine-grained trace, plus one fallback platform.
MATRIX = (
    ("oracle", "seqRd"),
    ("oracle", "update"),
    ("optane-P", "seqRd"),
    ("optane-P", "update"),
    ("hams-TE", "seqRd"),
)

#: The default benchmark scale: the library-default ExperimentScale.
REPLAY_SCALE = ExperimentScale()

DEFAULT_OUTPUT = (Path(__file__).parent / "results"
                  / "BENCH_replay_throughput.json")


def _best_rate(platform_name: str, trace, config, mode: str,
               repeats: int) -> float:
    """Accesses/sec of the fastest of *repeats* fresh-platform replays."""
    best = float("inf")
    for _ in range(repeats):
        platform = create_platform(platform_name, config)
        started = time.perf_counter()
        platform.run(trace, execution=mode)
        best = min(best, time.perf_counter() - started)
    return len(trace) / best


def measure(scale: ExperimentScale = REPLAY_SCALE,
            matrix: Sequence = MATRIX,
            repeats: int = 3) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Measure scalar vs batched replay rates for every matrix entry."""
    config = scale_system_config(default_config(), scale)
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for platform_name, workload in matrix:
        trace = build_trace(workload, scale)
        scalar = _best_rate(platform_name, trace, config, "scalar", repeats)
        batched = _best_rate(platform_name, trace, config, "batched", repeats)
        results.setdefault(platform_name, {})[workload] = {
            "accesses": float(len(trace)),
            "scalar_accesses_per_s": scalar,
            "batched_accesses_per_s": batched,
            "speedup": batched / scalar,
        }
    return results


def write_record(results: Dict[str, Dict[str, Dict[str, float]]],
                 path: Path) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": REPLAY_BENCH_SCHEMA,
        "figure": "replay_throughput",
        "created_unix": time.time(),
        "tables": {"replay_throughput": results},
    }
    path.write_text(json.dumps(payload, sort_keys=True, indent=1),
                    encoding="utf-8")
    return path


def _report(results: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    lines = [f"{'platform':10s} {'workload':8s} {'scalar/s':>12s} "
             f"{'batched/s':>12s} {'speedup':>8s}"]
    for platform_name, by_workload in results.items():
        for workload, row in by_workload.items():
            lines.append(f"{platform_name:10s} {workload:8s} "
                         f"{row['scalar_accesses_per_s']:12.0f} "
                         f"{row['batched_accesses_per_s']:12.0f} "
                         f"{row['speedup']:7.2f}x")
    return "\n".join(lines)


def test_replay_throughput(benchmark):
    """pytest-benchmark wrapper; asserts the vectorized-platform speedup."""
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    path = write_record(results, DEFAULT_OUTPUT)
    print()
    print(_report(results))
    print(f"-> {path}")
    # The acceptance bar: >= 2x accesses/sec on at least one vectorized
    # platform at the default benchmark scale.
    vectorized = [results["oracle"][w]["speedup"] for w in results["oracle"]]
    vectorized += [results["optane-P"][w]["speedup"]
                   for w in results["optane-P"]]
    assert max(vectorized) >= 2.0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="scalar vs batched replay throughput")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON record path "
                             "(default: results/BENCH_replay_throughput.json)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="replays per measurement (best-of, default 3)")
    args = parser.parse_args(argv)
    results = measure(repeats=args.repeats)
    print(_report(results))
    print(f"-> {write_record(results, args.output)}")
    best = max(row["speedup"] for by_workload in results.values()
               for row in by_workload.values())
    return 0 if best >= 2.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
