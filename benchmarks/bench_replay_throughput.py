#!/usr/bin/env python3
"""Replay-throughput microbenchmark: scalar vs batched accesses/sec.

Replays the same traces through both execution strategies of the shared
replay loop (``Platform.run(..., execution="scalar" | "batched")``) and
records the accesses/sec of each, per (platform, workload), as
``results/BENCH_replay_throughput.json``.  The two strategies produce
bit-identical results (see ``tests/test_batched_replay.py``); this records
what the batched path buys in wall-clock terms:

* ``oracle`` / ``optane-P`` have truly vectorized ``service_batch``
  implementations — page-granular traces collapse to numpy work, so these
  are the headline speedups,
* ``nvdimm-C`` / ``optane-M`` / ``bypass-ull-buff`` are the DRAM-cache
  platforms: their batched path runs the order-exact LRU walk
  (``PageCache.access_batch``) plus a vectorized hit fold, so their
  speedup is gated by how much traffic the DRAM cache absorbs.  The
  ``pageHot`` rows (a page-granular page-cache-friendly trace, see
  :func:`build_bench_trace`) are the acceptance rows: each must reach
  >= 5x,
* the ``migrate`` rows are the migration-bound acceptance rows: a
  repeated sequential sweep whose chunk-level locality keeps every
  migration surrounded by cache hits, so a platform only clears the
  >= 5x bar when both its hit fold *and* its flash miss path (the
  batched ``SSD.submit_batch`` walk) are vectorized.  ``nvdimm-C``,
  ``bypass-ull`` (the chained closed-loop flash recurrence) and
  ``hams-TE`` (the clock-free tag-array walk + miss replay) are held to
  it; their ``seqRd`` rows document the colder chunk-miss regime,
* every row of a platform that owns a flash stack also records the
  unified ``flash_*`` counter namespace (``SSD.statistics()``) of the
  batched replay, pinning how much device work the run performed.

Timing covers the replay only: each measured platform is warmed with
``prepare(trace)`` first, so the one-off SSD preconditioning (identical
work in both strategies, and explicitly untimed by the paper's
methodology) does not dilute the replay rates.

Runs standalone (``python benchmarks/bench_replay_throughput.py``) and as a
pytest-benchmark test (``pytest benchmarks/bench_replay_throughput.py``).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, Optional, Sequence

import numpy as np

from repro.config import default_config
from repro.platforms.registry import create_platform
from repro.units import GB, KB
from repro.workloads.generators import ZipfianPattern
from repro.workloads.registry import (
    ExperimentScale,
    build_trace,
    scale_system_config,
)
from repro.workloads.trace import AccessStream, WorkloadTrace

#: Schema tag of the JSON record this benchmark writes.
REPLAY_BENCH_SCHEMA = "repro.bench-replay/1"

#: Synthetic page-cache-friendly workload (not a Table III entry): a
#: page-granular (4 KB) zipfian point-hot stream.  Every reference bypasses
#: the on-chip caches and reaches ``service_batch``, and the skew
#: (theta=3.0) makes consecutive repeat touches of the hottest pages
#: common — exactly the consecutive-same-page pattern the
#: run-length-collapsed LRU walk amortises, and the regime in which the
#: DRAM cache (rather than the deliberately sequential flash miss path)
#: carries the traffic.
PAGE_LOCAL_WORKLOAD = "pageHot"

#: Synthetic migration-heavy workload: a page-granular (4 KB) wrap-around
#: sequential sweep in which each page is touched ``MIGRATE_REPEATS``
#: consecutive times (30 % stores).  Every migration chunk the sweep
#: enters costs one clock-dependent flash migration, and the chunk-level
#: locality (chunk pages x repeats hits per miss) means wall-clock is
#: carried by *both* halves of the batched design: the vectorized hit
#: fold and the batched flash walk behind the misses.
MIGRATION_WORKLOAD = "migrate"
MIGRATE_REPEATS = 6
MIGRATE_WRITE_FRACTION = 0.3

#: (platform, workload) rows; ``pageHot`` rows are the DRAM-cache
#: acceptance rows (>= 5x), ``migrate`` rows are the migration-bound
#: acceptance rows (>= 5x), ``seqRd`` rows document the colder
#: chunk-miss regime.
MATRIX = (
    ("oracle", "seqRd"),
    ("oracle", "update"),
    ("optane-P", "seqRd"),
    ("optane-P", "update"),
    ("nvdimm-C", "seqRd"),
    ("nvdimm-C", PAGE_LOCAL_WORKLOAD),
    ("nvdimm-C", MIGRATION_WORKLOAD),
    ("optane-M", "seqRd"),
    ("optane-M", PAGE_LOCAL_WORKLOAD),
    ("bypass-ull-buff", PAGE_LOCAL_WORKLOAD),
    ("bypass-ull", "seqRd"),
    ("bypass-ull", MIGRATION_WORKLOAD),
    ("hams-TE", "seqRd"),
    ("hams-TE", MIGRATION_WORKLOAD),
)

#: The DRAM-cache platforms and the acceptance bar their ``pageHot``
#: speedup must clear (the ISSUE/ROADMAP >= 5x criterion).
DRAM_CACHE_PLATFORMS = ("nvdimm-C", "optane-M", "bypass-ull-buff")
DRAM_CACHE_MIN_SPEEDUP = 5.0

#: The migration-bound platforms and the bar their ``migrate`` speedup
#: must clear — the batched flash-stack acceptance criterion.
MIGRATION_PLATFORMS = ("nvdimm-C", "bypass-ull", "hams-TE")
MIGRATION_MIN_SPEEDUP = 5.0

#: The default benchmark scale: the library-default ExperimentScale.
REPLAY_SCALE = ExperimentScale()

DEFAULT_OUTPUT = (Path(__file__).parent / "results"
                  / "BENCH_replay_throughput.json")


def build_bench_trace(workload: str, scale: ExperimentScale) -> WorkloadTrace:
    """A registry trace, or one of the synthetic bench workloads."""
    if workload == PAGE_LOCAL_WORKLOAD:
        dataset_bytes = scale.scaled_bytes(GB(16))
        access_count = 2 * scale.max_accesses
        generator = ZipfianPattern(dataset_bytes, KB(4), scale.seed,
                                   theta=3.0, run_length=1)
        stream = generator.stream(access_count, 0.3,
                                  np.random.default_rng(scale.seed + 1000))
    elif workload == MIGRATION_WORKLOAD:
        dataset_bytes = scale.scaled_bytes(GB(16))
        access_count = 2 * scale.max_accesses
        slots = dataset_bytes // KB(4)
        runs = -(-access_count // MIGRATE_REPEATS)  # ceil division
        pages = np.repeat(np.arange(runs, dtype=np.int64) % slots,
                          MIGRATE_REPEATS)[:access_count]
        writes = (np.random.default_rng(scale.seed + 1000).random(access_count)
                  < MIGRATE_WRITE_FRACTION)
        stream = AccessStream.from_arrays(pages * KB(4), KB(4), writes)
    else:
        return build_trace(workload, scale)
    return WorkloadTrace(
        name=workload,
        suite="bench",
        accesses=stream,
        dataset_bytes=dataset_bytes,
        compute_instructions_per_access=4000.0,
        accesses_per_operation=1.0,
        operation_unit="pages",
        total_instructions=access_count * 4001,
    )


def _best_rate(platform_name: str, trace, config, mode: str,
               repeats: int):
    """Accesses/sec of the fastest of *repeats* fresh-platform replays.

    Returns ``(rate, platform)`` — the last replayed platform, whose device
    counters the caller may record.
    """
    best = float("inf")
    platform = None
    for _ in range(repeats):
        platform = create_platform(platform_name, config)
        # Warm the device state outside the timed region; run() re-invokes
        # prepare(), which is an O(1) no-op on an already-warmed platform.
        platform.prepare(trace)
        started = time.perf_counter()
        platform.run(trace, execution=mode)
        best = min(best, time.perf_counter() - started)
    return len(trace) / best, platform


def _flash_statistics(platform) -> Dict[str, float]:
    """The unified ``flash_*`` counters of the platform's SSD, if it has one."""
    ssd = getattr(platform, "ssd", None)
    if ssd is None:
        controller = getattr(platform, "controller", None)
        ssd = getattr(controller, "ssd", None)
    if ssd is None:
        return {}
    return {key: float(value) for key, value in ssd.statistics().items()}


def measure(scale: ExperimentScale = REPLAY_SCALE,
            matrix: Sequence = MATRIX,
            repeats: int = 3) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Measure scalar vs batched replay rates for every matrix entry."""
    config = scale_system_config(default_config(), scale)
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    traces: Dict[str, WorkloadTrace] = {}
    for platform_name, workload in matrix:
        if workload not in traces:
            traces[workload] = build_bench_trace(workload, scale)
        trace = traces[workload]
        scalar, _ = _best_rate(platform_name, trace, config, "scalar",
                               repeats)
        batched, platform = _best_rate(platform_name, trace, config,
                                       "batched", repeats)
        row = {
            "accesses": float(len(trace)),
            "scalar_accesses_per_s": scalar,
            "batched_accesses_per_s": batched,
            "speedup": batched / scalar,
        }
        flash = _flash_statistics(platform)
        if flash:
            row["flash"] = flash
        results.setdefault(platform_name, {})[workload] = row
    return results


def dram_cache_speedups(results) -> Dict[str, float]:
    """The acceptance speedup (``pageHot`` row) per DRAM-cache platform."""
    return {platform: results[platform][PAGE_LOCAL_WORKLOAD]["speedup"]
            for platform in DRAM_CACHE_PLATFORMS
            if PAGE_LOCAL_WORKLOAD in results.get(platform, {})}


def migration_speedups(results) -> Dict[str, float]:
    """The acceptance speedup (``migrate`` row) per migration-bound platform."""
    return {platform: results[platform][MIGRATION_WORKLOAD]["speedup"]
            for platform in MIGRATION_PLATFORMS
            if MIGRATION_WORKLOAD in results.get(platform, {})}


def write_record(results: Dict[str, Dict[str, Dict[str, float]]],
                 path: Path) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": REPLAY_BENCH_SCHEMA,
        "figure": "replay_throughput",
        "created_unix": time.time(),
        "tables": {"replay_throughput": results},
    }
    path.write_text(json.dumps(payload, sort_keys=True, indent=1),
                    encoding="utf-8")
    return path


def _report(results: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    lines = [f"{'platform':16s} {'workload':9s} {'scalar/s':>12s} "
             f"{'batched/s':>12s} {'speedup':>8s}"]
    for platform_name, by_workload in results.items():
        for workload, row in by_workload.items():
            lines.append(f"{platform_name:16s} {workload:9s} "
                         f"{row['scalar_accesses_per_s']:12.0f} "
                         f"{row['batched_accesses_per_s']:12.0f} "
                         f"{row['speedup']:7.2f}x")
    return "\n".join(lines)


def test_replay_throughput(benchmark):
    """pytest-benchmark wrapper; asserts the vectorized-platform speedups."""
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    path = write_record(results, DEFAULT_OUTPUT)
    print()
    print(_report(results))
    print(f"-> {path}")
    # The analytic-platform bar: >= 2x accesses/sec on at least one
    # vectorized platform at the default benchmark scale.
    vectorized = [results["oracle"][w]["speedup"] for w in results["oracle"]]
    vectorized += [results["optane-P"][w]["speedup"]
                   for w in results["optane-P"]]
    assert max(vectorized) >= 2.0
    # The DRAM-cache acceptance bar: every newly vectorized platform must
    # reach >= 5x on the page-granular page-cache-friendly trace.
    speedups = dram_cache_speedups(results)
    assert set(speedups) == set(DRAM_CACHE_PLATFORMS)
    for platform, speedup in speedups.items():
        assert speedup >= DRAM_CACHE_MIN_SPEEDUP, (platform, speedup)
    # The batched flash-stack acceptance bar: the migration-bound platforms
    # must reach >= 5x on the migration-heavy trace.
    flash_speedups = migration_speedups(results)
    assert set(flash_speedups) == set(MIGRATION_PLATFORMS)
    for platform, speedup in flash_speedups.items():
        assert speedup >= MIGRATION_MIN_SPEEDUP, (platform, speedup)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="scalar vs batched replay throughput")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON record path "
                             "(default: results/BENCH_replay_throughput.json)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="replays per measurement (best-of, default 3)")
    args = parser.parse_args(argv)
    results = measure(repeats=args.repeats)
    print(_report(results))
    print(f"-> {write_record(results, args.output)}")
    best = max(row["speedup"] for by_workload in results.values()
               for row in by_workload.values())
    ok = (best >= 2.0
          and all(speedup >= DRAM_CACHE_MIN_SPEEDUP
                  for speedup in dram_cache_speedups(results).values())
          and all(speedup >= MIGRATION_MIN_SPEEDUP
                  for speedup in migration_speedups(results).values()))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
