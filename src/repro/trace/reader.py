"""Zero-copy replay of ``repro.trace/1`` files.

:class:`TraceReader` memory-maps a trace file and serves column windows.
For uncompressed files every window that falls inside one chunk record is a
``np.frombuffer`` view straight onto the map — no copy, no decode — which
is exactly the common replay shape: the batched replay loop walks windows
of ``replay_chunk_size`` (thousands) accesses through file chunks of
:data:`~repro.trace.format.DEFAULT_CHUNK_ACCESSES` (a million), so almost
every window it sees is a zero-copy slice.  Zlib files decode one chunk at
a time behind a single-entry cache, so sequential replay pays one inflate
per chunk and RSS stays bounded by one chunk of column data regardless of
trace length.

:class:`FileAccessStream` adapts a reader window to the
:class:`~repro.workloads.trace.AccessStream` interface.  The batched
replay contract only ever calls ``chunks()``/``len()`` — both stream from
the file — so replaying a 100M-access trace never materialises it.  The
full-column accessors (``addresses``/``sizes``/``writes``) exist for the
scalar compatibility path and materialise the window on first touch;
that is deliberate and documented, not an accident to optimise away.
"""

from __future__ import annotations

import bisect
import hashlib
import mmap
import zlib
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

import numpy as np

from ..workloads.trace import AccessStream, MemoryAccess, WorkloadTrace
from .format import (
    ACCESS_BYTES,
    TraceFormatError,
    content_hash_of,
    trace_summary,
)

_I8 = np.dtype("<i8")


def _empty_stream() -> AccessStream:
    return AccessStream(np.empty(0, dtype=np.int64),
                        np.empty(0, dtype=np.int64),
                        np.empty(0, dtype=bool))


class TraceReader:
    """Random-access window server over one ``repro.trace/1`` file.

    Opening validates header, footer and chunk index (rejecting truncated
    or torn files) but reads no column data.  ``verify_chunks=True`` makes
    every uncompressed chunk CRC-checked on first access; zlib chunks are
    always CRC-checked when decoded (the check is cheap next to the
    inflate).  :meth:`verify` does a full pass: every CRC plus the
    chunking-invariant content hash against the footer.
    """

    def __init__(self, path: Union[str, Path], *,
                 verify_chunks: bool = False) -> None:
        self.path = Path(path)
        self.footer: Dict[str, Any] = trace_summary(self.path)
        self.length: int = self.footer["length"]
        self.compression: str = self.footer["compression"]
        self.chunk_accesses: int = self.footer["chunk_accesses"]
        self.verify_chunks = verify_chunks
        # bounds[i] is the absolute access index where chunk i starts;
        # bounds[-1] == length.  Window lookup is a bisect over this.
        bounds: List[int] = [0]
        for _offset, accesses, _stored, _crc in self.footer["chunks"]:
            bounds.append(bounds[-1] + accesses)
        self._bounds = bounds
        self._handle = open(self.path, "rb")
        self._mmap = (mmap.mmap(self._handle.fileno(), 0,
                                access=mmap.ACCESS_READ)
                      if self.footer["data_end"] else None)
        self._cached_index: Optional[int] = None
        self._cached_stream: Optional[AccessStream] = None

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self._cached_index = None
        self._cached_stream = None
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:
                # Zero-copy views onto the map are still alive; the map
                # stays open until they are collected.
                pass
            else:
                self._mmap = None
        self._handle.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- chunk access ------------------------------------------------------------

    def _chunk_payload(self, index: int) -> memoryview:
        """The uncompressed column payload of chunk *index* (no copy for
        uncompressed files, one inflate for zlib)."""
        offset, accesses, stored, crc = self.footer["chunks"][index]
        if self.compression == "zlib":
            try:
                payload = memoryview(
                    zlib.decompress(self._mmap[offset:offset + stored]))
            except zlib.error as error:
                raise TraceFormatError(
                    f"{self.path}: chunk {index} failed to decompress "
                    f"({error})") from error
            if len(payload) != accesses * ACCESS_BYTES:
                raise TraceFormatError(
                    f"{self.path}: chunk {index} decompressed to "
                    f"{len(payload)} bytes, expected "
                    f"{accesses * ACCESS_BYTES}")
            if zlib.crc32(payload) != crc:
                raise TraceFormatError(
                    f"{self.path}: chunk {index} checksum mismatch")
            return payload
        payload = memoryview(self._mmap)[offset:offset + stored]
        if self.verify_chunks and zlib.crc32(payload) != crc:
            raise TraceFormatError(
                f"{self.path}: chunk {index} checksum mismatch")
        return payload

    def chunk_stream(self, index: int) -> AccessStream:
        """Chunk *index* as an AccessStream (zero-copy when uncompressed).

        A single-entry cache holds the last chunk served: sequential
        replay decodes (or re-views) each chunk exactly once, and RSS for
        compressed files is bounded by one chunk of column data.
        """
        if index == self._cached_index:
            return self._cached_stream
        _offset, accesses, _stored, _crc = self.footer["chunks"][index]
        payload = self._chunk_payload(index)
        addresses = np.frombuffer(payload, dtype=_I8, count=accesses)
        sizes = np.frombuffer(payload, dtype=_I8, count=accesses,
                              offset=8 * accesses)
        writes = np.frombuffer(payload, dtype=np.uint8, count=accesses,
                               offset=16 * accesses).view(bool)
        stream = AccessStream(addresses, sizes, writes)
        self._cached_index = index
        self._cached_stream = stream
        return stream

    def window(self, start: int, stop: int) -> AccessStream:
        """Accesses ``[start, stop)`` as a plain in-memory AccessStream.

        Zero-copy when the window falls inside one chunk record of an
        uncompressed file; otherwise the boundary pieces are concatenated
        (a copy bounded by the window size, never the trace size).
        """
        start = max(0, start)
        stop = min(stop, self.length)
        if stop <= start:
            return _empty_stream()
        first = bisect.bisect_right(self._bounds, start) - 1
        last = bisect.bisect_right(self._bounds, stop - 1) - 1
        if first == last:
            local = start - self._bounds[first]
            chunk = self.chunk_stream(first)
            return chunk[local:local + (stop - start)]
        pieces = []
        for index in range(first, last + 1):
            low = max(start, self._bounds[index]) - self._bounds[index]
            high = min(stop, self._bounds[index + 1]) - self._bounds[index]
            chunk = self.chunk_stream(index)
            pieces.append((chunk.addresses[low:high],
                           chunk.sizes[low:high],
                           chunk.writes[low:high]))
        return AccessStream(
            np.concatenate([piece[0] for piece in pieces]),
            np.concatenate([piece[1] for piece in pieces]),
            np.concatenate([piece[2] for piece in pieces]))

    def full_stream(self) -> "FileAccessStream":
        """The whole file as a lazy, chunk-streaming AccessStream."""
        return FileAccessStream(self, 0, self.length)

    # -- integrity ---------------------------------------------------------------

    def verify(self) -> str:
        """Full integrity pass; returns the verified content hash.

        Checks every chunk CRC (uncompressed files included) and refolds
        the three column digests, comparing the result to the footer's
        ``content_hash``.  Raises :class:`TraceFormatError` on the first
        mismatch.
        """
        addr_sha = hashlib.sha256()
        size_sha = hashlib.sha256()
        write_sha = hashlib.sha256()
        for index, (_off, accesses, _stored, crc) in enumerate(
                self.footer["chunks"]):
            payload = self._chunk_payload(index)
            if zlib.crc32(payload) != crc:
                raise TraceFormatError(
                    f"{self.path}: chunk {index} checksum mismatch")
            addr_sha.update(payload[:8 * accesses])
            size_sha.update(payload[8 * accesses:16 * accesses])
            write_sha.update(payload[16 * accesses:17 * accesses])
        computed = content_hash_of(addr_sha, size_sha, write_sha)
        if computed != self.footer["content_hash"]:
            raise TraceFormatError(
                f"{self.path}: content hash mismatch (footer says "
                f"{self.footer['content_hash']}, data hashes to "
                f"{computed})")
        return computed


class FileAccessStream(AccessStream):
    """A window of a trace file behind the AccessStream interface.

    ``chunks()`` / ``len()`` / iteration / slicing all stream from the
    file — this is the replay path and it never materialises more than a
    window at a time.  The full-column accessors (``addresses`` etc.)
    materialise the whole window once, for the scalar compatibility path
    (``REPRO_REPLAY_MODE=scalar``) and debugging; batched replay never
    touches them.
    """

    __slots__ = ("_reader", "_start", "_stop", "_columns_cache")

    def __init__(self, reader: TraceReader, start: int, stop: int) -> None:
        # Deliberately does NOT call AccessStream.__init__: the base slots
        # stay unset and the properties below shadow them.
        self._reader = reader
        self._start = start
        self._stop = stop
        self._columns_cache: Optional[AccessStream] = None

    @property
    def reader(self) -> TraceReader:
        return self._reader

    def _columns(self) -> AccessStream:
        cached = self._columns_cache
        if cached is None:
            cached = self._reader.window(self._start, self._stop)
            self._columns_cache = cached
        return cached

    @property
    def addresses(self) -> np.ndarray:  # materialises the window
        return self._columns().addresses

    @property
    def sizes(self) -> np.ndarray:  # materialises the window
        return self._columns().sizes

    @property
    def writes(self) -> np.ndarray:  # materialises the window
        return self._columns().writes

    # -- sequence protocol -------------------------------------------------------

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step == 1:
                return FileAccessStream(self._reader, self._start + start,
                                        self._start + stop)
            return self._columns()[index]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("access index out of range")
        return self._reader.window(self._start + index,
                                   self._start + index + 1)[0]

    def __iter__(self) -> Iterator[MemoryAccess]:
        for chunk in self.chunks(self._reader.chunk_accesses):
            yield from chunk

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessStream):
            return NotImplemented
        if len(self) != len(other):
            return False
        step = self._reader.chunk_accesses
        for start in range(0, len(self), step):
            mine = self._reader.window(self._start + start,
                                       min(self._start + start + step,
                                           self._stop))
            theirs = other[start:start + step]
            if not (np.array_equal(mine.addresses, theirs.addresses)
                    and np.array_equal(mine.sizes, theirs.sizes)
                    and np.array_equal(mine.writes, theirs.writes)):
                return False
        return True

    def __repr__(self) -> str:
        return (f"FileAccessStream({self._reader.path}, "
                f"[{self._start}:{self._stop}) of {self._reader.length})")

    # -- columnar accessors ------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Logical column footprint (17 B/access); resident memory is
        bounded by one chunk."""
        return ACCESS_BYTES * len(self)

    @property
    def write_count(self) -> int:
        if self._start == 0 and self._stop == self._reader.length:
            return self._reader.footer["write_count"]
        total = 0
        for chunk in self.chunks(self._reader.chunk_accesses):
            total += int(np.count_nonzero(chunk.writes))
        return total

    def touched_bytes(self) -> int:
        if not len(self):
            return 0
        if self._start == 0 and self._stop == self._reader.length:
            return int(self._reader.footer["max_end"])
        high = 0
        for chunk in self.chunks(self._reader.chunk_accesses):
            high = max(high, int((chunk.addresses + chunk.sizes).max()))
        return high

    def chunks(self, chunk_size: int) -> Iterator[AccessStream]:
        """Stream plain in-memory windows of at most *chunk_size* accesses.

        Each yielded window is a zero-copy view onto the map whenever it
        falls inside one file chunk (always, when *chunk_size* divides the
        file's ``chunk_accesses``); windows straddling a chunk boundary
        copy only their own accesses.
        """
        if chunk_size <= 0:
            raise ValueError("chunk size must be positive")
        for start in range(self._start, self._stop, chunk_size):
            yield self._reader.window(start,
                                      min(start + chunk_size, self._stop))


def load_trace_file(path: Union[str, Path], *,
                    dataset_bytes_override: Optional[int] = None,
                    verify_chunks: bool = False) -> WorkloadTrace:
    """Open a trace file as a replay-ready, file-backed WorkloadTrace.

    The stream is a :class:`FileAccessStream` over the whole file, so the
    trace replays with bounded RSS; the WorkloadTrace metadata comes from
    the footer (with the usual ``dataset_bytes_override`` hook applied on
    top, mirroring :func:`~repro.workloads.registry.build_trace`).
    """
    reader = TraceReader(path, verify_chunks=verify_chunks)
    meta = reader.footer["meta"]
    dataset_bytes = (dataset_bytes_override
                     if dataset_bytes_override is not None
                     else meta["dataset_bytes"])
    return WorkloadTrace(
        name=meta["name"],
        suite=meta["suite"],
        accesses=reader.full_stream(),
        dataset_bytes=dataset_bytes,
        compute_instructions_per_access=meta[
            "compute_instructions_per_access"],
        accesses_per_operation=meta["accesses_per_operation"],
        operation_unit=meta["operation_unit"],
        total_instructions=meta["total_instructions"],
    )
