"""Streaming ingestion of foreign address traces into ``repro.trace/1``.

Both importers parse their input in bounded blocks and feed a
:class:`~repro.trace.writer.TraceWriter`, so a multi-billion-access source
file converts with a working set of one chunk — the full trace is never
held in memory, mirroring the trace-collection pipelines real-system
replay studies use (collect once, replay many).

Two source shapes cover the common cases:

* **CSV** — one access per line, ``address[,size[,write]]``; addresses in
  decimal or ``0x`` hex, a leading header row and ``#`` comments are
  skipped, missing columns fall back to ``default_size`` / read.
* **Binary** — either ``addr64`` (a flat little-endian u64 address
  stream, the shape hardware trace dumps usually take) or ``records``
  (packed little-endian ``u64 address, u64 size, u8 write`` triples,
  17 bytes per access — the same bytes a ``repro.trace/1`` chunk stores).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, IO, Iterator, List, Optional, Tuple, Union

import numpy as np

from .format import DEFAULT_CHUNK_ACCESSES, TraceFormatError
from .writer import TraceWriter

#: Binary layouts understood by :func:`import_binary`.
BINARY_LAYOUTS = ("addr64", "records")

_RECORD_DTYPE = np.dtype([("address", "<u8"), ("size", "<u8"),
                          ("write", "u1")])

_TRUE_TOKENS = {"1", "true", "t", "w", "write", "y", "yes"}
_FALSE_TOKENS = {"0", "false", "f", "r", "read", "n", "no", ""}


def _parse_write(token: str, path: Path, line_number: int) -> bool:
    token = token.strip().lower()
    if token in _TRUE_TOKENS:
        return True
    if token in _FALSE_TOKENS:
        return False
    raise TraceFormatError(
        f"{path}:{line_number}: unrecognised write flag {token!r}")


def _csv_blocks(handle: IO[str], path: Path, delimiter: str,
                default_size: int, block_accesses: int
                ) -> Iterator[Tuple[List[int], List[int], List[bool]]]:
    addresses: List[int] = []
    sizes: List[int] = []
    writes: List[bool] = []
    saw_data = False
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = [field.strip() for field in line.split(delimiter)]
        try:
            address = int(fields[0], 0)
        except ValueError:
            if not saw_data:
                # A non-numeric first row is a header; anything later is
                # corrupt data.
                continue
            raise TraceFormatError(
                f"{path}:{line_number}: bad address {fields[0]!r}")
        saw_data = True
        try:
            size = int(fields[1], 0) if len(fields) > 1 and fields[1] \
                else default_size
        except ValueError:
            raise TraceFormatError(
                f"{path}:{line_number}: bad size {fields[1]!r}")
        write = (_parse_write(fields[2], path, line_number)
                 if len(fields) > 2 else False)
        addresses.append(address)
        sizes.append(size)
        writes.append(write)
        if len(addresses) >= block_accesses:
            yield addresses, sizes, writes
            addresses, sizes, writes = [], [], []
    if addresses:
        yield addresses, sizes, writes


def import_csv(source: Union[str, Path], dest: Union[str, Path], *,
               default_size: int = 64,
               delimiter: str = ",",
               chunk_accesses: int = DEFAULT_CHUNK_ACCESSES,
               compression: Optional[str] = None,
               meta: Optional[Dict[str, Any]] = None) -> Path:
    """Convert a CSV access log into a ``repro.trace/1`` file."""
    source = Path(source)
    file_meta = {"name": source.stem, "suite": "imported"}
    file_meta.update(meta or {})
    with TraceWriter(dest, chunk_accesses=chunk_accesses,
                     compression=compression, meta=file_meta) as writer:
        with open(source, "r", encoding="utf-8") as handle:
            for addresses, sizes, writes in _csv_blocks(
                    handle, source, delimiter, default_size,
                    chunk_accesses):
                writer.append_arrays(
                    np.asarray(addresses, dtype=np.int64),
                    np.asarray(sizes, dtype=np.int64),
                    np.asarray(writes, dtype=bool))
    return writer.path


def _checked_int64(values: np.ndarray, what: str, source: Path) -> np.ndarray:
    if len(values) and int(values.max()) > np.iinfo(np.int64).max:
        raise TraceFormatError(
            f"{source}: {what} exceeds the int64 address space")
    return values.astype(np.int64)


def import_binary(source: Union[str, Path], dest: Union[str, Path], *,
                  layout: str = "addr64",
                  access_size: int = 64,
                  chunk_accesses: int = DEFAULT_CHUNK_ACCESSES,
                  compression: Optional[str] = None,
                  meta: Optional[Dict[str, Any]] = None) -> Path:
    """Convert a binary address stream into a ``repro.trace/1`` file.

    ``layout="addr64"`` reads flat little-endian u64 byte addresses (every
    access becomes an ``access_size``-byte read); ``layout="records"``
    reads packed 17-byte ``(u64 address, u64 size, u8 write)`` triples.
    A trailing partial record means a truncated dump and is rejected.
    """
    if layout not in BINARY_LAYOUTS:
        raise ValueError(f"unknown binary layout {layout!r}; expected one "
                         f"of {BINARY_LAYOUTS}")
    source = Path(source)
    dtype = np.dtype("<u8") if layout == "addr64" else _RECORD_DTYPE
    file_meta = {"name": source.stem, "suite": "imported"}
    file_meta.update(meta or {})
    block_bytes = chunk_accesses * dtype.itemsize
    with TraceWriter(dest, chunk_accesses=chunk_accesses,
                     compression=compression, meta=file_meta) as writer:
        with open(source, "rb") as handle:
            while True:
                block = handle.read(block_bytes)
                if not block:
                    break
                if len(block) % dtype.itemsize:
                    raise TraceFormatError(
                        f"{source}: truncated {layout} stream "
                        f"({len(block) % dtype.itemsize} trailing bytes)")
                records = np.frombuffer(block, dtype=dtype)
                if layout == "addr64":
                    addresses = _checked_int64(records, "address", source)
                    writer.append_arrays(
                        addresses, access_size,
                        np.zeros(len(addresses), dtype=bool))
                else:
                    writer.append_arrays(
                        _checked_int64(records["address"], "address",
                                       source),
                        _checked_int64(records["size"], "size", source),
                        records["write"].astype(bool))
    return writer.path
