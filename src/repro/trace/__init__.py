"""``repro.trace`` — the out-of-core columnar trace store.

A versioned on-disk format (``repro.trace/1``: chunked int64 address /
int64 size / bool write columns, per-chunk checksums, a footer index and
optional zlib-per-chunk compression), a streaming :class:`TraceWriter`, a
memory-mapping :class:`TraceReader` whose replay path is zero-copy for
uncompressed files, and streaming CSV/binary importers.  Everything here
works chunk-at-a-time: building, importing, verifying and replaying a
trace all run in memory bounded by one chunk, so trace length is limited
by disk, not RAM.

Workload names of the form ``trace:<path>`` plug trace files into the
rest of the stack — :func:`repro.workloads.registry.build_trace`, run
specs, the run cache, shard planning and ``repro serve`` all accept them.
"""

from .format import (
    ACCESS_BYTES,
    COMPRESSIONS,
    DEFAULT_CHUNK_ACCESSES,
    TRACE_SCHEMA,
    TRACE_SOURCE_PREFIX,
    TraceFormatError,
    is_trace_source,
    read_trace_footer,
    trace_run_identity,
    trace_source_name,
    trace_source_path,
    trace_summary,
)
from .importers import BINARY_LAYOUTS, import_binary, import_csv
from .reader import FileAccessStream, TraceReader, load_trace_file
from .writer import TraceWriter, build_trace_file, write_stream

__all__ = [
    "ACCESS_BYTES",
    "BINARY_LAYOUTS",
    "COMPRESSIONS",
    "DEFAULT_CHUNK_ACCESSES",
    "TRACE_SCHEMA",
    "TRACE_SOURCE_PREFIX",
    "TraceFormatError",
    "TraceReader",
    "TraceWriter",
    "FileAccessStream",
    "build_trace_file",
    "import_binary",
    "import_csv",
    "is_trace_source",
    "load_trace_file",
    "read_trace_footer",
    "trace_run_identity",
    "trace_source_name",
    "trace_source_path",
    "trace_summary",
    "write_stream",
]
