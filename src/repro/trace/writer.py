"""Streaming construction of ``repro.trace/1`` files.

:class:`TraceWriter` accepts column data in arbitrarily sized pieces —
generator chunks, importer parse blocks, whole in-memory streams — buffers
them to exact ``chunk_accesses`` boundaries, and writes one chunk record at
a time, so building a billion-access trace never holds more than one chunk
of column data plus the running footer index.  The file lands atomically:
everything is written to a same-directory temp name and ``os.replace``\\ d
over the target at :meth:`~TraceWriter.close`, so readers can never observe
a half-written trace and a crashed build leaves no valid file behind.

:func:`build_trace_file` is the generator front-end: it materialises any
registry workload to disk at any scale by streaming the pattern generator's
chunk-wise emission (:meth:`~repro.workloads.generators
.AccessPatternGenerator.stream_chunks`, bit-identical to the one-shot
in-memory build) straight into a writer, and records the generator
**provenance** — workload name, exact scale, dataset override — in the
footer so file-backed submissions of the workload share run-cache identity
with in-memory ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import os
import socket
import time
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from ..workloads.trace import AccessStream
from .format import (
    ACCESS_BYTES,
    COMPRESSIONS,
    DEFAULT_CHUNK_ACCESSES,
    FLAG_ZLIB,
    MAGIC,
    TRACE_SCHEMA,
    content_hash_of,
    encode_footer,
    pad_to_alignment,
    trace_meta_defaults,
)

#: Disambiguates temp files within one process (mirrors atomic_write_text).
_TMP_COUNTER = itertools.count()

_PAD = bytes(8)


class TraceWriter:
    """Build one trace file chunk-at-a-time with bounded memory.

    Parameters
    ----------
    path:
        Final location of the trace file.  The writer writes a temp file
        next to it and renames on :meth:`close`.
    chunk_accesses:
        Accesses per chunk record.  Every chunk except the last holds
        exactly this many, so a reader's re-chunking windows slice
        zero-copy whenever they align.
    compression:
        ``None``/``"none"`` for raw (memory-mappable) column bytes, or
        ``"zlib"`` for per-chunk compressed records.
    meta:
        Optional :class:`~repro.workloads.trace.WorkloadTrace` metadata
        overrides (``name``, ``suite``, ``dataset_bytes``, ...); anything
        not given is defaulted from the data at close time.
    provenance:
        Optional generator provenance dict (``workload`` + ``scale`` +
        ``dataset_bytes_override``) recorded verbatim in the footer.

    Use as a context manager: an exception inside the ``with`` block
    aborts the build and removes the temp file, leaving *path* untouched.
    """

    def __init__(self, path: Union[str, Path], *,
                 chunk_accesses: int = DEFAULT_CHUNK_ACCESSES,
                 compression: Optional[str] = None,
                 meta: Optional[Dict[str, Any]] = None,
                 provenance: Optional[Dict[str, Any]] = None,
                 validate: bool = True) -> None:
        compression = compression or "none"
        if compression not in COMPRESSIONS:
            raise ValueError(f"unknown compression {compression!r}; "
                             f"expected one of {COMPRESSIONS}")
        if chunk_accesses <= 0:
            raise ValueError("chunk_accesses must be positive")
        self.path = Path(path)
        self.chunk_accesses = int(chunk_accesses)
        self.compression = compression
        self.meta = dict(meta or {})
        self.provenance = (dict(provenance)
                           if provenance is not None else None)
        self.validate = validate

        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._tmp = self.path.with_name(
            f".{self.path.name}.{socket.gethostname()}.{os.getpid()}"
            f".{next(_TMP_COUNTER)}.tmp")
        self._handle = open(self._tmp, "wb")
        flags = FLAG_ZLIB if compression == "zlib" else 0
        self._handle.write(MAGIC + flags.to_bytes(2, "little"))
        self._offset = len(MAGIC) + 2

        self._pending: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._pending_count = 0
        self._chunks: List[List[int]] = []
        self.length = 0
        self.write_count = 0
        self._min_address: Optional[int] = None
        self._max_end = 0
        self._addr_sha = hashlib.sha256()
        self._size_sha = hashlib.sha256()
        self._write_sha = hashlib.sha256()
        self._closed = False

    # -- appending ---------------------------------------------------------------

    def append(self, stream: AccessStream) -> None:
        """Append every access of *stream* (an AccessStream or view)."""
        self.append_arrays(stream.addresses, stream.sizes, stream.writes)

    def append_arrays(self, addresses, sizes, writes) -> None:
        """Append columnar data; *sizes* may be a scalar (fixed size)."""
        if self._closed:
            raise ValueError("TraceWriter is closed")
        piece = AccessStream.from_arrays(addresses, sizes, writes,
                                         validate=self.validate)
        if not len(piece):
            return
        self._pending.append((piece.addresses, piece.sizes, piece.writes))
        self._pending_count += len(piece)
        while self._pending_count >= self.chunk_accesses:
            self._flush_chunk(self.chunk_accesses)

    # -- chunk emission ----------------------------------------------------------

    def _take(self, count: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pop exactly *count* buffered accesses as three columns."""
        parts: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        taken = 0
        while taken < count:
            addresses, sizes, writes = self._pending[0]
            need = count - taken
            if len(addresses) <= need:
                parts.append(self._pending.pop(0))
                taken += len(addresses)
            else:
                parts.append((addresses[:need], sizes[:need], writes[:need]))
                self._pending[0] = (addresses[need:], sizes[need:],
                                    writes[need:])
                taken += need
        self._pending_count -= count
        if len(parts) == 1:
            return parts[0]
        return (np.concatenate([part[0] for part in parts]),
                np.concatenate([part[1] for part in parts]),
                np.concatenate([part[2] for part in parts]))

    def _flush_chunk(self, count: int) -> None:
        addresses, sizes, writes = self._take(count)
        addr_bytes = np.ascontiguousarray(addresses, dtype="<i8").tobytes()
        size_bytes = np.ascontiguousarray(sizes, dtype="<i8").tobytes()
        write_bytes = np.ascontiguousarray(writes, dtype=np.uint8).tobytes()
        self._addr_sha.update(addr_bytes)
        self._size_sha.update(size_bytes)
        self._write_sha.update(write_bytes)
        payload = addr_bytes + size_bytes + write_bytes
        crc = zlib.crc32(payload)

        if self.compression == "zlib":
            record = zlib.compress(payload)
        else:
            record = payload + _PAD[:pad_to_alignment(len(payload))]
        stored = (len(record) if self.compression == "zlib"
                  else len(payload))
        self._chunks.append([self._offset, count, stored, crc])
        self._handle.write(record)
        self._offset += len(record)

        self.length += count
        self.write_count += int(np.count_nonzero(writes))
        low = int(addresses.min())
        self._min_address = (low if self._min_address is None
                             else min(self._min_address, low))
        self._max_end = max(self._max_end, int((addresses + sizes).max()))

    # -- finalisation ------------------------------------------------------------

    @property
    def content_hash(self) -> str:
        """Chunking-invariant identity of everything appended so far."""
        return content_hash_of(self._addr_sha.copy(), self._size_sha.copy(),
                               self._write_sha.copy())

    def footer(self) -> Dict[str, Any]:
        """The footer payload :meth:`close` will write."""
        meta = trace_meta_defaults(self.path.stem, self.length,
                                   self._max_end)
        meta.update(self.meta)
        return {
            "schema": TRACE_SCHEMA,
            "length": self.length,
            "compression": self.compression,
            "chunk_accesses": self.chunk_accesses,
            "chunks": self._chunks,
            "content_hash": self.content_hash,
            "write_count": self.write_count,
            "min_address": self._min_address,
            "max_end": self._max_end,
            "meta": meta,
            "provenance": self.provenance,
            "created_unix": time.time(),
        }

    def close(self) -> Path:
        """Flush the final partial chunk, write the footer, rename, return."""
        if self._closed:
            return self.path
        if self._pending_count:
            self._flush_chunk(self._pending_count)
        footer = self.footer()
        try:
            self._handle.write(encode_footer(footer))
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            os.replace(self._tmp, self.path)
        except BaseException:
            self.abort()
            raise
        self._closed = True
        return self.path

    def abort(self) -> None:
        """Discard the build: close and remove the temp file."""
        if self._closed:
            return
        self._closed = True
        try:
            self._handle.close()
        finally:
            try:
                self._tmp.unlink()
            except OSError:
                pass

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_stream(path: Union[str, Path], stream: AccessStream, *,
                 chunk_accesses: int = DEFAULT_CHUNK_ACCESSES,
                 compression: Optional[str] = None,
                 meta: Optional[Dict[str, Any]] = None,
                 provenance: Optional[Dict[str, Any]] = None) -> Path:
    """Write one in-memory (or file-backed) stream as a trace file."""
    with TraceWriter(path, chunk_accesses=chunk_accesses,
                     compression=compression, meta=meta,
                     provenance=provenance) as writer:
        for chunk in stream.chunks(chunk_accesses):
            writer.append(chunk)
    return writer.path


def build_trace_file(workload: str, path: Union[str, Path], *,
                     scale=None, dataset_bytes_override: Optional[int] = None,
                     chunk_accesses: int = DEFAULT_CHUNK_ACCESSES,
                     compression: Optional[str] = None) -> Path:
    """Materialise registry workload *workload* to disk at any scale.

    The trace content is **bit-identical** to
    ``build_trace(workload, scale).stream``: the pattern generator's
    chunk-wise emission consumes its RNG in exactly the one-shot draw
    order (see :meth:`~repro.workloads.generators.AccessPatternGenerator
    .stream_chunks`), but only ever holds one chunk of column data — no
    per-access Python objects, no full-trace arrays — so trace length is
    bounded by disk, not RAM.  The footer records full provenance, making
    ``trace:<path>`` submissions of this file cache-key-identical to
    in-memory submissions of (*workload*, *scale*).
    """
    from ..workloads.registry import ExperimentScale, trace_plan

    scale = scale if scale is not None else ExperimentScale()
    plan = trace_plan(workload, scale,
                      dataset_bytes_override=dataset_bytes_override)
    provenance = {
        "workload": workload,
        "scale": dataclasses.asdict(scale),
        "dataset_bytes_override": dataset_bytes_override,
    }
    with TraceWriter(path, chunk_accesses=chunk_accesses,
                     compression=compression, meta=plan.meta,
                     provenance=provenance) as writer:
        for chunk in plan.generator.stream_chunks(
                plan.access_count, plan.write_fraction,
                write_rng=plan.write_rng(),
                chunk_accesses=chunk_accesses):
            writer.append(chunk)
    return writer.path
