"""The ``repro.trace/1`` on-disk columnar trace format.

One trace file holds three logical columns — int64 byte addresses, int64
access sizes, bool write flags — split into fixed-size chunks so writers
stream and readers replay without ever materialising the whole trace:

.. code-block:: text

    offset 0   MAGIC  b"repro.trace/1\\n"            (14 bytes)
    offset 14  flags  <H little-endian                (bit 0: zlib chunks)
    offset 16  chunk records, back to back
    ...        footer JSON (utf-8)
    EOF-16     <Q footer length in bytes
    EOF-8      END_MAGIC  b"RPTRACE1"

An **uncompressed chunk record** of *n* accesses is the raw column bytes —
``<i8 * n`` addresses, ``<i8 * n`` sizes, ``u8 * n`` write flags — padded
with zeros to the next 8-byte boundary, so every record (and therefore
every int64 column within it) starts 8-aligned and a reader can hand out
zero-copy ``np.frombuffer`` views straight onto the memory map.  A **zlib
chunk record** is ``zlib.compress`` of the same payload, unpadded.

The **footer** is one JSON object carrying the chunk index (``[offset,
accesses, stored_bytes, crc32]`` per chunk, where the CRC always covers the
*uncompressed* payload), summary statistics the in-memory
:class:`~repro.workloads.trace.AccessStream` would otherwise need a full
column scan for (``write_count``, ``min_address``, ``max_end``), the
:class:`~repro.workloads.trace.WorkloadTrace` metadata needed to replay the
file, an optional generator **provenance** record (workload name + the
exact :class:`~repro.workloads.registry.ExperimentScale` it was built
under), and a chunking-invariant **content hash**: three running SHA-256s
— one per logical column, fed in access order — folded into one digest, so
re-chunking or re-compressing a trace never changes its identity.

Files are written atomically (same-directory temp + ``os.replace``, the
:func:`repro.runner.artifacts.atomic_write_text` pattern), so a torn write
can never leave a half-trace behind a valid name; readers validate magic,
footer structure and chunk-index bounds at open and reject anything
truncated or torn.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

#: Schema tag recorded in the footer; bump when the layout changes.
TRACE_SCHEMA = "repro.trace/1"

#: Leading magic; doubles as a human-readable file(1) hint.
MAGIC = b"repro.trace/1\n"
#: Trailing magic: the last 8 bytes of every complete trace file.
END_MAGIC = b"RPTRACE1"
#: ``<Q footer_length`` + :data:`END_MAGIC`.
TAIL_STRUCT = struct.Struct("<Q8s")
#: ``MAGIC`` + ``<H`` flags.
HEADER_SIZE = len(MAGIC) + 2
#: Header flag bit 0: chunk records are zlib-compressed.
FLAG_ZLIB = 0x1

#: Supported chunk compressions.
COMPRESSIONS = ("none", "zlib")

#: Default accesses per chunk (1 Mi accesses = 17 MB of column data):
#: large enough that per-chunk overhead vanishes, small enough that a
#: compressed reader's working set stays a few tens of megabytes.
DEFAULT_CHUNK_ACCESSES = 1 << 20

#: Bytes per access across the three columns (8 + 8 + 1).
ACCESS_BYTES = 17

#: Workload names with this prefix name a trace file, not a Table III
#: generator: ``"trace:/data/seqRd.trace"``.
TRACE_SOURCE_PREFIX = "trace:"


class TraceFormatError(ValueError):
    """A trace file is structurally invalid, truncated or corrupt."""


def is_trace_source(workload: object) -> bool:
    """True when a workload name refers to a ``repro.trace/1`` file."""
    return (isinstance(workload, str)
            and workload.startswith(TRACE_SOURCE_PREFIX))


def trace_source_path(workload: str) -> Path:
    """The file path a ``trace:`` workload name points at."""
    if not is_trace_source(workload):
        raise ValueError(f"not a trace source: {workload!r}")
    return Path(workload[len(TRACE_SOURCE_PREFIX):])


def trace_source_name(path: Union[str, Path]) -> str:
    """The ``trace:<path>`` workload name for a trace file."""
    return f"{TRACE_SOURCE_PREFIX}{path}"


def pad_to_alignment(nbytes: int, alignment: int = 8) -> int:
    """Zero bytes needed to pad *nbytes* to the next alignment boundary."""
    return (-nbytes) % alignment


def content_hash_of(addr_sha: "hashlib._Hash", size_sha: "hashlib._Hash",
                    write_sha: "hashlib._Hash") -> str:
    """Fold the three per-column digests into the one trace identity.

    Each column digest is fed the column's little-endian bytes in access
    order, chunk by chunk — concatenated feeds hash identically however the
    chunks are cut, which is what makes the content hash (and therefore
    the run-cache identity of a file-backed run) invariant under
    re-chunking and re-compression.
    """
    outer = hashlib.sha256(TRACE_SCHEMA.encode("ascii") + b"\x00")
    outer.update(addr_sha.digest())
    outer.update(size_sha.digest())
    outer.update(write_sha.digest())
    return f"sha256:{outer.hexdigest()}"


def encode_footer(footer: Dict[str, Any]) -> bytes:
    """Footer JSON + fixed tail, ready to append after the last chunk."""
    body = json.dumps(footer, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return body + TAIL_STRUCT.pack(len(body), END_MAGIC)


_FOOTER_FIELDS = ("schema", "length", "compression", "chunk_accesses",
                  "chunks", "content_hash", "write_count", "min_address",
                  "max_end", "meta")


def validate_footer(footer: Dict[str, Any], path: Path,
                    file_size: int) -> Dict[str, Any]:
    """Structural validation of a parsed footer; returns it for chaining."""
    if footer.get("schema") != TRACE_SCHEMA:
        raise TraceFormatError(
            f"{path}: unsupported trace schema {footer.get('schema')!r} "
            f"(expected {TRACE_SCHEMA})")
    missing = [name for name in _FOOTER_FIELDS if name not in footer]
    if missing:
        raise TraceFormatError(f"{path}: footer is missing fields {missing}")
    if footer["compression"] not in COMPRESSIONS:
        raise TraceFormatError(
            f"{path}: unknown compression {footer['compression']!r}")
    total = 0
    previous_end = HEADER_SIZE
    for index, entry in enumerate(footer["chunks"]):
        if not (isinstance(entry, list) and len(entry) == 4):
            raise TraceFormatError(
                f"{path}: chunk index entry {index} is malformed")
        offset, accesses, stored_bytes, _crc = entry
        if accesses <= 0:
            raise TraceFormatError(
                f"{path}: chunk {index} has non-positive access count")
        if offset < previous_end or offset + stored_bytes > file_size:
            raise TraceFormatError(
                f"{path}: chunk {index} lies outside the data region "
                f"(offset {offset}, {stored_bytes} stored bytes, file is "
                f"{file_size} bytes)")
        previous_end = offset + stored_bytes
        total += accesses
    if total != footer["length"]:
        raise TraceFormatError(
            f"{path}: chunk index covers {total} accesses but the footer "
            f"declares {footer['length']}")
    return footer


def read_trace_footer(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse and validate header + footer of one trace file (no data I/O).

    Raises :class:`TraceFormatError` for anything that is not a complete,
    structurally sound ``repro.trace/1`` file — wrong magic, truncated
    tail, torn footer JSON, chunk offsets outside the data region.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            header = handle.read(HEADER_SIZE)
            if len(header) < HEADER_SIZE or not header.startswith(MAGIC):
                raise TraceFormatError(
                    f"{path}: not a {TRACE_SCHEMA} file (bad magic)")
            (flags,) = struct.unpack_from("<H", header, len(MAGIC))
            handle.seek(0, os.SEEK_END)
            file_size = handle.tell()
            if file_size < HEADER_SIZE + TAIL_STRUCT.size:
                raise TraceFormatError(f"{path}: truncated (no footer tail)")
            handle.seek(file_size - TAIL_STRUCT.size)
            footer_length, end_magic = TAIL_STRUCT.unpack(
                handle.read(TAIL_STRUCT.size))
            if end_magic != END_MAGIC:
                raise TraceFormatError(
                    f"{path}: truncated or torn (bad end magic)")
            footer_start = file_size - TAIL_STRUCT.size - footer_length
            if footer_start < HEADER_SIZE:
                raise TraceFormatError(
                    f"{path}: footer length {footer_length} exceeds the "
                    f"file")
            handle.seek(footer_start)
            body = handle.read(footer_length)
    except OSError as error:
        raise TraceFormatError(f"{path}: cannot read trace file "
                               f"({error})") from error
    try:
        footer = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TraceFormatError(f"{path}: footer is not valid JSON "
                               f"({error})") from error
    if not isinstance(footer, dict):
        raise TraceFormatError(f"{path}: footer is not a JSON object")
    validate_footer(footer, path, footer_start)
    expect_zlib = footer["compression"] == "zlib"
    if bool(flags & FLAG_ZLIB) != expect_zlib:
        raise TraceFormatError(
            f"{path}: header compression flag disagrees with the footer")
    footer["data_end"] = footer_start
    return footer


# ---------------------------------------------------------------------------
# Footer summary cache
# ---------------------------------------------------------------------------
#
# Run-cache key computation, shard cost estimation and spec labelling all
# consult the footer of the same files over and over (once per spec, per
# submission); one parsed footer per (path, size, mtime) makes those reads
# O(1) dictionary hits after the first.

_SUMMARY_CACHE: Dict[Tuple[str, int, int], Dict[str, Any]] = {}


def trace_summary(path: Union[str, Path]) -> Dict[str, Any]:
    """The (cached) validated footer of one trace file.

    The cache key includes file size and mtime, so overwriting a trace file
    in place — the atomic-rename writer always does — invalidates its
    entry naturally.  Treat the returned dict as read-only.
    """
    path = Path(path)
    try:
        stat = path.stat()
    except OSError as error:
        raise TraceFormatError(f"{path}: cannot stat trace file "
                               f"({error})") from error
    key = (str(path.resolve()), stat.st_size, stat.st_mtime_ns)
    cached = _SUMMARY_CACHE.get(key)
    if cached is None:
        cached = read_trace_footer(path)
        _SUMMARY_CACHE[key] = cached
    return cached


def trace_run_identity(workload: str, scale_dict: Dict[str, Any],
                       dataset_bytes_override: Optional[int]
                       ) -> Union[str, Dict[str, str]]:
    """What a ``trace:`` workload contributes to a run-cache key.

    When the file records generator **provenance** and that provenance was
    built under exactly the scale and dataset override of the run at hand,
    the file is bit-identical to what :func:`~repro.workloads.registry
    .build_trace` would synthesise in memory — so the identity collapses to
    the provenance workload *name* and the cache key of the file-backed
    submission equals the in-memory one: the content-addressed cache,
    shard-manifest keys and ``repro serve`` dedup all treat the two
    submissions as the same run.  Imported traces (or a scale mismatch)
    fall back to the chunking-invariant content hash, so any change to the
    file's accesses — and nothing else — changes the key.
    """
    summary = trace_summary(trace_source_path(workload))
    provenance = summary.get("provenance")
    if (isinstance(provenance, dict)
            and provenance.get("scale") == scale_dict
            and provenance.get("dataset_bytes_override")
            == dataset_bytes_override):
        return provenance["workload"]
    return {"trace_content": summary["content_hash"]}


def trace_meta_defaults(name: str, length: int, max_end: int) -> Dict[str, Any]:
    """WorkloadTrace metadata defaults for traces without richer metadata."""
    return {
        "name": name,
        "suite": "trace",
        "dataset_bytes": max(int(max_end), 1),
        "compute_instructions_per_access": 0.0,
        "accesses_per_operation": 1.0,
        "operation_unit": "ops",
        "total_instructions": int(length),
    }


def summarize(footer: Dict[str, Any]) -> List[str]:
    """Human-readable ``repro trace info`` lines for one parsed footer."""
    meta = footer["meta"]
    chunks = footer["chunks"]
    stored = sum(entry[2] for entry in chunks)
    logical = footer["length"] * ACCESS_BYTES
    lines = [
        f"schema            {footer['schema']}",
        f"accesses          {footer['length']}",
        f"write fraction    "
        f"{footer['write_count'] / footer['length']:.3f}"
        if footer["length"] else "write fraction    n/a",
        f"address range     [{footer['min_address']}, {footer['max_end']})"
        if footer["length"] else "address range     empty",
        f"chunks            {len(chunks)} x <= {footer['chunk_accesses']} "
        f"accesses",
        f"compression       {footer['compression']}"
        + (f" ({stored / logical:.2%} of raw)" if logical else ""),
        f"stored bytes      {stored}",
        f"content hash      {footer['content_hash']}",
        f"workload          {meta['name']} ({meta['suite']}, "
        f"{meta['operation_unit']}, dataset {meta['dataset_bytes']} B)",
    ]
    provenance = footer.get("provenance")
    if provenance:
        scale = provenance.get("scale", {})
        lines.append(
            f"provenance        built from workload "
            f"{provenance['workload']!r} at scale "
            f"{json.dumps(scale, sort_keys=True)}")
    else:
        lines.append("provenance        none (imported or hand-built)")
    return lines
