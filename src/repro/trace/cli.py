"""``python -m repro trace`` — build, import and inspect trace files.

Verbs
-----

``trace build OUTPUT --workload NAME``
    Materialise a registry workload to disk at any scale (the scale knobs
    mirror ``repro run``; ``--accesses N`` pins the trace to exactly N
    accesses).  The build streams chunk-wise through
    :class:`~repro.trace.writer.TraceWriter`, so trace length is bounded
    by disk, not RAM, and the file records provenance making
    ``trace:OUTPUT`` submissions cache-key-identical to in-memory runs of
    the same workload at the same scale.

``trace import SOURCE OUTPUT --format {csv,addr64,records}``
    Convert a foreign access log — CSV lines or binary address streams —
    into a ``repro.trace/1`` file with bounded memory.

``trace info PATH ...``
    Print each file's footer summary: length, write fraction, address
    range, chunking, compression ratio, content hash, provenance.

``trace verify PATH ...``
    Full integrity pass over each file: structure, every chunk checksum,
    and the chunking-invariant content hash.  Exits non-zero on the first
    corrupt file — what the CI trace leg runs after building.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

from .format import (
    COMPRESSIONS,
    TraceFormatError,
    read_trace_footer,
    summarize,
    trace_source_name,
)
from .importers import BINARY_LAYOUTS, import_binary, import_csv
from .reader import TraceReader
from .writer import build_trace_file


def register(subparsers) -> None:
    """Attach the ``trace`` verb tree to the main ``repro`` parser."""
    # Late import: runner.cli imports this module from build_parser(), so
    # the scale-knob helpers must be looked up at registration time.
    from ..runner.cli import _add_scale_arguments

    trace = subparsers.add_parser(
        "trace", help="build, import and inspect repro.trace/1 files")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    build = trace_sub.add_parser(
        "build", help="materialise a registry workload as a trace file")
    build.add_argument("output", type=Path, metavar="OUTPUT",
                       help="trace file to write")
    build.add_argument("--workload", required=True, metavar="NAME",
                       help="Table III workload name to materialise")
    build.add_argument("--dataset-bytes", type=int, default=None,
                       help="dataset size override (mirrors the "
                            "dataset_bytes_override spec field)")
    build.add_argument("--accesses", type=int, default=None,
                       help="pin the trace to exactly N accesses "
                            "(sets min=max accesses on the scale)")
    _add_scale_arguments(build)
    _add_output_arguments(build)
    build.set_defaults(handler=cmd_trace_build)

    imp = trace_sub.add_parser(
        "import", help="convert a foreign access log into a trace file")
    imp.add_argument("source", type=Path, metavar="SOURCE",
                     help="file to ingest")
    imp.add_argument("output", type=Path, metavar="OUTPUT",
                     help="trace file to write")
    imp.add_argument("--format", dest="source_format", required=True,
                     choices=("csv",) + BINARY_LAYOUTS,
                     help="source shape: csv (address[,size[,write]] "
                          "lines), addr64 (flat LE u64 addresses) or "
                          "records (packed u64,u64,u8 triples)")
    imp.add_argument("--default-size", type=int, default=64,
                     help="access size when the source has no size column "
                          "(default: 64)")
    imp.add_argument("--delimiter", default=",",
                     help="CSV field delimiter (default: ',')")
    imp.add_argument("--name", default=None,
                     help="workload name recorded in the file "
                          "(default: the source file's stem)")
    _add_output_arguments(imp)
    imp.set_defaults(handler=cmd_trace_import)

    info = trace_sub.add_parser(
        "info", help="print trace file footer summaries")
    info.add_argument("paths", nargs="+", type=Path, metavar="PATH")
    info.set_defaults(handler=cmd_trace_info)

    verify = trace_sub.add_parser(
        "verify", help="full integrity check (checksums + content hash)")
    verify.add_argument("paths", nargs="+", type=Path, metavar="PATH")
    verify.set_defaults(handler=cmd_trace_verify)


def _add_output_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--chunk-accesses", type=int, default=None,
                        help="accesses per chunk record (default: 1Mi)")
    parser.add_argument("--compression", choices=COMPRESSIONS,
                        default="none",
                        help="per-chunk compression (default: none; "
                             "'none' files replay zero-copy via mmap)")


def _writer_kwargs(args: argparse.Namespace) -> dict:
    kwargs = {"compression": args.compression}
    if args.chunk_accesses is not None:
        kwargs["chunk_accesses"] = args.chunk_accesses
    return kwargs


def cmd_trace_build(args: argparse.Namespace) -> int:
    from ..runner.cli import _build_scale

    scale = _build_scale(args)
    if args.accesses is not None:
        scale = dataclasses.replace(scale, min_accesses=args.accesses,
                                    max_accesses=args.accesses)
    try:
        path = build_trace_file(
            args.workload, args.output, scale=scale,
            dataset_bytes_override=args.dataset_bytes,
            **_writer_kwargs(args))
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    footer = read_trace_footer(path)
    print(f"{args.workload}: {footer['length']} accesses -> {path} "
          f"({path.stat().st_size} bytes, {footer['compression']})")
    print(f"replay it with workload name {trace_source_name(path)!r}")
    return 0


def cmd_trace_import(args: argparse.Namespace) -> int:
    meta = {"name": args.name} if args.name else None
    try:
        if args.source_format == "csv":
            path = import_csv(args.source, args.output,
                              default_size=args.default_size,
                              delimiter=args.delimiter, meta=meta,
                              **_writer_kwargs(args))
        else:
            path = import_binary(args.source, args.output,
                                 layout=args.source_format,
                                 access_size=args.default_size, meta=meta,
                                 **_writer_kwargs(args))
    except (TraceFormatError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    footer = read_trace_footer(path)
    print(f"{args.source}: imported {footer['length']} accesses -> {path} "
          f"({path.stat().st_size} bytes, {footer['compression']})")
    print(f"replay it with workload name {trace_source_name(path)!r}")
    return 0


def cmd_trace_info(args: argparse.Namespace) -> int:
    status = 0
    for path in args.paths:
        print(f"== {path} ==")
        try:
            footer = read_trace_footer(path)
        except TraceFormatError as error:
            print(f"error: {error}", file=sys.stderr)
            status = 1
            continue
        for line in summarize(footer):
            print(f"  {line}")
    return status


def cmd_trace_verify(args: argparse.Namespace) -> int:
    status = 0
    for path in args.paths:
        try:
            with TraceReader(path) as reader:
                content_hash = reader.verify()
        except TraceFormatError as error:
            print(f"{path}: FAIL ({error})", file=sys.stderr)
            status = 1
            continue
        print(f"{path}: ok ({content_hash})")
    return status
