"""Trace records: the unit of work platforms consume.

A :class:`WorkloadTrace` is a flat sequence of :class:`MemoryAccess` records
plus the bookkeeping needed to convert simulated time into the paper's
application-level metrics (pages/s for the microbenchmark and Rodinia,
SQL operations/s for SQLite) and to charge the compute instructions that
execute between memory references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence


@dataclass(frozen=True)
class MemoryAccess:
    """One memory reference issued by the workload."""

    address: int
    size_bytes: int
    is_write: bool

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError("size must be positive")


@dataclass
class WorkloadTrace:
    """A generated trace ready to be replayed on a platform."""

    name: str
    suite: str
    accesses: List[MemoryAccess]
    dataset_bytes: int
    compute_instructions_per_access: float
    accesses_per_operation: float
    operation_unit: str  # "pages" or "ops"
    total_instructions: int

    def __post_init__(self) -> None:
        if self.dataset_bytes <= 0:
            raise ValueError("dataset size must be positive")
        if self.compute_instructions_per_access < 0:
            raise ValueError("compute instructions cannot be negative")
        if self.accesses_per_operation <= 0:
            raise ValueError("accesses_per_operation must be positive")

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.accesses)

    @property
    def memory_access_count(self) -> int:
        return len(self.accesses)

    @property
    def operations(self) -> float:
        """Application-level operations represented by the trace."""
        return self.memory_access_count / self.accesses_per_operation

    @property
    def read_count(self) -> int:
        return sum(1 for access in self.accesses if not access.is_write)

    @property
    def write_count(self) -> int:
        return sum(1 for access in self.accesses if access.is_write)

    @property
    def write_fraction(self) -> float:
        if not self.accesses:
            return 0.0
        return self.write_count / len(self.accesses)

    def touched_bytes(self) -> int:
        """Upper bound of the address range the trace touches."""
        if not self.accesses:
            return 0
        return max(access.address + access.size_bytes for access in self.accesses)

    def operations_per_second(self, elapsed_ns: float) -> float:
        """Convert a run duration into the paper's throughput metric."""
        if elapsed_ns <= 0:
            return 0.0
        return self.operations / (elapsed_ns / 1e9)
