"""Trace records: the unit of work platforms consume.

A :class:`WorkloadTrace` is an access stream plus the bookkeeping needed to
convert simulated time into the paper's application-level metrics (pages/s
for the microbenchmark and Rodinia, SQL operations/s for SQLite) and to
charge the compute instructions that execute between memory references.

The access stream itself is columnar: :class:`AccessStream` keeps one
structure-of-arrays record (int64 addresses, int64 sizes, bool write flags)
instead of one frozen :class:`MemoryAccess` dataclass per reference.  At the
scales the experiments replay this is the difference between a few dozen
bytes per access (three Python objects once boxed) and ~17 bytes per access,
and it is what lets the batched replay loop and the vectorized platforms
(:meth:`repro.platforms.base.Platform.service_batch`) work on whole chunks
at a time.  :class:`MemoryAccess` remains the scalar *view*: indexing or
iterating a stream (or a trace) yields `MemoryAccess` records, so per-access
consumers keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Union

import numpy as np


@dataclass(frozen=True)
class MemoryAccess:
    """One memory reference issued by the workload (scalar view)."""

    address: int
    size_bytes: int
    is_write: bool

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError("size must be positive")


class AccessStream:
    """A columnar (structure-of-arrays) sequence of memory references.

    The three columns always have equal length: ``addresses`` (int64 byte
    addresses), ``sizes`` (int64 access sizes) and ``writes`` (bool store
    flags).  Slicing returns a zero-copy view onto the same arrays, which is
    how :meth:`chunks` hands the replay loop cheap windows over a long
    trace; indexing and iteration materialise scalar :class:`MemoryAccess`
    records for backwards compatibility.
    """

    __slots__ = ("addresses", "sizes", "writes")

    def __init__(self, addresses: np.ndarray, sizes: np.ndarray,
                 writes: np.ndarray) -> None:
        self.addresses = addresses
        self.sizes = sizes
        self.writes = writes

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_arrays(cls, addresses, sizes, writes,
                    validate: bool = True) -> "AccessStream":
        """Build a stream from array-likes; *sizes* may be a scalar.

        The inputs are converted (not copied when already of the right
        dtype) to int64 / int64 / bool columns.  ``validate`` checks the
        same invariants :class:`MemoryAccess` enforces per record.
        """
        addresses = np.ascontiguousarray(addresses, dtype=np.int64)
        writes = np.ascontiguousarray(writes, dtype=bool)
        if np.isscalar(sizes) or getattr(sizes, "ndim", 1) == 0:
            sizes = np.full(addresses.shape, int(sizes), dtype=np.int64)
        else:
            sizes = np.ascontiguousarray(sizes, dtype=np.int64)
        if not (addresses.shape == sizes.shape == writes.shape) \
                or addresses.ndim != 1:
            raise ValueError("columns must be one-dimensional and equal-length")
        if validate and len(addresses):
            if int(addresses.min()) < 0:
                raise ValueError("address must be non-negative")
            if int(sizes.min()) <= 0:
                raise ValueError("size must be positive")
        return cls(addresses, sizes, writes)

    @classmethod
    def from_accesses(cls, accesses: Iterable[MemoryAccess]) -> "AccessStream":
        """Build a stream from scalar :class:`MemoryAccess` records."""
        accesses = list(accesses)
        addresses = np.fromiter((access.address for access in accesses),
                                dtype=np.int64, count=len(accesses))
        sizes = np.fromiter((access.size_bytes for access in accesses),
                            dtype=np.int64, count=len(accesses))
        writes = np.fromiter((access.is_write for access in accesses),
                             dtype=bool, count=len(accesses))
        return cls.from_arrays(addresses, sizes, writes)

    @classmethod
    def coerce(cls, accesses: Union["AccessStream", Sequence[MemoryAccess]]
               ) -> "AccessStream":
        """Accept either representation; lists are converted once."""
        if isinstance(accesses, AccessStream):
            return accesses
        return cls.from_accesses(accesses)

    # -- sequence protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.addresses)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return AccessStream(self.addresses[index], self.sizes[index],
                                self.writes[index])
        return MemoryAccess(address=int(self.addresses[index]),
                            size_bytes=int(self.sizes[index]),
                            is_write=bool(self.writes[index]))

    def __iter__(self) -> Iterator[MemoryAccess]:
        for address, size, write in zip(self.addresses.tolist(),
                                        self.sizes.tolist(),
                                        self.writes.tolist()):
            yield MemoryAccess(address=address, size_bytes=size,
                               is_write=write)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessStream):
            return NotImplemented
        return (np.array_equal(self.addresses, other.addresses)
                and np.array_equal(self.sizes, other.sizes)
                and np.array_equal(self.writes, other.writes))

    def __repr__(self) -> str:
        return f"AccessStream(length={len(self)}, nbytes={self.nbytes})"

    # -- columnar accessors ----------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Memory footprint of the three columns."""
        return (self.addresses.nbytes + self.sizes.nbytes
                + self.writes.nbytes)

    @property
    def read_count(self) -> int:
        return len(self) - self.write_count

    @property
    def write_count(self) -> int:
        return int(np.count_nonzero(self.writes))

    def touched_bytes(self) -> int:
        """Upper bound of the address range the stream touches."""
        if not len(self):
            return 0
        return int((self.addresses + self.sizes).max())

    def chunks(self, chunk_size: int) -> Iterator["AccessStream"]:
        """Yield zero-copy windows of at most *chunk_size* accesses."""
        if chunk_size <= 0:
            raise ValueError("chunk size must be positive")
        for start in range(0, len(self), chunk_size):
            yield self[start:start + chunk_size]

    def to_accesses(self) -> List[MemoryAccess]:
        """Materialise the stream as scalar records (tests, debugging)."""
        return list(self)


class WorkloadTrace:
    """A generated trace ready to be replayed on a platform.

    ``accesses`` accepts either an :class:`AccessStream` or a sequence of
    :class:`MemoryAccess` records (converted once); it is stored — and
    exposed through both ``trace.stream`` and the legacy ``trace.accesses``
    name — as the columnar stream.
    """

    __slots__ = ("name", "suite", "stream", "dataset_bytes",
                 "compute_instructions_per_access", "accesses_per_operation",
                 "operation_unit", "total_instructions")

    def __init__(self, name: str, suite: str,
                 accesses: Union[AccessStream, Sequence[MemoryAccess]],
                 dataset_bytes: int,
                 compute_instructions_per_access: float,
                 accesses_per_operation: float,
                 operation_unit: str,
                 total_instructions: int) -> None:
        if dataset_bytes <= 0:
            raise ValueError("dataset size must be positive")
        if compute_instructions_per_access < 0:
            raise ValueError("compute instructions cannot be negative")
        if accesses_per_operation <= 0:
            raise ValueError("accesses_per_operation must be positive")
        self.name = name
        self.suite = suite
        self.stream = AccessStream.coerce(accesses)
        self.dataset_bytes = dataset_bytes
        self.compute_instructions_per_access = compute_instructions_per_access
        self.accesses_per_operation = accesses_per_operation
        self.operation_unit = operation_unit
        self.total_instructions = total_instructions

    @property
    def accesses(self) -> AccessStream:
        """Legacy name for the stream (iterates as MemoryAccess records)."""
        return self.stream

    def __len__(self) -> int:
        return len(self.stream)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.stream)

    def __repr__(self) -> str:
        return (f"WorkloadTrace(name={self.name!r}, suite={self.suite!r}, "
                f"accesses={len(self)}, dataset_bytes={self.dataset_bytes})")

    @property
    def memory_access_count(self) -> int:
        return len(self.stream)

    @property
    def operations(self) -> float:
        """Application-level operations represented by the trace."""
        return self.memory_access_count / self.accesses_per_operation

    @property
    def read_count(self) -> int:
        return self.stream.read_count

    @property
    def write_count(self) -> int:
        return self.stream.write_count

    @property
    def write_fraction(self) -> float:
        if not len(self):
            return 0.0
        return self.write_count / len(self)

    def touched_bytes(self) -> int:
        """Upper bound of the address range the trace touches."""
        return self.stream.touched_bytes()

    def operations_per_second(self, elapsed_ns: float) -> float:
        """Convert a run duration into the paper's throughput metric."""
        if elapsed_ns <= 0:
            return 0.0
        return self.operations / (elapsed_ns / 1e9)
