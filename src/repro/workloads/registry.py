"""Workload registry: Table III characteristics and trace construction.

Every workload of the evaluation is described by a
:class:`WorkloadCharacteristics` record copied from Table III (instruction
count, load/store instruction ratios, dataset size) plus the modelling
parameters this reproduction adds (access granularity, access pattern,
write fraction of dataset accesses, compute instructions per access, and the
conversion from memory accesses to application-level operations).

Because the real datasets (5–16 GB) and instruction counts (tens to hundreds
of billions) are far too large for a pure-Python functional simulation, an
:class:`ExperimentScale` shrinks *both* the instruction stream and all
capacities (dataset, NVDIMM, SSD, Optane) by the same factors, preserving
the footprint-to-cache ratios — and therefore the hit rates and relative
platform ordering — that the figures depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..config import SSDConfig, SystemConfig
from ..units import GB, KB, MB
from .generators import (
    AccessPatternGenerator,
    HotspotPattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    ZipfianPattern,
)
from .trace import AccessStream, MemoryAccess, WorkloadTrace


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """The Table III row for one workload (paper-scale numbers)."""

    name: str
    suite: str
    total_instructions: int
    load_ratio: float
    store_ratio: float
    dataset_bytes: int

    @property
    def memory_instruction_ratio(self) -> float:
        return self.load_ratio + self.store_ratio


@dataclass(frozen=True)
class WorkloadSpec:
    """Full description used to synthesise a trace."""

    characteristics: WorkloadCharacteristics
    pattern: str                       # sequential | random | zipfian | strided
    access_size_bytes: int
    write_fraction: float              # fraction of dataset accesses that store
    compute_instructions_per_access: float
    accesses_per_operation: float
    operation_unit: str                # "pages" | "ops"

    @property
    def name(self) -> str:
        return self.characteristics.name

    @property
    def suite(self) -> str:
        return self.characteristics.suite


@dataclass(frozen=True)
class ExperimentScale:
    """Scale factors applied to instructions and capacities.

    ``capacity_scale`` shrinks the dataset, the NVDIMM, the SSD and the
    Optane DIMM together; ``instruction_scale`` shrinks the instruction
    stream (and hence the trace length).  ``min_accesses``/``max_accesses``
    bound the trace so that very long (Update, seqSel) and very short
    workloads stay tractable without distorting their relative behaviour.
    """

    instruction_scale: float = 1e-3
    capacity_scale: float = 1.0 / 64.0
    min_accesses: int = 2_000
    max_accesses: int = 24_000
    seed: int = 42

    def scaled_instructions(self, total_instructions: int) -> int:
        return max(1, int(total_instructions * self.instruction_scale))

    def scaled_bytes(self, size_bytes: int) -> int:
        return max(KB(256), int(size_bytes * self.capacity_scale))


# ---------------------------------------------------------------------------
# Table III
# ---------------------------------------------------------------------------

_G = 1_000_000_000

_TABLE_III: List[WorkloadCharacteristics] = [
    WorkloadCharacteristics("seqRd", "microbench", 67 * _G, 0.28, 0.43, GB(16)),
    WorkloadCharacteristics("rndRd", "microbench", 69 * _G, 0.27, 0.37, GB(16)),
    WorkloadCharacteristics("seqWr", "microbench", 67 * _G, 0.28, 0.43, GB(16)),
    WorkloadCharacteristics("rndWr", "microbench", 69 * _G, 0.27, 0.37, GB(16)),
    WorkloadCharacteristics("seqSel", "sqlite", 213 * _G, 0.26, 0.20, GB(11)),
    WorkloadCharacteristics("rndSel", "sqlite", 213 * _G, 0.26, 0.20, GB(11)),
    WorkloadCharacteristics("seqIns", "sqlite", 40 * _G, 0.25, 0.21, GB(11)),
    WorkloadCharacteristics("rndIns", "sqlite", 44 * _G, 0.25, 0.21, GB(11)),
    WorkloadCharacteristics("update", "sqlite", 244 * _G, 0.26, 0.20, GB(11)),
    WorkloadCharacteristics("BFS", "rodinia", 192 * _G, 0.21, 0.04, GB(9)),
    WorkloadCharacteristics("KMN", "rodinia", 38 * _G, 0.27, 0.03, GB(5)),
    WorkloadCharacteristics("NN", "rodinia", 145 * _G, 0.16, 0.05, GB(7)),
]

_CHARACTERISTICS: Dict[str, WorkloadCharacteristics] = {
    row.name: row for row in _TABLE_III
}


def _spec(name: str, pattern: str, access_size: int, write_fraction: float,
          compute_per_access: float, accesses_per_op: float,
          unit: str) -> WorkloadSpec:
    return WorkloadSpec(characteristics=_CHARACTERISTICS[name],
                        pattern=pattern, access_size_bytes=access_size,
                        write_fraction=write_fraction,
                        compute_instructions_per_access=compute_per_access,
                        accesses_per_operation=accesses_per_op,
                        operation_unit=unit)


# The microbenchmark touches the memory-mapped file page by page; SQLite and
# Rodinia issue fine-grained (8-100 B) references (Section VI-A).
_PAGE = KB(4)
_FINE = 64

_SPECS: Dict[str, WorkloadSpec] = {
    # -- MMF microbenchmark ---------------------------------------------------
    # The "random" variants are random at the request level but concentrate
    # on a hot region (see HotspotPattern); purely uniform traffic over a
    # footprint twice the NVDIMM would contradict the ~94 % MoS hit rate the
    # paper measures.
    "seqRd": _spec("seqRd", "sequential", _PAGE, 0.05, 4000.0, 1.0, "pages"),
    "rndRd": _spec("rndRd", "hotspot", _PAGE, 0.05, 4000.0, 1.0, "pages"),
    "seqWr": _spec("seqWr", "sequential", _PAGE, 0.90, 4000.0, 1.0, "pages"),
    "rndWr": _spec("rndWr", "hotspot", _PAGE, 0.90, 4000.0, 1.0, "pages"),
    # -- SQLite (DBMS computation dominates each transaction; dataset
    #    references are fine-grained with strong internal locality) ----------
    "seqSel": _spec("seqSel", "sequential", _FINE, 0.10, 4000.0, 30.0, "ops"),
    "rndSel": _spec("rndSel", "hotspot", _FINE, 0.10, 4000.0, 30.0, "ops"),
    "seqIns": _spec("seqIns", "sequential", _FINE, 0.60, 3000.0, 30.0, "ops"),
    "rndIns": _spec("rndIns", "hotspot", _FINE, 0.60, 3000.0, 30.0, "ops"),
    "update": _spec("update", "zipfian", _FINE, 0.50, 4000.0, 30.0, "ops"),
    # -- Rodinia (compute-heavy kernels) ----------------------------------------
    "BFS": _spec("BFS", "zipfian", _FINE, 0.10, 2000.0, 64.0, "pages"),
    "KMN": _spec("KMN", "strided", _FINE, 0.10, 4000.0, 64.0, "pages"),
    "NN": _spec("NN", "strided", _FINE, 0.15, 3000.0, 64.0, "pages"),
}

MICROBENCH_WORKLOADS = ("seqRd", "rndRd", "seqWr", "rndWr")
SQLITE_WORKLOADS = ("seqSel", "rndSel", "seqIns", "rndIns", "update")
RODINIA_WORKLOADS = ("BFS", "KMN", "NN")


def all_workload_names() -> List[str]:
    """Every workload of Table III, in the paper's order."""
    return [row.name for row in _TABLE_III]


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload spec by its Table III name."""
    try:
        return _SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; expected one of {all_workload_names()}"
        ) from None


def table_iii() -> List[WorkloadCharacteristics]:
    """The raw Table III rows (paper-scale)."""
    return list(_TABLE_III)


# ---------------------------------------------------------------------------
# Trace construction
# ---------------------------------------------------------------------------


def _pattern_generator(spec: WorkloadSpec, dataset_bytes: int,
                       seed: int) -> AccessPatternGenerator:
    fine_grained = spec.access_size_bytes < _PAGE
    run_length = 16 if fine_grained else 1
    if spec.pattern == "sequential":
        return SequentialPattern(dataset_bytes, spec.access_size_bytes, seed)
    if spec.pattern == "random":
        return RandomPattern(dataset_bytes, spec.access_size_bytes, seed)
    if spec.pattern == "hotspot":
        return HotspotPattern(dataset_bytes, spec.access_size_bytes, seed,
                              hot_fraction=0.20, hot_probability=0.90,
                              run_length=run_length)
    if spec.pattern == "zipfian":
        return ZipfianPattern(dataset_bytes, spec.access_size_bytes, seed,
                              run_length=run_length)
    if spec.pattern == "strided":
        return StridedPattern(dataset_bytes, spec.access_size_bytes, seed,
                              stride_slots=17)
    raise ValueError(f"unknown access pattern {spec.pattern!r}")


@dataclass(frozen=True)
class TracePlan:
    """Everything needed to emit one workload's trace, without the trace.

    The in-memory path (:func:`build_trace`) and the disk path
    (:func:`repro.trace.writer.build_trace_file`) both start from the same
    plan, which is what keeps them bit-identical: same generator, same
    access count, same write RNG seeding.
    """

    spec: WorkloadSpec
    generator: AccessPatternGenerator
    access_count: int
    write_fraction: float
    dataset_bytes: int
    scaled_instructions: int
    seed: int

    def write_rng(self):
        """The write-mask generator ``build_trace`` seeds (seed + 1000)."""
        import numpy as np
        return np.random.default_rng(self.seed + 1000)

    @property
    def meta(self) -> dict:
        """The :class:`~repro.workloads.trace.WorkloadTrace` metadata."""
        return {
            "name": self.spec.name,
            "suite": self.spec.suite,
            "dataset_bytes": self.dataset_bytes,
            "compute_instructions_per_access":
                self.spec.compute_instructions_per_access,
            "accesses_per_operation": self.spec.accesses_per_operation,
            "operation_unit": self.spec.operation_unit,
            "total_instructions": self.scaled_instructions,
        }


def trace_plan(name: str, scale: Optional[ExperimentScale] = None,
               dataset_bytes_override: Optional[int] = None) -> TracePlan:
    """Resolve workload *name* at *scale* into a ready-to-emit plan."""
    scale = scale if scale is not None else ExperimentScale()
    spec = get_workload(name)
    characteristics = spec.characteristics

    dataset_bytes = (dataset_bytes_override
                     if dataset_bytes_override is not None
                     else scale.scaled_bytes(characteristics.dataset_bytes))

    scaled_instructions = scale.scaled_instructions(
        characteristics.total_instructions)
    raw_accesses = int(scaled_instructions
                       / (1.0 + spec.compute_instructions_per_access))
    access_count = min(scale.max_accesses, max(scale.min_accesses, raw_accesses))
    generator = _pattern_generator(spec, dataset_bytes, scale.seed)
    return TracePlan(spec=spec, generator=generator,
                     access_count=access_count,
                     write_fraction=spec.write_fraction,
                     dataset_bytes=dataset_bytes,
                     scaled_instructions=scaled_instructions,
                     seed=scale.seed)


def build_trace(name: str, scale: Optional[ExperimentScale] = None,
                dataset_bytes_override: Optional[int] = None) -> WorkloadTrace:
    """Synthesise the trace for workload *name* under the given scale.

    ``dataset_bytes_override`` (already scaled) supports the Figure 20b
    stress test, which grows the footprint to 44 GB at paper scale.

    A ``trace:<path>`` name replays a ``repro.trace/1`` file instead of a
    Table III generator: the returned trace is file-backed (its stream
    reads chunk-at-a-time off disk, see :mod:`repro.trace`), *scale* is
    ignored — the file already fixes the accesses — and the override still
    applies on top of the file's recorded dataset size.  Every execution
    tier reaches traces through this function, so ``trace:`` workloads
    work unchanged on the serial, pool, sharded and serve paths.
    """
    if name.startswith("trace:"):
        # Lazy: repro.trace imports from this package.
        from ..trace.format import trace_source_path
        from ..trace.reader import load_trace_file
        return load_trace_file(trace_source_path(name),
                               dataset_bytes_override=dataset_bytes_override)
    if name.startswith("scenario:"):
        # Lazy: repro.scenario imports from this package.  A scenario
        # source carries its own per-tenant dataset overrides, so the
        # spec-level override has no meaning here.
        from ..scenario.mix import build_mixed_trace
        from ..scenario.spec import parse_scenario_source
        return build_mixed_trace(parse_scenario_source(name),
                                 scale if scale is not None
                                 else ExperimentScale())
    plan = trace_plan(name, scale, dataset_bytes_override)
    # The stream is built columnar end-to-end: generator addresses and the
    # write mask stay numpy arrays, no per-access record objects exist.
    stream = plan.generator.stream(plan.access_count, plan.write_fraction,
                                   plan.write_rng())
    return WorkloadTrace(accesses=stream, **plan.meta)


@dataclass(frozen=True)
class TraceSpec:
    """A picklable, lazily buildable description of one workload trace.

    Worker processes of the parallel experiment runner receive these instead
    of live :class:`~repro.workloads.trace.WorkloadTrace` objects: shipping
    the spec costs a few hundred bytes, and :meth:`build` reconstructs the
    exact trace deterministically (the generators are fully seeded by
    ``scale.seed``), so a trace built in a worker is bit-identical to the one
    the serial runner builds in-process.
    """

    workload: str
    scale: ExperimentScale
    dataset_bytes_override: Optional[int] = None

    def build(self) -> WorkloadTrace:
        """Synthesise the trace this spec describes."""
        return build_trace(self.workload, self.scale,
                           dataset_bytes_override=self.dataset_bytes_override)

    @property
    def cache_key(self) -> tuple:
        """Key under which per-process trace caches memoise the build."""
        return (self.workload, self.dataset_bytes_override)


# ---------------------------------------------------------------------------
# System scaling
# ---------------------------------------------------------------------------


def scale_system_config(config: SystemConfig,
                        scale: ExperimentScale) -> SystemConfig:
    """Shrink every capacity in *config* by ``scale.capacity_scale``.

    The NVDIMM (and its pinned region), the ULL-Flash, the Optane DIMM and
    the HAMS PRP pool all shrink together so that the footprint ratios of
    the paper's Table II setup are preserved at laptop scale.
    """
    factor = scale.capacity_scale
    nvdimm = replace(
        config.nvdimm,
        capacity_bytes=max(MB(16), int(config.nvdimm.capacity_bytes * factor)),
        pinned_region_bytes=max(MB(1),
                                int(config.nvdimm.pinned_region_bytes * factor)))
    ssd_capacity = max(MB(64), int(GB(800) * factor))
    ssd = SSDConfig.ull_flash(ssd_capacity)
    optane = replace(
        config.optane,
        capacity_bytes=max(MB(32), int(config.optane.capacity_bytes * factor)))
    hams = replace(
        config.hams,
        prp_pool_bytes=max(config.hams.mos_page_bytes * 8,
                           int(config.hams.prp_pool_bytes * factor)))
    return replace(config, nvdimm=nvdimm, ssd=ssd, optane=optane, hams=hams)
