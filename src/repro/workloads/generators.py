"""Access-pattern generators.

Each generator produces a deterministic (seeded) stream of byte addresses
over a dataset of a given size.  Four patterns cover the suites:

* :class:`SequentialPattern` — a linear scan, the microbenchmark's
  seqRd/seqWr and SQLite's seqSel/seqIns behaviour,
* :class:`RandomPattern` — uniformly random positions, the rndRd/rndWr and
  rndSel/rndIns behaviour with deliberately poor locality,
* :class:`ZipfianPattern` — skewed accesses in which a small hot set absorbs
  most references; used for SQLite's update and the Rodinia kernels whose
  working set is partly resident,
* :class:`StridedPattern` — a fixed-stride walk used by the Rodinia kernels
  that stream over large arrays (NN, KMN distance phases).
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Optional

import numpy as np

from .trace import AccessStream

#: Default accesses per block for the chunk-wise emission path; matches
#: the trace store's chunk size so disk builds flush whole chunks.
DEFAULT_STREAM_CHUNK = 1 << 20


class AccessPatternGenerator(abc.ABC):
    """Produces a stream of byte addresses within ``[0, dataset_bytes)``."""

    def __init__(self, dataset_bytes: int, access_size: int, seed: int = 7) -> None:
        if dataset_bytes <= 0:
            raise ValueError("dataset size must be positive")
        if access_size <= 0 or access_size > dataset_bytes:
            raise ValueError("access size must be positive and fit the dataset")
        self.dataset_bytes = dataset_bytes
        self.access_size = access_size
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    @abc.abstractmethod
    def addresses(self, count: int) -> np.ndarray:
        """Return *count* starting addresses (aligned to the access size)."""

    def stream(self, count: int, write_fraction: float = 0.0,
               write_rng: Optional[np.random.Generator] = None
               ) -> AccessStream:
        """Build a columnar :class:`~repro.workloads.trace.AccessStream`.

        The addresses come from :meth:`addresses`; ``write_fraction`` of the
        accesses (drawn from *write_rng*, defaulting to a generator seeded
        with ``seed + 1000``) are stores.  This is the native construction
        path — no per-access record objects are ever created.
        """
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        addresses = self.addresses(count)
        if write_rng is None:
            write_rng = np.random.default_rng(self.seed + 1000)
        writes = write_rng.random(count) < write_fraction
        return AccessStream.from_arrays(addresses, self.access_size, writes)

    def iter_addresses(self, count: int,
                       chunk_accesses: int) -> Iterator[np.ndarray]:
        """Yield :meth:`addresses`\\ (count) in order, in bounded blocks.

        Contract: concatenating the blocks is bit-equal to a fresh
        generator's one-shot ``addresses(count)`` for *every* block size —
        subclasses consume ``self.rng`` in exactly the one-shot draw
        order, so disk builds that stream through here produce the same
        trace the in-memory path does.  The base implementation is the
        conservative fallback (one block) for exotic subclasses; every
        registry pattern overrides it with a genuinely streaming walk.
        """
        yield self.addresses(count)

    def stream_chunks(self, count: int, write_fraction: float = 0.0,
                      write_rng: Optional[np.random.Generator] = None,
                      chunk_accesses: int = DEFAULT_STREAM_CHUNK
                      ) -> Iterator[AccessStream]:
        """Yield :meth:`stream` as bounded chunks, bit-identically.

        Concatenating the yielded chunks equals ``stream(count,
        write_fraction)`` from a fresh generator: both the address draws
        (:meth:`iter_addresses`) and the write mask consume their RNGs
        value-by-value, so splitting the draws never changes them.  This
        is what lets :func:`repro.trace.writer.build_trace_file`
        materialise any workload to disk without holding the trace.
        """
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if chunk_accesses <= 0:
            raise ValueError("chunk_accesses must be positive")
        if write_rng is None:
            write_rng = np.random.default_rng(self.seed + 1000)
        for block in self.iter_addresses(count, chunk_accesses):
            writes = write_rng.random(len(block)) < write_fraction
            yield AccessStream.from_arrays(block, self.access_size, writes)

    @property
    def slots(self) -> int:
        """Number of non-overlapping access slots in the dataset."""
        return max(1, self.dataset_bytes // self.access_size)

    def _slots_to_addresses(self, slots: np.ndarray) -> np.ndarray:
        return slots.astype(np.int64) * self.access_size


class SequentialPattern(AccessPatternGenerator):
    """A wrap-around linear scan of the dataset."""

    def __init__(self, dataset_bytes: int, access_size: int, seed: int = 7,
                 start_slot: int = 0) -> None:
        super().__init__(dataset_bytes, access_size, seed)
        self.start_slot = start_slot % self.slots

    def addresses(self, count: int) -> np.ndarray:
        slots = (np.arange(count, dtype=np.int64) + self.start_slot) % self.slots
        return self._slots_to_addresses(slots)

    def iter_addresses(self, count: int,
                       chunk_accesses: int) -> Iterator[np.ndarray]:
        for start in range(0, count, chunk_accesses):
            stop = min(start + chunk_accesses, count)
            slots = (np.arange(start, stop, dtype=np.int64)
                     + self.start_slot) % self.slots
            yield self._slots_to_addresses(slots)


class RandomPattern(AccessPatternGenerator):
    """Uniformly random accesses across the whole dataset."""

    def addresses(self, count: int) -> np.ndarray:
        slots = self.rng.integers(0, self.slots, size=count, dtype=np.int64)
        return self._slots_to_addresses(slots)

    def iter_addresses(self, count: int,
                       chunk_accesses: int) -> Iterator[np.ndarray]:
        # PCG64 fills element-wise, so chunked integer draws concatenate
        # bit-equal to the one-shot draw.
        for start in range(0, count, chunk_accesses):
            size = min(chunk_accesses, count - start)
            slots = self.rng.integers(0, self.slots, size=size,
                                      dtype=np.int64)
            yield self._slots_to_addresses(slots)


class ZipfianPattern(AccessPatternGenerator):
    """Zipf-distributed accesses: a hot head plus a long cold tail.

    ``theta`` controls the skew (1.0 is the classic YCSB-style hotspot); the
    hottest slots are shuffled across the dataset so the hot set is not
    physically contiguous.
    """

    def __init__(self, dataset_bytes: int, access_size: int, seed: int = 7,
                 theta: float = 1.1, run_length: int = 1) -> None:
        super().__init__(dataset_bytes, access_size, seed)
        if theta <= 1.0:
            raise ValueError("numpy's zipf sampler requires theta > 1")
        if run_length <= 0:
            raise ValueError("run_length must be positive")
        self.theta = theta
        self.run_length = run_length
        # A fixed permutation decouples "rank" from physical position.
        self._permutation: Optional[np.ndarray] = None

    def _rank_to_slot(self, ranks: np.ndarray) -> np.ndarray:
        if self._permutation is None:
            permutation_rng = np.random.default_rng(self.seed + 1)
            self._permutation = permutation_rng.permutation(self.slots)
        return self._permutation[ranks % self.slots]

    def addresses(self, count: int) -> np.ndarray:
        starts = -(-count // self.run_length)  # ceil division
        ranks = self.rng.zipf(self.theta, size=starts) - 1
        slots = self._rank_to_slot(ranks.astype(np.int64))
        slots = expand_runs(slots, self.run_length, self.slots)[:count]
        return self._slots_to_addresses(slots)

    def iter_addresses(self, count: int,
                       chunk_accesses: int) -> Iterator[np.ndarray]:
        # The zipf sampler rejects per value, so chunked draws consume the
        # bitstream exactly like the one-shot draw; run expansion and the
        # final truncation are per-start, so they split cleanly too.
        starts_total = -(-count // self.run_length)
        starts_per_block = max(1, chunk_accesses // self.run_length)
        drawn = 0
        emitted = 0
        while drawn < starts_total:
            block = min(starts_per_block, starts_total - drawn)
            ranks = self.rng.zipf(self.theta, size=block) - 1
            slots = self._rank_to_slot(ranks.astype(np.int64))
            expanded = expand_runs(slots, self.run_length, self.slots)
            take = min(len(expanded), count - emitted)
            yield self._slots_to_addresses(expanded[:take])
            drawn += block
            emitted += take


class HotspotPattern(AccessPatternGenerator):
    """Hot-set accesses: most references land in a small hot region.

    ``hot_fraction`` of the dataset receives ``hot_probability`` of the
    accesses; the remainder is uniform over the whole dataset.  This is the
    locality profile of the "random" database and microbenchmark workloads:
    random at the request level, but concentrated on indexes, internal
    B-tree nodes and recently used heap pages, which is what lets an 8 GB
    NVDIMM reach the ~94 % MoS hit rate the paper reports.
    """

    def __init__(self, dataset_bytes: int, access_size: int, seed: int = 7,
                 hot_fraction: float = 0.25, hot_probability: float = 0.85,
                 run_length: int = 1) -> None:
        super().__init__(dataset_bytes, access_size, seed)
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if not 0.0 <= hot_probability <= 1.0:
            raise ValueError("hot_probability must be in [0, 1]")
        if run_length <= 0:
            raise ValueError("run_length must be positive")
        self.hot_fraction = hot_fraction
        self.hot_probability = hot_probability
        self.run_length = run_length

    def addresses(self, count: int) -> np.ndarray:
        hot_slots = max(1, int(self.slots * self.hot_fraction))
        starts = -(-count // self.run_length)  # ceil division
        is_hot = self.rng.random(starts) < self.hot_probability
        hot = self.rng.integers(0, hot_slots, size=starts, dtype=np.int64)
        cold = self.rng.integers(0, self.slots, size=starts, dtype=np.int64)
        chosen = np.where(is_hot, hot, cold)
        slots = expand_runs(chosen, self.run_length, self.slots)[:count]
        return self._slots_to_addresses(slots)

    def iter_addresses(self, count: int,
                       chunk_accesses: int) -> Iterator[np.ndarray]:
        # The one-shot draw order is grouped — ALL hot/cold coin flips,
        # then ALL hot positions, then ALL cold positions — so matching it
        # bit-for-bit requires materialising the start-space columns up
        # front: O(count / run_length) int64s, not the expanded stream.
        # Only the run expansion streams.
        hot_slots = max(1, int(self.slots * self.hot_fraction))
        starts = -(-count // self.run_length)  # ceil division
        is_hot = self.rng.random(starts) < self.hot_probability
        hot = self.rng.integers(0, hot_slots, size=starts, dtype=np.int64)
        cold = self.rng.integers(0, self.slots, size=starts, dtype=np.int64)
        chosen = np.where(is_hot, hot, cold)
        starts_per_block = max(1, chunk_accesses // self.run_length)
        emitted = 0
        for index in range(0, starts, starts_per_block):
            expanded = expand_runs(chosen[index:index + starts_per_block],
                                   self.run_length, self.slots)
            take = min(len(expanded), count - emitted)
            yield self._slots_to_addresses(expanded[:take])
            emitted += take


class StridedPattern(AccessPatternGenerator):
    """A constant-stride walk (in units of access slots), wrapping around."""

    def __init__(self, dataset_bytes: int, access_size: int, seed: int = 7,
                 stride_slots: int = 16) -> None:
        super().__init__(dataset_bytes, access_size, seed)
        if stride_slots <= 0:
            raise ValueError("stride must be positive")
        self.stride_slots = stride_slots

    def addresses(self, count: int) -> np.ndarray:
        slots = (np.arange(count, dtype=np.int64) * self.stride_slots) % self.slots
        return self._slots_to_addresses(slots)

    def iter_addresses(self, count: int,
                       chunk_accesses: int) -> Iterator[np.ndarray]:
        for start in range(0, count, chunk_accesses):
            stop = min(start + chunk_accesses, count)
            slots = (np.arange(start, stop, dtype=np.int64)
                     * self.stride_slots) % self.slots
            yield self._slots_to_addresses(slots)


def expand_runs(start_slots: np.ndarray, run_length: int,
                total_slots: int) -> np.ndarray:
    """Expand each start slot into a short sequential run of slots.

    A run models the spatial locality of scanning a database page or an
    adjacency list: after jumping to a location, the next ``run_length - 1``
    references touch the following slots.  Runs wrap around the dataset.
    """
    if run_length <= 1:
        return start_slots
    offsets = np.arange(run_length, dtype=np.int64)
    expanded = (start_slots[:, None] + offsets[None, :]) % total_slots
    return expanded.reshape(-1)


def interleave(generators: List[AccessPatternGenerator], count: int,
               weights: Optional[List[float]] = None,
               seed: int = 11) -> np.ndarray:
    """Mix several patterns into one stream according to *weights*.

    Used to build composite behaviours such as "mostly zipfian point lookups
    with an occasional sequential range scan" for the SQLite workloads.
    """
    if not generators:
        raise ValueError("need at least one generator")
    if weights is None:
        weights = [1.0 / len(generators)] * len(generators)
    if len(weights) != len(generators):
        raise ValueError("weights must match generators")
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    normalised = [weight / total for weight in weights]
    rng = np.random.default_rng(seed)
    choices = rng.choice(len(generators), size=count, p=normalised)
    streams = [generator.addresses(count) for generator in generators]
    out = np.empty(count, dtype=np.int64)
    for index, stream in enumerate(streams):
        mask = choices == index
        out[mask] = stream[mask]
    return out
