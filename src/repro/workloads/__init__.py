"""Workload models: the twelve data-intensive benchmarks of Table III.

The paper evaluates three suites:

* **MMF microbenchmark** — seqRd / rndRd / seqWr / rndWr: page-granular
  sequential or random accesses over a 16 GB memory-mapped file,
* **SQLite benchmark** — seqSel / rndSel / seqIns / rndIns / update:
  fine-grained (8–100 B) accesses with DBMS-style locality over ~11 GB,
* **Rodinia** — BFS / KMN / NN: compute-heavy kernels with 5–9 GB footprints.

Because the real suites need hours of full-system simulation, this package
generates *synthetic traces* that preserve the characteristics Table III
reports — instruction counts, load/store ratios, dataset sizes — plus the
qualitative access patterns the text describes (coarse page-granular for the
microbenchmark, fine-grained with poor locality for SQLite, compute-bound
for Rodinia).  Instruction counts and footprints are scaled down together so
the footprint-to-NVDIMM ratio (and therefore every hit rate) is preserved at
laptop scale.
"""

from .trace import AccessStream, MemoryAccess, WorkloadTrace
from .generators import (
    AccessPatternGenerator,
    HotspotPattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    ZipfianPattern,
)
from .registry import (
    ExperimentScale,
    WorkloadCharacteristics,
    WorkloadSpec,
    all_workload_names,
    build_trace,
    get_workload,
    scale_system_config,
    MICROBENCH_WORKLOADS,
    SQLITE_WORKLOADS,
    RODINIA_WORKLOADS,
)

__all__ = [
    "AccessStream",
    "MemoryAccess",
    "WorkloadTrace",
    "AccessPatternGenerator",
    "SequentialPattern",
    "RandomPattern",
    "HotspotPattern",
    "ZipfianPattern",
    "StridedPattern",
    "ExperimentScale",
    "WorkloadCharacteristics",
    "WorkloadSpec",
    "all_workload_names",
    "get_workload",
    "build_trace",
    "scale_system_config",
    "MICROBENCH_WORKLOADS",
    "SQLITE_WORKLOADS",
    "RODINIA_WORKLOADS",
]
