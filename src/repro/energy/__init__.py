"""Energy models and accounting (Figure 19)."""

from .models import ComponentPowerModel, EnergyModel
from .accounting import EnergyAccount, EnergyBreakdown

__all__ = [
    "ComponentPowerModel",
    "EnergyModel",
    "EnergyAccount",
    "EnergyBreakdown",
]
