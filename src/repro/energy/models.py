"""Component power/energy models.

The paper derives its energy numbers from NAND datasheets, the MICRON DDR4
power calculator and McPAT (Section VI-A).  We reproduce the same structure:
each component has an active power, an idle power, and (for the flash and
the interconnects) a per-operation or per-byte energy.  Figure 19 then
reports, per platform and workload, the breakdown across CPU, system memory
(NVDIMM), SSD-internal DRAM, and Z-NAND.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import EnergyConfig
from ..units import to_GB


@dataclass(frozen=True)
class ComponentPowerModel:
    """Active/idle power pair for one component."""

    name: str
    active_w: float
    idle_w: float

    def energy_nj(self, active_ns: float, idle_ns: float) -> float:
        """Energy in nanojoules for the given active and idle durations."""
        if active_ns < 0 or idle_ns < 0:
            raise ValueError("durations cannot be negative")
        return self.active_w * active_ns + self.idle_w * idle_ns


class EnergyModel:
    """Derives per-component energy from activity counters and durations."""

    def __init__(self, config: EnergyConfig, nvdimm_capacity_bytes: int,
                 ssd_internal_dram_present: bool = True) -> None:
        self.config = config
        capacity_gb = max(1.0, to_GB(nvdimm_capacity_bytes))
        self.cpu = ComponentPowerModel("cpu", config.cpu_active_w,
                                       config.cpu_idle_w)
        self.nvdimm = ComponentPowerModel(
            "nvdimm",
            config.dram_active_w_per_gb * capacity_gb,
            config.dram_idle_w_per_gb * capacity_gb)
        self.internal_dram = ComponentPowerModel(
            "internal_dram",
            config.ssd_internal_dram_active_w if ssd_internal_dram_present else 0.0,
            config.ssd_internal_dram_idle_w if ssd_internal_dram_present else 0.0)
        self.ssd_internal_dram_present = ssd_internal_dram_present

    # -- component energies -------------------------------------------------------

    def cpu_energy_nj(self, busy_ns: float, idle_ns: float) -> float:
        """CPU package energy: busy while computing, idle while stalled on I/O."""
        return self.cpu.energy_nj(busy_ns, idle_ns)

    def nvdimm_energy_nj(self, active_ns: float, idle_ns: float,
                         bytes_moved: int) -> float:
        """NVDIMM energy: background power plus per-byte access energy."""
        background = self.nvdimm.energy_nj(active_ns, idle_ns)
        access = bytes_moved * self.config.ddr_pj_per_byte / 1000.0
        return background + access

    def internal_dram_energy_nj(self, duration_ns: float,
                                bytes_moved: int) -> float:
        """SSD-internal DRAM energy; zero when the buffer has been removed.

        The paper notes this buffer draws ~17 % more power than a 32-chip
        flash complex, which is why the advanced HAMS deletes it.
        """
        if not self.ssd_internal_dram_present:
            return 0.0
        background = self.internal_dram.energy_nj(duration_ns * 0.3,
                                                  duration_ns * 0.7)
        access = bytes_moved * self.config.ddr_pj_per_byte / 1000.0
        return background + access

    def znand_energy_nj(self, page_reads: int, page_programs: int,
                        duration_ns: float) -> float:
        """Z-NAND energy: per-operation array energy plus idle background."""
        if page_reads < 0 or page_programs < 0:
            raise ValueError("operation counts cannot be negative")
        operations = (page_reads * self.config.znand_read_nj_per_page
                      + page_programs * self.config.znand_program_nj_per_page)
        background = self.config.znand_idle_w * duration_ns
        return operations + background

    def interconnect_energy_nj(self, pcie_bytes: int, ddr_bytes: int) -> float:
        """Per-byte link energy (PCIe encapsulation costs more than DDR)."""
        return (pcie_bytes * self.config.pcie_pj_per_byte
                + ddr_bytes * self.config.ddr_pj_per_byte) / 1000.0

    def component_table(self) -> Dict[str, ComponentPowerModel]:
        return {
            "cpu": self.cpu,
            "nvdimm": self.nvdimm,
            "internal_dram": self.internal_dram,
        }
