"""Energy accounting: accumulates per-component energy for one workload run.

The four categories match Figure 19: CPU, system memory (NVDIMM/DRAM),
SSD-internal DRAM, and Z-NAND.  Platforms feed activity counters into an
:class:`EnergyAccount` which converts them through the
:class:`~repro.energy.models.EnergyModel` and produces a breakdown that can
be normalised against the ``mmap`` baseline exactly as the figure does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .models import EnergyModel


@dataclass
class EnergyBreakdown:
    """Energy per component for one run, in nanojoules."""

    cpu_nj: float = 0.0
    nvdimm_nj: float = 0.0
    internal_dram_nj: float = 0.0
    znand_nj: float = 0.0

    @property
    def total_nj(self) -> float:
        return self.cpu_nj + self.nvdimm_nj + self.internal_dram_nj + self.znand_nj

    def normalised_to(self, baseline: "EnergyBreakdown") -> Dict[str, float]:
        """Each component divided by the *baseline total* (Figure 19 style)."""
        denominator = baseline.total_nj
        if denominator <= 0:
            raise ValueError("baseline energy must be positive")
        return {
            "cpu": self.cpu_nj / denominator,
            "nvdimm": self.nvdimm_nj / denominator,
            "internal_dram": self.internal_dram_nj / denominator,
            "znand": self.znand_nj / denominator,
            "total": self.total_nj / denominator,
        }

    def as_dict(self) -> Dict[str, float]:
        return {
            "cpu_nj": self.cpu_nj,
            "nvdimm_nj": self.nvdimm_nj,
            "internal_dram_nj": self.internal_dram_nj,
            "znand_nj": self.znand_nj,
            "total_nj": self.total_nj,
        }


@dataclass
class EnergyAccount:
    """Activity counters a platform accumulates during a run."""

    cpu_busy_ns: float = 0.0
    cpu_idle_ns: float = 0.0
    nvdimm_active_ns: float = 0.0
    nvdimm_idle_ns: float = 0.0
    nvdimm_bytes: int = 0
    internal_dram_bytes: int = 0
    flash_page_reads: int = 0
    flash_page_programs: int = 0
    pcie_bytes: int = 0
    ddr_link_bytes: int = 0
    duration_ns: float = 0.0

    def charge_cpu(self, busy_ns: float, idle_ns: float = 0.0) -> None:
        self.cpu_busy_ns += busy_ns
        self.cpu_idle_ns += idle_ns

    def charge_nvdimm(self, active_ns: float, bytes_moved: int) -> None:
        self.nvdimm_active_ns += active_ns
        self.nvdimm_bytes += bytes_moved

    def charge_internal_dram(self, bytes_moved: int) -> None:
        self.internal_dram_bytes += bytes_moved

    def charge_flash(self, page_reads: int, page_programs: int) -> None:
        self.flash_page_reads += page_reads
        self.flash_page_programs += page_programs

    def charge_link(self, pcie_bytes: int = 0, ddr_bytes: int = 0) -> None:
        self.pcie_bytes += pcie_bytes
        self.ddr_link_bytes += ddr_bytes

    def finalise(self, duration_ns: float) -> None:
        """Fix the run duration; idle times are derived from it."""
        if duration_ns < 0:
            raise ValueError("duration cannot be negative")
        self.duration_ns = duration_ns
        self.cpu_idle_ns = max(0.0, duration_ns - self.cpu_busy_ns)
        self.nvdimm_idle_ns = max(0.0, duration_ns - self.nvdimm_active_ns)

    def breakdown(self, model: EnergyModel) -> EnergyBreakdown:
        """Convert the accumulated activity into per-component energy."""
        cpu = model.cpu_energy_nj(self.cpu_busy_ns, self.cpu_idle_ns)
        nvdimm = model.nvdimm_energy_nj(self.nvdimm_active_ns,
                                        self.nvdimm_idle_ns, self.nvdimm_bytes)
        internal = model.internal_dram_energy_nj(self.duration_ns,
                                                 self.internal_dram_bytes)
        znand = model.znand_energy_nj(self.flash_page_reads,
                                      self.flash_page_programs,
                                      self.duration_ns)
        link = model.interconnect_energy_nj(self.pcie_bytes, self.ddr_link_bytes)
        # Link energy is attributed to the memory system side of the path.
        return EnergyBreakdown(cpu_nj=cpu, nvdimm_nj=nvdimm + link,
                               internal_dram_nj=internal, znand_nj=znand)
