"""Physical Region Page (PRP) pool.

Every NVMe command references its host-memory data buffer through one or
more PRP pointers.  HAMS allocates a dedicated PRP pool inside the pinned
(MMU-invisible) region of the NVDIMM and, to avoid eviction hazards, *clones*
the NVDIMM cache page being evicted into a PRP pool entry before handing the
command to the device — the DMA then reads the stable clone while the cache
entry stays usable (Section V-B, Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


class PRPPoolExhausted(RuntimeError):
    """Raised when no PRP pool entry is free for a new clone."""


@dataclass
class PRPEntry:
    """One page-sized slot of the PRP pool."""

    index: int
    base_address: int
    size_bytes: int
    in_use: bool = False
    source_page: Optional[int] = None
    command_id: Optional[int] = None

    @property
    def address(self) -> int:
        return self.base_address


class PRPPool:
    """Fixed pool of page-sized buffers carved out of the pinned region."""

    def __init__(self, pool_bytes: int, page_bytes: int,
                 base_address: int = 0) -> None:
        if page_bytes <= 0:
            raise ValueError("page size must be positive")
        if pool_bytes < page_bytes:
            raise ValueError("PRP pool must hold at least one page")
        self.page_bytes = page_bytes
        self.capacity = pool_bytes // page_bytes
        self._entries: List[PRPEntry] = [
            PRPEntry(index=index, base_address=base_address + index * page_bytes,
                     size_bytes=page_bytes)
            for index in range(self.capacity)
        ]
        self._free: List[int] = list(range(self.capacity))
        self._by_command: Dict[int, int] = {}
        self.clones_performed = 0
        self.peak_in_use = 0

    @property
    def in_use(self) -> int:
        return self.capacity - len(self._free)

    @property
    def available(self) -> int:
        return len(self._free)

    def clone(self, source_page: int, command_id: int) -> PRPEntry:
        """Reserve an entry holding a clone of *source_page* for *command_id*.

        Raises :class:`PRPPoolExhausted` when the pool is full — callers
        (the HAMS cache logic) must then stall the miss in the wait queue.
        """
        if not self._free:
            raise PRPPoolExhausted(
                f"no free PRP entries (capacity={self.capacity})")
        index = self._free.pop()
        entry = self._entries[index]
        entry.in_use = True
        entry.source_page = source_page
        entry.command_id = command_id
        self._by_command[command_id] = index
        self.clones_performed += 1
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        return entry

    def release(self, command_id: int) -> None:
        """Free the entry owned by *command_id* (on I/O completion)."""
        index = self._by_command.pop(command_id, None)
        if index is None:
            return
        entry = self._entries[index]
        entry.in_use = False
        entry.source_page = None
        entry.command_id = None
        self._free.append(index)

    def entry_for(self, command_id: int) -> Optional[PRPEntry]:
        index = self._by_command.get(command_id)
        return self._entries[index] if index is not None else None

    def outstanding_entries(self) -> List[PRPEntry]:
        """Entries still owned by in-flight commands (crash recovery scan)."""
        return [entry for entry in self._entries if entry.in_use]

    def reset(self) -> None:
        for entry in self._entries:
            entry.in_use = False
            entry.source_page = None
            entry.command_id = None
        self._free = list(range(self.capacity))
        self._by_command.clear()
