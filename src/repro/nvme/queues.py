"""NVMe submission/completion queue rings.

An NVMe queue pair is two FIFO rings with head/tail pointers (Figure 4b):
the host appends commands at the submission-queue tail and rings a doorbell;
the controller consumes from the head, services the command, posts a
completion at the completion-queue tail and raises an interrupt; the host
then advances the completion-queue head and rings the CQ doorbell.

HAMS keeps these rings in the *pinned* (MMU-invisible) region of the NVDIMM
so they survive power failures; recovery compares the SQ and CQ pointers and
re-issues commands whose journal tags are still set (Sections IV-B and V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .commands import NVMeCommand, NVMeCompletion


class QueueFullError(RuntimeError):
    """Raised when appending to a ring whose every slot is occupied."""


class _Ring:
    """A bounded FIFO ring with head/tail pointers."""

    def __init__(self, depth: int) -> None:
        if depth <= 0:
            raise ValueError("queue depth must be positive")
        self.depth = depth
        self.slots: List[Optional[object]] = [None] * depth
        self.head = 0
        self.tail = 0
        self._used = 0

    def __len__(self) -> int:
        return (self.tail - self.head) % self.depth if self._used else 0

    def slots_used(self) -> int:
        return self._used

    @property
    def is_empty(self) -> bool:
        return self.slots_used() == 0

    @property
    def is_full(self) -> bool:
        return self.slots_used() >= self.depth - 1

    def push(self, item: object) -> int:
        if self.is_full:
            raise QueueFullError("ring is full")
        slot = self.tail
        self.slots[slot] = item
        self._used += 1
        self.tail = (self.tail + 1) % self.depth
        return slot

    def pop(self) -> Optional[object]:
        if self.slots[self.head] is None:
            return None
        item = self.slots[self.head]
        self.slots[self.head] = None
        self._used -= 1
        self.head = (self.head + 1) % self.depth
        return item

    def peek_all(self) -> List[object]:
        """Entries between head and tail, oldest first, without consuming."""
        items: List[object] = []
        index = self.head
        while index != self.tail:
            item = self.slots[index]
            if item is not None:
                items.append(item)
            index = (index + 1) % self.depth
        return items


class SubmissionQueue:
    """NVMe submission queue (host producer, controller consumer)."""

    def __init__(self, depth: int, queue_id: int = 0) -> None:
        self.queue_id = queue_id
        self._ring = _Ring(depth)
        self.doorbell_rings = 0

    @property
    def depth(self) -> int:
        return self._ring.depth

    @property
    def head(self) -> int:
        return self._ring.head

    @property
    def tail(self) -> int:
        return self._ring.tail

    @property
    def outstanding(self) -> int:
        return self._ring.slots_used()

    @property
    def is_full(self) -> bool:
        return self._ring.is_full

    def submit(self, command: NVMeCommand) -> int:
        """Append *command* at the tail and return its slot index."""
        return self._ring.push(command)

    def ring_doorbell(self) -> None:
        """Host notifies the controller that the tail moved."""
        self.doorbell_rings += 1

    def fetch(self) -> Optional[NVMeCommand]:
        """Controller consumes the command at the head."""
        command = self._ring.pop()
        return command  # type: ignore[return-value]

    def pending_commands(self) -> List[NVMeCommand]:
        """Commands currently sitting in the ring (for crash recovery scans)."""
        return list(self._ring.peek_all())  # type: ignore[arg-type]


class CompletionQueue:
    """NVMe completion queue (controller producer, host consumer)."""

    def __init__(self, depth: int, queue_id: int = 0) -> None:
        self.queue_id = queue_id
        self._ring = _Ring(depth)
        self.interrupts_raised = 0

    @property
    def depth(self) -> int:
        return self._ring.depth

    @property
    def head(self) -> int:
        return self._ring.head

    @property
    def tail(self) -> int:
        return self._ring.tail

    @property
    def outstanding(self) -> int:
        return self._ring.slots_used()

    def post(self, completion: NVMeCompletion) -> int:
        """Controller appends a completion and raises an interrupt (MSI)."""
        slot = self._ring.push(completion)
        self.interrupts_raised += 1
        return slot

    def reap(self) -> Optional[NVMeCompletion]:
        """Host consumes the completion at the head."""
        return self._ring.pop()  # type: ignore[return-value]

    def pending_completions(self) -> List[NVMeCompletion]:
        return list(self._ring.peek_all())  # type: ignore[arg-type]


@dataclass
class QueuePair:
    """A paired SQ/CQ as used per core (or by the HAMS NVMe engine)."""

    sq: SubmissionQueue
    cq: CompletionQueue

    @staticmethod
    def create(depth: int, queue_id: int = 0) -> "QueuePair":
        return QueuePair(sq=SubmissionQueue(depth, queue_id),
                         cq=CompletionQueue(depth, queue_id))

    @property
    def pointers_consistent(self) -> bool:
        """True when SQ and CQ agree that no command is in flight.

        The HAMS initialisation check: "if there is no power failure, the SQ
        and CQ tail pointers should refer to the same offset of their queue
        entries" — a mismatch (or pending journal tags) signals interrupted
        I/O that must be replayed (Section IV-B).
        """
        return self.sq.outstanding == 0 and self.cq.outstanding == 0

    def in_flight_commands(self) -> List[NVMeCommand]:
        """Commands visible in the SQ whose journal tag is still set."""
        return [command for command in self.sq.pending_commands()
                if command.is_pending]
