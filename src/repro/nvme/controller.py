"""NVMe controller front-end.

The controller sits inside the SSD (Figure 4b): it synchronises the
storage-side submission queue when the host rings a doorbell, DMAs the data
referenced by the command's PRP pointer across the host link, hands the
request to the flash firmware (the :class:`~repro.flash.ssd.SSD` model), and
finally posts a completion entry and raises an MSI interrupt.

The same controller object serves both integrations of HAMS — only the
``link`` differs (a :class:`~repro.interconnect.pcie.PCIeLink` for the
baseline, a :class:`~repro.interconnect.ddr_bus.DDR4Bus` for the advanced
design) — and also the software NVMe driver path of the mmap baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import NVMeConfig
from ..flash.ssd import IORequest, SSD
from ..interconnect.link import Link
from .commands import NVMeCommand, NVMeCompletion
from .queues import QueuePair


@dataclass
class CommandResult:
    """Timing decomposition of one executed NVMe command."""

    command: NVMeCommand
    submit_ns: float
    finish_ns: float
    protocol_ns: float
    transfer_ns: float
    device_ns: float
    flash_reads: int = 0
    flash_programs: int = 0
    buffer_hits: int = 0

    @property
    def latency_ns(self) -> float:
        return self.finish_ns - self.submit_ns


class NVMeController:
    """Executes NVMe commands against an SSD device over a host link."""

    def __init__(self, ssd: SSD, link: Link, config: NVMeConfig) -> None:
        self.ssd = ssd
        self.link = link
        self.config = config
        self.commands_executed = 0
        self.bytes_dma = 0

    # -- single-command execution ------------------------------------------------

    def execute(self, command: NVMeCommand, at_ns: float) -> CommandResult:
        """Execute *command* submitted at *at_ns* and return its timing.

        The latency composition follows the protocol walk-through of
        Section II-C: doorbell + controller fetch/parse, the PRP-referenced
        DMA over the host link, the flash firmware service, completion
        posting and the MSI interrupt.
        """
        command.mark_submitted(at_ns)
        protocol_in = self.config.doorbell_ns + self.config.controller_processing_ns
        now = at_ns + protocol_in
        transfer_ns = 0.0

        if command.is_write:
            # Data moves host -> device before the media program.
            record = self.link.transfer(command.length_bytes, now)
            transfer_ns += record.latency_ns
            now = record.finish_ns
            self.bytes_dma += command.length_bytes

        io = self.ssd.submit(IORequest(is_write=command.is_write,
                                       byte_offset=command.byte_offset,
                                       size_bytes=command.length_bytes,
                                       submit_ns=now,
                                       fua=command.fua))
        device_ns = io.finish_ns - now
        now = io.finish_ns

        if not command.is_write:
            # Data moves device -> host after the media read.
            record = self.link.transfer(command.length_bytes, now)
            transfer_ns += record.latency_ns
            now = record.finish_ns
            self.bytes_dma += command.length_bytes

        protocol_out = self.config.msi_ns
        finish = now + protocol_out
        command.mark_completed(finish)
        self.commands_executed += 1
        return CommandResult(command=command, submit_ns=at_ns, finish_ns=finish,
                             protocol_ns=protocol_in + protocol_out,
                             transfer_ns=transfer_ns, device_ns=device_ns,
                             flash_reads=io.flash_reads,
                             flash_programs=io.flash_programs,
                             buffer_hits=io.buffer_hits)

    # -- queue-pair driven execution ------------------------------------------------

    def drain(self, queue_pair: QueuePair, at_ns: float) -> List[CommandResult]:
        """Fetch and execute every command pending in *queue_pair*.

        Commands are consumed in FIFO order from the submission queue; a
        completion entry is posted for each.  Returns the per-command
        results in execution order.
        """
        results: List[CommandResult] = []
        now = at_ns
        while True:
            command = queue_pair.sq.fetch()
            if command is None:
                break
            result = self.execute(command, now)
            completion = NVMeCompletion(command_id=command.command_id,
                                        sq_head=queue_pair.sq.head,
                                        posted_ns=result.finish_ns)
            queue_pair.cq.post(completion)
            results.append(result)
            now = max(now, result.finish_ns) if command.fua else now
        return results

    def statistics(self) -> Dict[str, float]:
        return {
            "commands_executed": float(self.commands_executed),
            "bytes_dma": float(self.bytes_dma),
        }
