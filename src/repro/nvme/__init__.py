"""NVMe protocol substrate: commands, queue pairs, PRP pool, controller.

This package implements the protocol machinery that both the software NVMe
driver (mmap baseline) and the HAMS hardware NVMe engine sit on top of:
64 B command structures with opcode / PRP / LBA / length fields plus the
journal tag HAMS adds in the reserved area, submission/completion queue
rings with head/tail pointers and doorbells, a physical-region-page pool,
and a controller front-end that forwards commands to an SSD device model and
posts completions (Section II-C, Figure 4b).
"""

from .commands import NVMeCommand, NVMeCompletion, NVMeOpcode
from .prp import PRPEntry, PRPPool
from .queues import CompletionQueue, QueuePair, SubmissionQueue
from .controller import NVMeController

__all__ = [
    "NVMeCommand",
    "NVMeCompletion",
    "NVMeOpcode",
    "PRPEntry",
    "PRPPool",
    "SubmissionQueue",
    "CompletionQueue",
    "QueuePair",
    "NVMeController",
]
