"""NVMe command and completion structures.

A real NVMe command is a 64-byte structure; HAMS composes commands in
hardware by "filling the information fields of the NVMe command structure"
— opcode, PRP (the NVDIMM address of the data), LBA (the ULL-Flash address)
and length — and adds a *journal tag* in the reserved area that records
whether the command has completed, which the power-failure recovery scans
(Sections V-B and V-C).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class NVMeOpcode(Enum):
    """Subset of NVMe I/O opcodes used by the MoS datapath."""

    READ = 0x02
    WRITE = 0x01
    FLUSH = 0x00

    @property
    def is_write(self) -> bool:
        return self is NVMeOpcode.WRITE


_command_ids = itertools.count(1)


@dataclass
class NVMeCommand:
    """One 64 B submission-queue entry.

    ``prp`` points at the host-memory (NVDIMM) buffer for the transfer,
    ``lba`` and ``length_bytes`` address the storage side, ``fua`` requests
    force-unit-access semantics, and ``journal_tag`` is the HAMS persistency
    bit carried in the reserved command area: set to 1 when the command is
    sent to the device, cleared when its completion interrupt arrives.
    """

    opcode: NVMeOpcode
    lba: int
    length_bytes: int
    prp: int
    fua: bool = False
    journal_tag: int = 0
    command_id: int = field(default_factory=lambda: next(_command_ids))
    submitted_ns: Optional[float] = None
    completed_ns: Optional[float] = None

    SIZE_BYTES = 64

    def __post_init__(self) -> None:
        if self.lba < 0:
            raise ValueError("lba must be non-negative")
        if self.length_bytes <= 0:
            raise ValueError("length_bytes must be positive")
        if self.prp < 0:
            raise ValueError("prp must be non-negative")
        if self.journal_tag not in (0, 1):
            raise ValueError("journal_tag is a single bit")

    @property
    def is_write(self) -> bool:
        return self.opcode.is_write

    @property
    def byte_offset(self) -> int:
        """Storage byte offset addressed by this command."""
        return self.lba * 512

    def mark_submitted(self, at_ns: float) -> None:
        self.submitted_ns = at_ns
        self.journal_tag = 1

    def mark_completed(self, at_ns: float) -> None:
        self.completed_ns = at_ns
        self.journal_tag = 0

    @property
    def is_pending(self) -> bool:
        """True while the command has been issued but not completed."""
        return self.journal_tag == 1


@dataclass
class NVMeCompletion:
    """One 16 B completion-queue entry."""

    command_id: int
    status: int = 0
    sq_head: int = 0
    posted_ns: float = 0.0

    SIZE_BYTES = 16

    @property
    def success(self) -> bool:
        return self.status == 0


def build_read(lba: int, length_bytes: int, prp: int,
               fua: bool = False) -> NVMeCommand:
    """Convenience constructor for a read command."""
    return NVMeCommand(opcode=NVMeOpcode.READ, lba=lba,
                       length_bytes=length_bytes, prp=prp, fua=fua)


def build_write(lba: int, length_bytes: int, prp: int,
                fua: bool = False) -> NVMeCommand:
    """Convenience constructor for a write command."""
    return NVMeCommand(opcode=NVMeOpcode.WRITE, lba=lba,
                       length_bytes=length_bytes, prp=prp, fua=fua)
