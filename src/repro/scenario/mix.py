"""Deterministic issue-clock merge of N tenant streams into one mix.

The merge answers one question: in what order do N tenants' accesses reach
the shared platform?  Two arrival models define the order:

* ``interleave`` — weighted round-robin on access count.  Cycle *c* gives
  every unexhausted tenant a block of ``weight`` consecutive accesses, in
  tenant order.  No clocks involved; the classic "regular interleave" mix.
* ``rate`` — every tenant has an issue clock: access *i* of tenant *t*
  issues at ``phase_t + (i + 1) / rate_t``.  The mix is the globally
  time-sorted sequence (ties broken by tenant order).  Admission throttling
  clamps ``rate_t``; strict priority re-orders accesses *within* unit clock
  windows by descending priority.

Both merges are exact and deterministic — pure integer/float functions of
the spec and the tenant stream lengths, with no RNG and no dependence on
how the output is chunked.  :class:`MixedAccessStream` streams the merge:
``chunks()`` re-runs the generator and re-slices its blocks, so a mix of
file-backed tenants replays with RSS bounded by a few merge blocks and
never materialises.  The per-column running-hash
:func:`mix_content_hash` is therefore chunking-invariant, giving scenario
runs the same content-addressed identity discipline as ``trace:`` files.

A key structural fact the column fetch exploits: within any emitted merge
block, each tenant's accesses appear in position order with no gaps (both
models consume every stream strictly sequentially), so one zero-copy
window per (tenant, block) suffices — no gather.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..workloads.trace import AccessStream, WorkloadTrace
from .spec import ScenarioSpec

#: Internal merge emission granularity.  Deliberately independent of the
#: replay chunk size: blocks only group whole round-robin cycles or
#: complete clock horizons, so the emitted *sequence* never depends on it.
MERGE_BLOCK = 65536

#: Tenant address spaces are packed at this alignment so mixed address
#: patterns stay page-aligned relative to the solo run.
TENANT_SPAN_ALIGN = 1 << 20


class TenantAccessStream(AccessStream):
    """An :class:`AccessStream` with a parallel int64 ``tenants`` column.

    Slicing preserves the tenant tags, which is what carries them through
    ``chunks()`` and into the batched replay loop (the platform reads
    ``getattr(chunk, "tenants", None)``).
    """

    __slots__ = ("tenants",)

    def __init__(self, addresses: np.ndarray, sizes: np.ndarray,
                 writes: np.ndarray, tenants: np.ndarray) -> None:
        super().__init__(addresses, sizes, writes)
        if tenants.shape != addresses.shape:
            raise ValueError("tenants column must match the stream length")
        self.tenants = tenants

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TenantAccessStream(
                self.addresses[index], self.sizes[index],
                self.writes[index], self.tenants[index])
        return super().__getitem__(index)


def _concat_tenant_blocks(
        blocks: Sequence[TenantAccessStream]) -> TenantAccessStream:
    if len(blocks) == 1:
        return blocks[0]
    return TenantAccessStream(
        np.concatenate([block.addresses for block in blocks]),
        np.concatenate([block.sizes for block in blocks]),
        np.concatenate([block.writes for block in blocks]),
        np.concatenate([block.tenants for block in blocks]))


# ---------------------------------------------------------------------------
# Merge order generators: (tenant_index, tenant_position) block pairs
# ---------------------------------------------------------------------------


def _interleave_blocks(lengths: Sequence[int], weights: Sequence[int],
                       block: int = MERGE_BLOCK
                       ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Weighted round-robin order, vectorised an era at a time.

    An *era* is a run of cycles over which the active-tenant set cannot
    change (every active tenant has that many full cycles left); its
    cycles are identical templates, so the whole era is one ``repeat`` +
    one broadcast fill per tenant.  Boundary cycles (where some tenant
    runs dry mid-cycle) fall back to a single explicit cycle.  Era capping
    by *block* only groups whole cycles differently — the concatenated
    output sequence is independent of *block*.
    """
    count = len(lengths)
    consumed = [0] * count
    while True:
        active = [t for t in range(count) if consumed[t] < lengths[t]]
        if not active:
            return
        full_cycles = min(
            (lengths[t] - consumed[t]) // weights[t] for t in active)
        cycle_width = sum(weights[t] for t in active)
        era = min(full_cycles, max(1, block // cycle_width))
        if era:
            template = np.repeat(np.asarray(active, dtype=np.int64),
                                 np.asarray([weights[t] for t in active],
                                            dtype=np.int64))
            positions = np.empty((era, cycle_width), dtype=np.int64)
            offset = 0
            for t in active:
                weight = weights[t]
                positions[:, offset:offset + weight] = (
                    consumed[t]
                    + (np.arange(era, dtype=np.int64) * weight)[:, None]
                    + np.arange(weight, dtype=np.int64)[None, :])
                consumed[t] += era * weight
                offset += weight
            yield np.tile(template, era), positions.reshape(-1)
        else:
            indices: List[np.ndarray] = []
            positions_parts: List[np.ndarray] = []
            for t in active:
                take = min(weights[t], lengths[t] - consumed[t])
                indices.append(np.full(take, t, dtype=np.int64))
                positions_parts.append(np.arange(
                    consumed[t], consumed[t] + take, dtype=np.int64))
                consumed[t] += take
            yield (np.concatenate(indices),
                   np.concatenate(positions_parts))


def _rate_blocks(lengths: Sequence[int], rates: Sequence[float],
                 phases: Sequence[float], priorities: Sequence[int],
                 block: int = MERGE_BLOCK, *,
                 priority_windows: bool = False
                 ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Rate-scaled merge: lazy k-way sort of per-tenant issue clocks.

    Issue times are computed from each access's *global* position
    (``phase + (position + 1) / rate``), so buffering granularity cannot
    perturb them.  Each round buffers a window of future times per tenant,
    then emits everything at or before the *horizon* — the earliest
    last-buffered time among tenants with unbuffered accesses remaining —
    which is exactly the prefix whose global order is already decided.
    Ordering is ``np.lexsort`` (stable): time then tenant index; with
    *priority_windows*, unit clock windows first, then descending
    priority within the window, then time, then tenant — and only fully
    buffered windows are emitted, so a higher-priority access can never
    arrive late into an already-emitted window.
    """
    count = len(lengths)
    consumed = [0] * count
    buffered = [0] * count          # positions [consumed, buffered) held
    times: List[np.ndarray] = [np.empty(0)] * count
    step = max(1, block // max(1, count))
    while any(consumed[t] < lengths[t] for t in range(count)):
        for t in range(count):
            if buffered[t] < lengths[t]:
                grow = np.arange(buffered[t],
                                 min(buffered[t] + step, lengths[t]),
                                 dtype=np.int64)
                times[t] = np.concatenate(
                    [times[t], phases[t] + (grow + 1.0) / rates[t]])
                buffered[t] = int(grow[-1]) + 1
        open_tails = [times[t][-1] for t in range(count)
                      if buffered[t] < lengths[t] and len(times[t])]
        horizon = min(open_tails) if open_tails else np.inf
        emit_counts = []
        for t in range(count):
            if not len(times[t]):
                emit_counts.append(0)
            elif not np.isfinite(horizon):
                emit_counts.append(len(times[t]))
            elif priority_windows:
                # Only windows strictly below floor(horizon) are complete.
                emit_counts.append(int(np.searchsorted(
                    times[t], np.floor(horizon), side="left")))
            else:
                emit_counts.append(int(np.searchsorted(
                    times[t], horizon, side="right")))
        if not sum(emit_counts):
            continue  # buffers extend next round; the horizon only grows
        index_parts = []
        position_parts = []
        time_parts = []
        priority_parts = []
        for t in range(count):
            take = emit_counts[t]
            if not take:
                continue
            index_parts.append(np.full(take, t, dtype=np.int64))
            position_parts.append(np.arange(
                consumed[t], consumed[t] + take, dtype=np.int64))
            time_parts.append(times[t][:take])
            if priority_windows:
                priority_parts.append(
                    np.full(take, -priorities[t], dtype=np.int64))
            times[t] = times[t][take:]
            consumed[t] += take
        indices = np.concatenate(index_parts)
        positions = np.concatenate(position_parts)
        issue = np.concatenate(time_parts)
        if priority_windows:
            order = np.lexsort((indices, issue,
                                np.concatenate(priority_parts),
                                np.floor(issue)))
        else:
            order = np.lexsort((indices, issue))
        yield indices[order], positions[order]


def _merge_order(spec: ScenarioSpec, lengths: Sequence[int]
                 ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """The (tenant, position) emission order of *spec* over *lengths*."""
    if spec.arrival == "interleave":
        return _interleave_blocks(
            lengths, [tenant.weight for tenant in spec.tenants])
    rates = [tenant.rate for tenant in spec.tenants]
    if spec.policy == "throttle":
        limits = dict(spec.policy_params.get("limits", {}))
        names = spec.tenant_names()
        unknown = sorted(set(limits) - set(names))
        if unknown:
            raise ValueError(
                f"throttle limits name unknown tenants {unknown}; "
                f"tenants are {names}")
        rates = [min(rate, float(limits.get(name, np.inf)))
                 for rate, name in zip(rates, names)]
        if not all(rate > 0 for rate in rates):
            raise ValueError("throttle limits must be positive rates")
    return _rate_blocks(
        lengths, rates,
        [tenant.phase for tenant in spec.tenants],
        [tenant.priority for tenant in spec.tenants],
        priority_windows=spec.policy == "priority")


# ---------------------------------------------------------------------------
# The mixed stream
# ---------------------------------------------------------------------------


class MixedAccessStream(AccessStream):
    """N tenant streams merged on the issue clock, behind the
    :class:`AccessStream` interface.

    Like :class:`~repro.trace.reader.FileAccessStream`, the replay path
    (``chunks()`` / ``len()``) streams: each call re-runs the merge
    generator and re-slices its blocks into exact *chunk_size* windows, so
    a mix is never materialised and file-backed tenants keep their bounded
    RSS.  Every window is a :class:`TenantAccessStream`, carrying the
    int64 tenant tag column into the batched replay loop.  The full-column
    accessors materialise once, for the scalar compatibility path only.
    """

    __slots__ = ("_spec", "_traces", "_bases", "_lengths", "_total",
                 "_columns_cache")

    def __init__(self, spec: ScenarioSpec,
                 traces: Sequence[WorkloadTrace],
                 bases: Sequence[int]) -> None:
        # Deliberately does NOT call AccessStream.__init__: the base slots
        # stay unset and the properties below shadow them.
        if len(traces) != len(spec.tenants) or len(bases) != len(traces):
            raise ValueError("one trace and one base per tenant required")
        self._spec = spec
        self._traces = tuple(traces)
        self._bases = tuple(int(base) for base in bases)
        self._lengths = tuple(len(trace) for trace in traces)
        self._total = sum(self._lengths)
        self._columns_cache: Optional[TenantAccessStream] = None

    # -- mix identity ------------------------------------------------------------

    @property
    def spec(self) -> ScenarioSpec:
        return self._spec

    @property
    def bases(self) -> Tuple[int, ...]:
        """Per-tenant address-space base offsets."""
        return self._bases

    @property
    def tenant_lengths(self) -> Tuple[int, ...]:
        return self._lengths

    # -- merge streaming ---------------------------------------------------------

    def _blocks(self) -> Iterator[TenantAccessStream]:
        for indices, positions in _merge_order(self._spec, self._lengths):
            if len(indices):
                yield self._column_block(indices, positions)

    def _column_block(self, indices: np.ndarray,
                      positions: np.ndarray) -> TenantAccessStream:
        """Fetch the columns of one merge block from the tenant streams.

        Each tenant's positions within a block are one contiguous
        ascending range (streams are consumed strictly sequentially), so
        one window per tenant suffices — zero-copy for in-memory tenants,
        one bounded read for file-backed ones.
        """
        total = len(indices)
        addresses = np.empty(total, dtype=np.int64)
        sizes = np.empty(total, dtype=np.int64)
        writes = np.empty(total, dtype=bool)
        for t in np.unique(indices):
            selected = indices == t
            block_positions = positions[selected]
            low = int(block_positions[0])
            high = int(block_positions[-1]) + 1
            if high - low != len(block_positions):
                raise AssertionError(
                    "merge emitted non-contiguous tenant positions")
            window = self._traces[t].stream[low:high]
            addresses[selected] = window.addresses + self._bases[t]
            sizes[selected] = window.sizes
            writes[selected] = window.writes
        return TenantAccessStream(addresses, sizes, writes, indices)

    def chunks(self, chunk_size: int) -> Iterator[TenantAccessStream]:
        """Stream exact *chunk_size* tenant-tagged windows of the mix."""
        if chunk_size <= 0:
            raise ValueError("chunk size must be positive")
        buffered: List[TenantAccessStream] = []
        pending = 0
        for block in self._blocks():
            buffered.append(block)
            pending += len(block)
            while pending >= chunk_size:
                yield _take_front(buffered, chunk_size)
                pending -= chunk_size
        if pending:
            yield _take_front(buffered, pending)

    # -- sequence protocol -------------------------------------------------------

    def __len__(self) -> int:
        return self._total

    def _columns(self) -> TenantAccessStream:
        cached = self._columns_cache
        if cached is None:
            blocks = list(self._blocks())
            if blocks:
                cached = _concat_tenant_blocks(blocks)
            else:
                empty = np.empty(0, dtype=np.int64)
                cached = TenantAccessStream(
                    empty, empty.copy(), np.empty(0, dtype=bool),
                    empty.copy())
            self._columns_cache = cached
        return cached

    @property
    def addresses(self) -> np.ndarray:  # materialises the mix
        return self._columns().addresses

    @property
    def sizes(self) -> np.ndarray:  # materialises the mix
        return self._columns().sizes

    @property
    def writes(self) -> np.ndarray:  # materialises the mix
        return self._columns().writes

    @property
    def tenants(self) -> np.ndarray:  # materialises the mix
        return self._columns().tenants

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._columns()[index]
        return self._columns()[index]

    def __iter__(self):
        for chunk in self.chunks(MERGE_BLOCK):
            yield from chunk

    def __repr__(self) -> str:
        return (f"MixedAccessStream({self._spec.name!r}, "
                f"tenants={len(self._traces)}, length={self._total})")

    @property
    def nbytes(self) -> int:
        """Logical footprint (25 B/access); resident memory is bounded by
        a few merge blocks."""
        return 25 * self._total

    @property
    def write_count(self) -> int:
        return sum(trace.stream.write_count for trace in self._traces)

    def touched_bytes(self) -> int:
        high = 0
        for trace, base in zip(self._traces, self._bases):
            if len(trace):
                high = max(high, base + trace.stream.touched_bytes())
        return high


def _take_front(buffered: List[TenantAccessStream],
                count: int) -> TenantAccessStream:
    """Pop exactly *count* accesses off the front of the block buffer."""
    taken: List[TenantAccessStream] = []
    remaining = count
    while remaining:
        head = buffered[0]
        if len(head) <= remaining:
            taken.append(head)
            buffered.pop(0)
            remaining -= len(head)
        else:
            taken.append(head[:remaining])
            buffered[0] = head[remaining:]
            remaining = 0
    return _concat_tenant_blocks(taken)


# ---------------------------------------------------------------------------
# Building a replay-ready mixed trace
# ---------------------------------------------------------------------------


def build_mixed_trace(spec: ScenarioSpec, scale) -> WorkloadTrace:
    """Build the replay-ready :class:`WorkloadTrace` of a scenario.

    Tenant traces come from the ordinary workload pipeline
    (:func:`~repro.workloads.registry.build_trace` — registry names and
    ``trace:`` files alike, honouring per-tenant dataset overrides).  A
    single-tenant scenario keeps the solo trace's metadata and a zero base
    offset, so its replay is bit-identical to the plain run; multi-tenant
    mixes pack each tenant into its own aligned address-space span and
    merge the bookkeeping (operations-per-second stays exact:
    ``accesses_per_operation`` is set so the mix's operation count equals
    the sum of the tenants' operation counts).
    """
    from ..workloads.registry import build_trace  # lazy: avoids a cycle

    traces = [build_trace(tenant.workload, scale,
                          dataset_bytes_override=tenant.dataset_bytes_override)
              for tenant in spec.tenants]
    if len(traces) == 1:
        bases = [0]
    else:
        bases = []
        next_base = 0
        for trace in traces:
            bases.append(next_base)
            span = max(trace.dataset_bytes, trace.touched_bytes())
            next_base += -(-span // TENANT_SPAN_ALIGN) * TENANT_SPAN_ALIGN
    stream = MixedAccessStream(spec, traces, bases)
    if len(traces) == 1:
        solo = traces[0]
        return WorkloadTrace(
            name=solo.name, suite=solo.suite, accesses=stream,
            dataset_bytes=solo.dataset_bytes,
            compute_instructions_per_access=(
                solo.compute_instructions_per_access),
            accesses_per_operation=solo.accesses_per_operation,
            operation_unit=solo.operation_unit,
            total_instructions=solo.total_instructions)
    compute_rates = {trace.compute_instructions_per_access
                     for trace in traces}
    if len(compute_rates) > 1:
        raise ValueError(
            "cannot mix tenants with different compute_instructions_per_"
            f"access ({sorted(compute_rates)}): the replay loop charges "
            "compute per access globally")
    units = {trace.operation_unit for trace in traces}
    total_accesses = len(stream)
    total_operations = sum(trace.operations for trace in traces)
    return WorkloadTrace(
        name=spec.name,
        suite="scenario",
        accesses=stream,
        dataset_bytes=bases[-1] + max(
            traces[-1].dataset_bytes, traces[-1].touched_bytes()),
        compute_instructions_per_access=compute_rates.pop(),
        accesses_per_operation=total_accesses / total_operations,
        operation_unit=units.pop() if len(units) == 1 else "ops",
        total_instructions=sum(trace.total_instructions
                               for trace in traces))


# ---------------------------------------------------------------------------
# Content identity and projection
# ---------------------------------------------------------------------------


def mix_content_hash(stream: AccessStream, *,
                     chunk_size: int = MERGE_BLOCK) -> str:
    """Chunking-invariant ``sha256:`` content hash of a (mixed) stream.

    Per-column running SHA-256 over little-endian addresses, sizes, write
    flags and tenant tags, folded into one digest — the four-column
    analogue of the trace store's
    :func:`~repro.trace.format.content_hash_of`.  Running updates are
    concatenation-invariant, so any chunking of the same sequence hashes
    identically.
    """
    address_sha = hashlib.sha256()
    size_sha = hashlib.sha256()
    write_sha = hashlib.sha256()
    tenant_sha = hashlib.sha256()
    for chunk in stream.chunks(chunk_size):
        address_sha.update(np.ascontiguousarray(
            chunk.addresses, dtype="<i8").tobytes())
        size_sha.update(np.ascontiguousarray(
            chunk.sizes, dtype="<i8").tobytes())
        write_sha.update(np.ascontiguousarray(
            chunk.writes, dtype=np.uint8).tobytes())
        tags = getattr(chunk, "tenants", None)
        if tags is None:
            tags = np.zeros(len(chunk), dtype=np.int64)
        tenant_sha.update(np.ascontiguousarray(
            tags, dtype="<i8").tobytes())
    combined = hashlib.sha256()
    combined.update(b"repro.mix/1\0")
    for digest in (address_sha, size_sha, write_sha, tenant_sha):
        combined.update(digest.digest())
    return f"sha256:{combined.hexdigest()}"


def tenant_projection(mixed: MixedAccessStream,
                      tenant_index: int) -> AccessStream:
    """Tenant *tenant_index*'s accesses, extracted back out of the mix.

    Base offsets are removed, so (by the merge's sequential-consumption
    property) the projection of a mixed stream equals the tenant's
    original stream exactly — the invariant the hypothesis suite pins.
    """
    base = mixed.bases[tenant_index]
    addresses: List[np.ndarray] = []
    sizes: List[np.ndarray] = []
    writes: List[np.ndarray] = []
    for chunk in mixed.chunks(MERGE_BLOCK):
        selected = chunk.tenants == tenant_index
        if not selected.any():
            continue
        addresses.append(chunk.addresses[selected] - base)
        sizes.append(chunk.sizes[selected])
        writes.append(chunk.writes[selected])
    if not addresses:
        empty = np.empty(0, dtype=np.int64)
        return AccessStream(empty, empty.copy(), np.empty(0, dtype=bool))
    return AccessStream(np.concatenate(addresses),
                        np.concatenate(sizes),
                        np.concatenate(writes))
