"""Scenario specifications: plain-data descriptions of a tenant mix.

A :class:`ScenarioSpec` names N tenants (each a Table III workload or a
``trace:<path>`` file), an arrival model that decides how their access
streams interleave on the shared platform's issue clock, and a QoS policy
evaluated during replay.  Everything is plain data, serialises canonically
and round-trips exactly — which is what lets a scenario ride the existing
:class:`~repro.runner.specs.RunSpec` machinery as a
``scenario:<canonical-json>`` workload source: the run cache, the
serial/pool/sharded executors, shard manifests and ``repro serve`` all
treat a scenario exactly like any other workload name.

Content addressing mirrors the ``trace:`` convention: the run-cache key of
a scenario run never hashes a tenant's file *path* — each ``trace:``
tenant source is normalised through
:func:`~repro.trace.format.trace_run_identity` first, so two scenario
submissions whose tenant files hold the same accesses collapse to the same
cache entry (and a provenance-matched file collapses to the in-memory
workload it replays).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Workload-source prefix marking a scenario, next to ``trace:``.
SCENARIO_SOURCE_PREFIX = "scenario:"

#: How tenant streams merge onto the shared issue clock.
ARRIVAL_MODELS = ("interleave", "rate")

#: Reserved key of the merged per-tenant payload in ``RunResult.tenants``.
AGGREGATE_KEY = "aggregate"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a scenario: a workload plus its arrival shape.

    ``weight`` is the tenant's block size under the ``interleave`` arrival
    model (how many consecutive accesses it issues per round-robin cycle);
    ``rate`` and ``phase`` shape the ``rate`` arrival model — tenant access
    *i* issues at clock ``phase + (i + 1) / rate``, so a tenant with twice
    the rate lands twice as many accesses per unit of issue time.
    ``priority`` only matters under the strict-priority policy (larger
    wins).  ``name`` labels the tenant in reports and per-tenant statistics
    (default: derived from the workload).
    """

    workload: str
    name: Optional[str] = None
    weight: int = 1
    rate: float = 1.0
    phase: float = 0.0
    priority: int = 0
    dataset_bytes_override: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValueError("tenant workload must be non-empty")
        if self.workload.startswith(SCENARIO_SOURCE_PREFIX):
            raise ValueError("scenarios cannot nest scenario: sources")
        if not isinstance(self.weight, int) or self.weight < 1:
            raise ValueError(
                f"tenant weight must be a positive integer, "
                f"got {self.weight!r}")
        if not self.rate > 0:
            raise ValueError(f"tenant rate must be positive, got {self.rate!r}")
        if self.phase < 0:
            raise ValueError(
                f"tenant phase cannot be negative, got {self.phase!r}")
        if self.name == AGGREGATE_KEY:
            raise ValueError(
                f"tenant name {AGGREGATE_KEY!r} is reserved for the merged "
                f"per-tenant payload")

    @property
    def base_label(self) -> str:
        """The un-deduplicated display label of this tenant."""
        if self.name:
            return self.name
        if self.workload.startswith("trace:"):
            # The path stem, not the full path: labels are table columns.
            stem = self.workload.split("/")[-1]
            return stem[:-len(".trace")] if stem.endswith(".trace") else stem
        return self.workload

    def canonical(self) -> Dict[str, Any]:
        """Deterministically ordered plain-data form (hashing, artifacts)."""
        return {
            "workload": self.workload,
            "name": self.name,
            "weight": self.weight,
            "rate": self.rate,
            "phase": self.phase,
            "priority": self.priority,
            "dataset_bytes_override": self.dataset_bytes_override,
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "TenantSpec":
        return TenantSpec(
            workload=payload["workload"],
            name=payload.get("name"),
            weight=payload.get("weight", 1),
            rate=payload.get("rate", 1.0),
            phase=payload.get("phase", 0.0),
            priority=payload.get("priority", 0),
            dataset_bytes_override=payload.get("dataset_bytes_override"),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A named tenant mix: tenants + arrival model + QoS policy.

    The spec is pure description — no streams, no platform state — so it
    pickles trivially and its canonical JSON is the scenario's workload
    source (:func:`scenario_source`).  Policies that shape *arrival*
    (``throttle``, ``priority``) require the ``rate`` model, where issue
    clocks exist to shape; ``cache-partition`` acts on the platform instead
    and combines with either arrival model.
    """

    name: str
    tenants: Tuple[TenantSpec, ...]
    arrival: str = "interleave"
    policy: str = "shared"
    policy_params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Late import: policy.py imports nothing from here at module level,
        # but keeping the name list in one place avoids drift.
        from .policy import POLICY_NAMES
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not self.tenants:
            raise ValueError("a scenario needs at least one tenant")
        object.__setattr__(self, "tenants", tuple(
            tenant if isinstance(tenant, TenantSpec)
            else TenantSpec.from_dict(tenant)
            for tenant in self.tenants))
        if self.arrival not in ARRIVAL_MODELS:
            raise ValueError(
                f"unknown arrival model {self.arrival!r}; "
                f"expected one of {ARRIVAL_MODELS}")
        if self.policy not in POLICY_NAMES:
            raise ValueError(
                f"unknown policy {self.policy!r}; "
                f"expected one of {POLICY_NAMES}")
        if self.policy in ("throttle", "priority") and \
                self.arrival != "rate":
            raise ValueError(
                f"policy {self.policy!r} shapes issue clocks and needs "
                f"arrival='rate' (got {self.arrival!r})")
        if self.arrival == "interleave":
            for tenant in self.tenants:
                if tenant.phase:
                    raise ValueError(
                        f"tenant {tenant.base_label!r} sets a phase offset, "
                        f"which only the 'rate' arrival model honours")
        object.__setattr__(self, "policy_params",
                           dict(self.policy_params or {}))

    # -- labels ---------------------------------------------------------------------

    def tenant_names(self) -> List[str]:
        """Unique display labels, one per tenant, in tenant order.

        Duplicate base labels (the same workload mixed against itself —
        the classic noisy-neighbour study) are disambiguated by an
        ``#<position>`` suffix, so per-tenant payload keys never collide.
        """
        bases = [tenant.base_label for tenant in self.tenants]
        names: List[str] = []
        for index, base in enumerate(bases):
            if bases.count(base) > 1:
                names.append(f"{base}#{index}")
            else:
                names.append(base)
        return names

    # -- serialisation --------------------------------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """Deterministically ordered plain-data form of the whole spec."""
        return {
            "name": self.name,
            "tenants": [tenant.canonical() for tenant in self.tenants],
            "arrival": self.arrival,
            "policy": self.policy,
            "policy_params": _canonical_value(self.policy_params),
        }

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "ScenarioSpec":
        return ScenarioSpec(
            name=payload["name"],
            tenants=tuple(TenantSpec.from_dict(tenant)
                          for tenant in payload["tenants"]),
            arrival=payload.get("arrival", "interleave"),
            policy=payload.get("policy", "shared"),
            policy_params=dict(payload.get("policy_params") or {}),
        )

    def identity(self, scale_dict: Mapping[str, Any]) -> str:
        """``sha256:<hex>`` mix identity, content-addressed like the cache.

        Hashes the canonical spec with every ``trace:`` tenant source
        replaced by its :func:`~repro.trace.format.trace_run_identity`
        (content hash or collapsed provenance name — never a path), plus
        the scale that fixes the synthesised tenants' streams.  Two
        scenarios with this identity and the same platform/config replay
        bit-identically.
        """
        payload = {
            "scenario": _normalised_canonical(self, dict(scale_dict)),
            "scale": dict(scale_dict),
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True,
                       separators=(",", ":")).encode("utf-8"))
        return f"sha256:{digest.hexdigest()}"


def _canonical_value(value: Any) -> Any:
    """Recursively sort mappings so canonical JSON is deterministic."""
    if isinstance(value, Mapping):
        return {key: _canonical_value(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item) for item in value]
    return value


# ---------------------------------------------------------------------------
# The scenario: workload source
# ---------------------------------------------------------------------------


def scenario_source(spec: ScenarioSpec) -> str:
    """The ``scenario:<canonical-json>`` workload name of *spec*.

    This string is what a :class:`~repro.runner.specs.RunSpec` carries, so
    it must be deterministic: the same spec always encodes to the same
    source, and therefore to the same run-cache key.
    """
    return SCENARIO_SOURCE_PREFIX + json.dumps(
        spec.canonical(), sort_keys=True, separators=(",", ":"))


def is_scenario_source(workload: object) -> bool:
    """True when a workload name encodes a scenario."""
    return (isinstance(workload, str)
            and workload.startswith(SCENARIO_SOURCE_PREFIX))


def parse_scenario_source(workload: str) -> ScenarioSpec:
    """Rebuild the exact spec :func:`scenario_source` encoded."""
    if not is_scenario_source(workload):
        raise ValueError(f"not a scenario source: {workload!r}")
    body = workload[len(SCENARIO_SOURCE_PREFIX):]
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as error:
        raise ValueError(
            f"malformed scenario source (not valid JSON): {error}") from None
    return ScenarioSpec.from_dict(payload)


def scenario_run_identity(workload: str,
                          scale_dict: Dict[str, Any]) -> Dict[str, Any]:
    """What a ``scenario:`` workload contributes to a run-cache key.

    The canonical spec with each ``trace:`` tenant source normalised to
    its content identity — the scenario analogue of
    :func:`~repro.trace.format.trace_run_identity`, and called from the
    same place (:func:`~repro.runner.artifacts.run_cache_key`).
    """
    spec = parse_scenario_source(workload)
    return {"scenario": _normalised_canonical(spec, scale_dict)}


def _normalised_canonical(spec: ScenarioSpec,
                          scale_dict: Dict[str, Any]) -> Dict[str, Any]:
    """The canonical spec with path-free tenant source identities."""
    payload = spec.canonical()
    for tenant, entry in zip(spec.tenants, payload["tenants"]):
        if tenant.workload.startswith("trace:"):
            from ..trace.format import trace_run_identity  # lazy: no cycle
            entry["workload"] = trace_run_identity(
                tenant.workload, scale_dict, tenant.dataset_bytes_override)
    return payload


# ---------------------------------------------------------------------------
# Cost estimation (shard planning, `repro scenario plan`)
# ---------------------------------------------------------------------------


def tenant_stream_length(tenant: TenantSpec, scale) -> int:
    """Exact access count of one tenant's stream, without building it.

    ``trace:`` tenants read the length from the ``repro.trace/1`` footer;
    registry tenants mirror :func:`~repro.workloads.registry.trace_plan`'s
    arithmetic (which is exact, not an estimate — the plan fixes the
    count before any synthesis).
    """
    if tenant.workload.startswith("trace:"):
        from ..trace.format import trace_source_path, trace_summary
        return int(trace_summary(
            trace_source_path(tenant.workload))["length"])
    from ..workloads.registry import get_workload
    workload = get_workload(tenant.workload)
    scaled = scale.scaled_instructions(
        workload.characteristics.total_instructions)
    raw = int(scaled / (1.0 + workload.compute_instructions_per_access))
    return min(scale.max_accesses, max(scale.min_accesses, raw))


def scenario_spec_length(workload_or_spec, scale) -> int:
    """Total merged accesses of a scenario: the sum of its tenant streams.

    Accepts either a :class:`ScenarioSpec` or its ``scenario:`` source
    string — :func:`~repro.distrib.manifest.estimate_spec_cost` passes the
    latter straight off a :class:`~repro.runner.specs.RunSpec`.
    """
    spec = (parse_scenario_source(workload_or_spec)
            if isinstance(workload_or_spec, str) else workload_or_spec)
    return sum(tenant_stream_length(tenant, scale) for tenant in spec.tenants)
