"""Scenario replay: mixed-stream execution with per-tenant attribution.

One scenario run is one ordinary platform replay of the mixed trace — the
platform's clocks, caches and devices see exactly the interleaved stream a
shared system would — plus two scenario-only attachments:

* an **attribution observer** riding the batched replay loop's
  ``on_chunk`` hook, folding every chunk's per-access stall/byte/off-chip
  columns into one :class:`~repro.sim.stats.StatRegistry` per tenant
  (vectorised ``np.bincount`` splits plus a parallel-Welford fold for the
  service-latency aggregate, so attribution costs far less than replay);
* the spec's **QoS policy**, applied to the platform before replay
  (:func:`~repro.scenario.policy.install_policy`) and to the merge order
  before that (throttle/priority, inside :mod:`repro.scenario.mix`).

The conservation invariant — the CI gate — is structural: the reported
``aggregate`` payload *is* the merge of the per-tenant registries, and the
integer totals are cross-checked against the platform's own accounting
(accesses, off-chip accesses) before the result leaves this module.
Per-tenant statistics live in ``RunResult.tenants``, never in ``extras``,
so a 1-tenant scenario's RunResult is bit-identical to the solo run
everywhere existing tests and baselines look.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..platforms.base import RunResult
from ..sim.stats import LatencyStat, StatRegistry
from .mix import build_mixed_trace
from .policy import install_policy
from .spec import (
    AGGREGATE_KEY,
    ScenarioSpec,
    parse_scenario_source,
    scenario_source,
)


def _fold_samples(stat: LatencyStat, samples: np.ndarray) -> None:
    """Fold a sample column into *stat* via one parallel-Welford merge.

    Equivalent in count/total/min/max and agreeing with per-sample
    ``record`` to float merge tolerance in mean/variance — the same
    contract :meth:`~repro.sim.stats.LatencyStat.merge` already has.
    """
    count = len(samples)
    if not count:
        return
    other = LatencyStat(stat.name)
    other.count = count
    other.total = float(samples.sum())
    other.min = float(samples.min())
    other.max = float(samples.max())
    mean = float(samples.mean())
    other._mean = mean
    other._m2 = float(((samples - mean) ** 2).sum())
    stat.merge(other)


class TenantAttribution:
    """Replay observer: splits every chunk's costs by tenant tag."""

    def __init__(self, tenant_count: int) -> None:
        self.tenant_count = tenant_count
        self.registries: List[StatRegistry] = [
            StatRegistry() for _ in range(tenant_count)]

    def on_chunk(self, chunk, stall_ns: np.ndarray,
                 miss_indices: np.ndarray, service) -> None:
        tags = getattr(chunk, "tenants", None)
        if tags is None:
            raise ValueError(
                "scenario attribution requires a tenant-tagged stream "
                "(chunk has no tenants column)")
        width = self.tenant_count
        accesses = np.bincount(tags, minlength=width)
        stalls = np.bincount(tags, weights=stall_ns, minlength=width)
        moved = np.bincount(tags, weights=chunk.sizes.astype(np.float64),
                            minlength=width)
        if len(miss_indices):
            miss_tags = tags[miss_indices]
            offchip = np.bincount(miss_tags, minlength=width)
            os_ns = np.bincount(miss_tags, weights=service.os_ns,
                                minlength=width)
            storage_ns = np.bincount(miss_tags, weights=service.storage_ns,
                                     minlength=width)
        else:
            miss_tags = None
            offchip = os_ns = storage_ns = None
        for tenant in range(width):
            if not accesses[tenant]:
                continue
            registry = self.registries[tenant]
            registry.counter("accesses").add(float(accesses[tenant]))
            registry.counter("bytes").add(float(moved[tenant]))
            registry.counter("stall_ns").add(float(stalls[tenant]))
            if offchip is not None and offchip[tenant]:
                registry.counter("offchip").add(float(offchip[tenant]))
                registry.counter("os_ns").add(float(os_ns[tenant]))
                registry.counter("storage_ns").add(float(storage_ns[tenant]))
                _fold_samples(
                    registry.latency("service_ns"),
                    service.latency_ns[miss_tags == tenant])


def _harvest_cache_counters(platform, cache_names: List[str],
                            registries: List[StatRegistry]) -> None:
    """Pull per-tenant page-cache counters into the tenant registries."""
    for name in cache_names:
        cache = getattr(platform, name)
        for tenant, counters in cache.tenant_statistics().items():
            registry = registries[tenant]
            for key, value in counters.items():
                if value:
                    registry.counter(key).add(float(value))


def aggregate_registry(registries: List[StatRegistry]) -> StatRegistry:
    """The exact tenant-order merge of the per-tenant registries.

    This is the same fold the conservation test recomputes — by
    construction, ``sum of per-tenant == aggregate`` at threshold 0.
    """
    merged = StatRegistry()
    for registry in registries:
        merged.merge(registry)
    return merged


def run_scenario(scenario: ScenarioSpec, platform, scale,
                 *, execution: Optional[str] = None) -> RunResult:
    """Replay *scenario* on a live *platform*, attaching tenant payloads.

    The low-level entry point: builds the mixed trace at *scale*, applies
    the platform-shaping policy, runs with the attribution observer, and
    returns the platform's RunResult with ``result.tenants`` filled in.
    Use :func:`scenario_run_spec` + a Session/runner for the cached,
    executor-tiered path.
    """
    trace = build_mixed_trace(scenario, scale)
    return _replay(scenario, platform, trace, execution=execution)


def _replay(scenario: ScenarioSpec, platform, trace,
            *, execution: Optional[str] = None) -> RunResult:
    names = scenario.tenant_names()
    cache_names = install_policy(platform, scenario, len(names))
    observer = TenantAttribution(len(names))
    result = platform.run(trace, execution=execution, observer=observer)
    _harvest_cache_counters(platform, cache_names, observer.registries)

    total_accesses = sum(
        int(registry.counter("accesses").value)
        for registry in observer.registries)
    if total_accesses != result.memory_accesses:
        raise AssertionError(
            f"tenant attribution lost accesses: "
            f"{total_accesses} != {result.memory_accesses}")
    total_offchip = sum(
        int(registry.counters["offchip"].value)
        for registry in observer.registries
        if "offchip" in registry.counters)
    if total_offchip != result.offchip_accesses:
        raise AssertionError(
            f"tenant attribution lost off-chip accesses: "
            f"{total_offchip} != {result.offchip_accesses}")

    payload: Dict[str, Dict[str, float]] = {
        name: registry.snapshot()
        for name, registry in zip(names, observer.registries)}
    payload[AGGREGATE_KEY] = aggregate_registry(
        observer.registries).snapshot()
    result.tenants = payload
    return result


def execute_scenario_spec(spec, config, scale,
                          trace_cache: Optional[Dict[tuple, object]] = None
                          ) -> RunResult:
    """The ``scenario:`` branch of :func:`repro.runner.parallel.execute_spec`.

    Mirrors the plain path exactly — per-spec config overrides, the
    per-process trace memo (keyed like ``TraceSpec.cache_key``, so N
    platforms replaying one scenario in a worker build the mix once), the
    platform registry — and adds the policy install + attribution around
    ``platform.run``.
    """
    from ..platforms.registry import create_platform
    from ..runner.specs import apply_config_overrides

    scenario = parse_scenario_source(spec.workload)
    run_config = apply_config_overrides(config, spec.config_overrides)
    memo_key = (spec.workload, spec.dataset_bytes_override)
    trace = None if trace_cache is None else trace_cache.get(memo_key)
    if trace is None:
        trace = build_mixed_trace(scenario, scale)
        if trace_cache is not None:
            trace_cache[memo_key] = trace
    platform = create_platform(spec.platform, run_config,
                               **dict(spec.platform_kwargs))
    return _replay(scenario, platform, trace)


def scenario_run_spec(scenario: ScenarioSpec, platform: str, *,
                      label: Optional[str] = None,
                      config_overrides=None,
                      platform_kwargs=None):
    """A cache/executor-ready :class:`~repro.runner.specs.RunSpec` for
    replaying *scenario* on *platform*.

    The workload is the canonical ``scenario:`` source (content-addressed
    by :func:`~repro.runner.artifacts.run_cache_key`); the workload label
    is the scenario's name, so report tables print something readable.
    """
    from ..runner.specs import RunSpec  # lazy: keeps package import light

    return RunSpec(
        platform=platform,
        workload=scenario_source(scenario),
        config_overrides=dict(config_overrides or {}),
        platform_kwargs=dict(platform_kwargs or {}),
        label=label,
        workload_label=scenario.name,
    )
