"""Multi-tenant scenario engine: interleaved workloads on one platform.

Every figure the repository reproduces is a (one platform x one trace)
pair; the scenario layer is what turns the simulator toward the ROADMAP's
production-scale north star — mixed traffic from many tenants contending
for one platform's DRAM cache, flash channels and link bandwidth.

The subsystem has four parts:

* :mod:`repro.scenario.spec` — :class:`TenantSpec` / :class:`ScenarioSpec`,
  plain-data descriptions of a mix that serialise canonically and ride the
  existing :class:`~repro.runner.specs.RunSpec` machinery as
  ``scenario:<canonical-json>`` workload sources, so scenarios flow through
  the run cache, every executor tier, sharding and ``repro serve``
  unchanged;
* :mod:`repro.scenario.mix` — the deterministic issue-clock merge of N
  tenants' :class:`~repro.workloads.trace.AccessStream`s into one
  tenant-tagged columnar stream, streamed chunk-wise so mixes never
  materialise, with a chunking-invariant content hash;
* :mod:`repro.scenario.policy` — pluggable QoS policies (shared,
  per-tenant cache partitions, admission throttling, strict priority) and
  the fairness metrics (per-tenant slowdown, Jain's index);
* :mod:`repro.scenario.engine` — replay with per-tenant
  :class:`~repro.sim.stats.StatRegistry` attribution riding the batched
  replay observer hook, conserving exactly against the aggregate.
"""

from .engine import run_scenario, scenario_run_spec
from .mix import (
    MixedAccessStream,
    TenantAccessStream,
    build_mixed_trace,
    mix_content_hash,
    tenant_projection,
)
from .policy import POLICY_NAMES, jains_index
from .spec import (
    ARRIVAL_MODELS,
    SCENARIO_SOURCE_PREFIX,
    ScenarioSpec,
    TenantSpec,
    is_scenario_source,
    parse_scenario_source,
    scenario_source,
    scenario_spec_length,
)

__all__ = [
    "ARRIVAL_MODELS",
    "MixedAccessStream",
    "POLICY_NAMES",
    "SCENARIO_SOURCE_PREFIX",
    "ScenarioSpec",
    "TenantAccessStream",
    "TenantSpec",
    "build_mixed_trace",
    "is_scenario_source",
    "jains_index",
    "mix_content_hash",
    "parse_scenario_source",
    "run_scenario",
    "scenario_run_spec",
    "scenario_source",
    "scenario_spec_length",
    "tenant_projection",
]
