"""QoS policies and fairness metrics for multi-tenant scenarios.

Four policies ship; they split into two mechanically different families:

* **Arrival-shaping** policies change *when* accesses issue, i.e. the
  merge order itself: ``throttle`` clamps per-tenant issue rates to
  admission limits (``policy_params["limits"]``, name -> max rate) and
  ``priority`` reorders accesses within unit clock windows by descending
  :attr:`~repro.scenario.spec.TenantSpec.priority`.  Both live in
  :mod:`repro.scenario.mix` — by the time the platform sees the stream,
  the policy has already happened.
* **Platform-shaping** policies change what the shared hardware does:
  ``cache-partition`` replaces each of the platform's LRU page caches
  (:meth:`~repro.platforms.base.Platform.page_caches`) with a
  :class:`PartitionedPageCache` giving every tenant a private LRU over its
  share of the capacity — cross-tenant eviction pollution becomes
  structurally impossible.  ``shared`` is the null policy: one cache,
  contention measured, nothing enforced.

Fairness is quantified the standard way: per-tenant *slowdown* (mean
memory-stall per access in the mix over the same tenant's solo run) and
Jain's fairness index over the reciprocal slowdowns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..host.os_stack import (
    InstallPolicy,
    PageCache,
    PageCacheBatchResult,
)

#: Every policy a :class:`~repro.scenario.spec.ScenarioSpec` may name.
POLICY_NAMES = ("shared", "cache-partition", "throttle", "priority")


class PartitionedPageCache(PageCache):
    """An LRU page cache statically partitioned between tenants.

    Each tenant owns a private :class:`PageCache` over its share of the
    capacity (equal split by default; ``policy_params["shares"]`` maps
    tenant name -> fractional share).  The batched walk splits each batch
    into maximal same-tenant runs and delegates every run to that tenant's
    partition, so residency, LRU order and the eviction schedule are
    exactly what N independent caches would produce — one tenant's misses
    can never evict another tenant's pages.

    Install policies route through the partition of the tenant whose miss
    is being serviced (tracked across the delegated walk), which keeps the
    migration platforms' chunk installs working unchanged.  The scalar
    :meth:`access` path has no tenant tag to route by and raises — the
    scenario engine only drives the batched path.
    """

    def __init__(self, capacity_bytes: int, page_size: int,
                 fractions: Sequence[float]) -> None:
        super().__init__(capacity_bytes, page_size)
        if not fractions:
            raise ValueError("at least one tenant fraction required")
        if any(fraction < 0 for fraction in fractions):
            raise ValueError("tenant fractions cannot be negative")
        total = sum(fractions)
        if not total > 0:
            raise ValueError("tenant fractions must sum to a positive value")
        self.partitions: List[PageCache] = [
            PageCache(int(capacity_bytes * fraction / total), page_size)
            for fraction in fractions
        ]
        self._active: Optional[int] = None

    @classmethod
    def wrap(cls, shared: PageCache,
             fractions: Sequence[float]) -> "PartitionedPageCache":
        """Partition a platform's existing cache, preserving its geometry."""
        return cls(shared.capacity_pages * shared.page_size,
                   shared.page_size, fractions)

    # -- delegation --------------------------------------------------------------

    def __contains__(self, page_number: int) -> bool:
        return any(page_number in partition
                   for partition in self.partitions)

    def __len__(self) -> int:
        return sum(len(partition) for partition in self.partitions)

    def access(self, page_number: int, is_write: bool) -> bool:
        raise RuntimeError(
            "PartitionedPageCache has no tenant tag on the scalar path; "
            "scenario replay is batched-only")

    def install(self, page_number: int, dirty: bool = False):
        active = self._active
        if active is None:
            raise RuntimeError(
                "PartitionedPageCache.install outside a tenant-tagged "
                "batched walk")
        return self.partitions[active].install(page_number, dirty=dirty)

    def access_batch(self, pages, writes,
                     install: Optional[InstallPolicy] = None,
                     tenants: Optional[np.ndarray] = None
                     ) -> PageCacheBatchResult:
        pages = np.ascontiguousarray(pages, dtype=np.int64)
        writes = np.asarray(writes, dtype=bool)
        count = len(pages)
        if tenants is None:
            raise RuntimeError(
                "PartitionedPageCache requires a tenant-tagged batch")
        tenants = np.ascontiguousarray(tenants, dtype=np.int64)
        if not (len(writes) == len(tenants) == count):
            raise ValueError("batch columns must be equal-length")
        hits = np.ones(count, dtype=bool)
        miss_parts: List[np.ndarray] = []
        evictions: List[List] = []
        if count:
            change = np.flatnonzero(tenants[1:] != tenants[:-1]) + 1
            starts = np.concatenate((np.zeros(1, dtype=np.int64), change))
            ends = np.concatenate(
                (change, np.asarray([count], dtype=np.int64)))
            for start, end in zip(starts.tolist(), ends.tolist()):
                tenant = int(tenants[start])
                self._active = tenant
                walk = self.partitions[tenant].access_batch(
                    pages[start:end], writes[start:end], install=install,
                    tenants=tenants[start:end])
                self._active = None
                hits[start:end] = walk.hits
                if len(walk.miss_indices):
                    miss_parts.append(walk.miss_indices + start)
                evictions.extend(walk.evictions)
        miss_indices = (np.concatenate(miss_parts) if miss_parts
                        else np.empty(0, dtype=np.int64))
        self.hits += count - len(miss_indices)
        self.misses += len(miss_indices)
        return PageCacheBatchResult(hits=hits, miss_indices=miss_indices,
                                    evictions=evictions)

    def enable_tenant_tracking(self, tenant_count: int) -> None:
        if tenant_count != len(self.partitions):
            raise ValueError(
                f"partition count {len(self.partitions)} does not match "
                f"tenant count {tenant_count}")
        self._track_tenants = True
        for partition in self.partitions:
            partition.enable_tenant_tracking(tenant_count)

    def tenant_statistics(self) -> Dict[int, Dict[str, int]]:
        """Per-tenant counters summed over the partitions.

        Cross-tenant evictions are structurally zero here: every install
        happens inside the installing tenant's private partition.
        """
        merged: Dict[int, Dict[str, int]] = {}
        for partition in self.partitions:
            for tenant, counters in partition.tenant_statistics().items():
                into = merged.setdefault(
                    tenant, {key: 0 for key in counters})
                for key, value in counters.items():
                    into[key] += value
        return merged

    def statistics(self, prefix: str = "page_cache") -> Dict[str, float]:
        # hits/misses are maintained on the wrapper; writebacks happen
        # inside the partitions' install calls.
        self.dirty_writebacks = sum(partition.dirty_writebacks
                                    for partition in self.partitions)
        return super().statistics(prefix)

    def resident_pages(self) -> List[int]:
        resident: List[int] = []
        for partition in self.partitions:
            resident.extend(partition.resident_pages())
        return resident

    def clean(self, page_number: int) -> None:
        for partition in self.partitions:
            partition.clean(page_number)

    def dirty_pages(self) -> List[int]:
        dirty: List[int] = []
        for partition in self.partitions:
            dirty.extend(partition.dirty_pages())
        return dirty


def partition_fractions(spec) -> List[float]:
    """Per-tenant capacity shares of a ``cache-partition`` scenario.

    ``policy_params["shares"]`` maps tenant names to fractional shares
    (normalised, so any positive weights work); unnamed tenants share the
    remainder equally — with no shares at all, the split is equal.
    """
    names = spec.tenant_names()
    shares = dict(spec.policy_params.get("shares", {}))
    unknown = sorted(set(shares) - set(names))
    if unknown:
        raise ValueError(
            f"cache-partition shares name unknown tenants {unknown}; "
            f"tenants are {names}")
    return [float(shares.get(name, 1.0)) for name in names]


def install_policy(platform, spec, tenant_count: int) -> List[str]:
    """Apply *spec*'s platform-shaping policy to a live *platform*.

    Enables tenant tracking on every partitionable page cache and — for
    ``cache-partition`` — swaps each one for a :class:`PartitionedPageCache`
    honouring the spec's shares.  Returns the attribute names touched, so
    the engine knows where to harvest per-tenant counters afterwards.
    Arrival-shaping policies (throttle, priority) were already applied by
    the merge and need nothing here.
    """
    cache_names = list(platform.page_caches())
    if spec.policy == "cache-partition":
        if not cache_names:
            raise ValueError(
                f"platform {platform.name!r} has no partitionable page "
                f"cache; the cache-partition policy applies to the "
                f"DRAM-cache platforms (nvdimm-C, optane-M, "
                f"bypass-ull-buff)")
        fractions = partition_fractions(spec)
        for name in cache_names:
            shared = getattr(platform, name)
            setattr(platform, name,
                    PartitionedPageCache.wrap(shared, fractions))
    for name in cache_names:
        getattr(platform, name).enable_tenant_tracking(tenant_count)
    return cache_names


# ---------------------------------------------------------------------------
# Fairness metrics
# ---------------------------------------------------------------------------


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``, in (0, 1].

    1.0 means perfectly equal *values*; ``1/n`` means one tenant takes
    everything.  The scenario report feeds it reciprocal slowdowns, so
    "fair" means every tenant is slowed equally by the mix.
    """
    data = [float(value) for value in values]
    if not data:
        return 1.0
    square_of_sum = sum(data) ** 2
    sum_of_squares = sum(value * value for value in data)
    if sum_of_squares == 0:
        return 1.0
    return square_of_sum / (len(data) * sum_of_squares)


def tenant_slowdowns(mixed_tenants: Dict[str, Dict[str, float]],
                     solo_results: Dict[str, "object"]
                     ) -> Dict[str, float]:
    """Per-tenant slowdown: mixed mean stall per access over solo.

    *mixed_tenants* is a scenario RunResult's ``tenants`` payload;
    *solo_results* maps tenant name -> the tenant's solo
    :class:`~repro.platforms.base.RunResult`.  Tenants whose solo run had
    no memory stall report a slowdown of 1.0 (nothing to slow down).
    """
    slowdowns: Dict[str, float] = {}
    for name, solo in solo_results.items():
        mixed = mixed_tenants.get(name)
        if mixed is None:
            continue
        accesses = mixed.get("accesses", 0.0)
        mixed_stall = (mixed.get("stall_ns", 0.0) / accesses
                       if accesses else 0.0)
        solo_stall = (solo.memory_stall_ns / solo.memory_accesses
                      if solo.memory_accesses else 0.0)
        slowdowns[name] = mixed_stall / solo_stall if solo_stall else 1.0
    return slowdowns
