"""``python -m repro scenario`` — run, plan and report tenant mixes.

Verbs
-----

``scenario run --platform P (--spec FILE | --tenant T ...)``
    Replay the mix on one platform and print the per-tenant breakdown
    (accesses, off-chip traffic, stall time, service latency, page-cache
    hits/misses and eviction pollution where a policy cache exists) plus
    the aggregate row the conservation gate checks against.

``scenario plan (--spec FILE | --tenant T ...)``
    Print what a run *would* do without building a single stream: the
    tenant table (workload, weight, rate, phase, priority, exact stream
    length), the total merged accesses — the number cost-balanced shard
    planning uses — and the content-addressed mix identity.

``scenario report --platform P (--spec FILE | --tenant T ...)``
    Run every tenant solo, then the mix, and print the contention study:
    per-tenant slowdown (mean stall per access, mixed over solo) and
    Jain's fairness index over the reciprocal slowdowns.  Re-run with a
    different ``--policy`` to see what a QoS knob buys each tenant.

Tenants come from a JSON ``--spec`` file (the
:meth:`~repro.scenario.spec.ScenarioSpec.from_dict` shape, full control)
or from repeated ``--tenant WORKLOAD[=NAME][@WEIGHT]`` tokens — e.g.
``--tenant seqRd=reader@2 --tenant updRand`` — with ``--arrival``,
``--policy`` and ``--policy-params`` shaping the whole mix.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Mapping

from ..analysis.reporting import format_table
from .policy import POLICY_NAMES, jains_index, tenant_slowdowns
from .spec import (
    ARRIVAL_MODELS,
    ScenarioSpec,
    TenantSpec,
    scenario_spec_length,
    tenant_stream_length,
)


def register(subparsers) -> None:
    """Attach the ``scenario`` verb tree to the main ``repro`` parser."""
    # Late import: runner.cli imports this module from build_parser(), so
    # the scale-knob helpers must be looked up at registration time.
    from ..runner.cli import _add_scale_arguments

    scenario = subparsers.add_parser(
        "scenario",
        help="multi-tenant interleaved-workload scenarios with QoS "
             "policies and per-tenant attribution")
    scenario_sub = scenario.add_subparsers(dest="scenario_command",
                                           required=True)

    run = scenario_sub.add_parser(
        "run", help="replay a tenant mix and print the per-tenant "
                    "breakdown")
    _add_spec_arguments(run)
    run.add_argument("--platform", required=True, metavar="PLATFORM",
                     help="platform registry name to replay the mix on")
    run.add_argument("--cache-dir", type=Path, default=None,
                     help="content-addressed run cache directory "
                          "(default: no cache)")
    _add_scale_arguments(run)
    run.set_defaults(handler=cmd_scenario_run)

    plan = scenario_sub.add_parser(
        "plan", help="show tenant streams, merged length and mix identity "
                     "without running anything")
    _add_spec_arguments(plan)
    _add_scale_arguments(plan)
    plan.set_defaults(handler=cmd_scenario_plan)

    report = scenario_sub.add_parser(
        "report", help="solo-vs-mixed contention study: per-tenant "
                       "slowdown and Jain's fairness index")
    _add_spec_arguments(report)
    report.add_argument("--platform", required=True, metavar="PLATFORM",
                        help="platform registry name for solo and mixed "
                             "runs")
    report.add_argument("--cache-dir", type=Path, default=None,
                        help="content-addressed run cache directory "
                             "(default: no cache)")
    _add_scale_arguments(report)
    report.set_defaults(handler=cmd_scenario_report)


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--spec", type=Path, default=None, metavar="FILE",
                        help="JSON scenario spec file (full control: "
                             "per-tenant rates, phases, priorities, "
                             "dataset overrides)")
    parser.add_argument("--tenant", action="append", default=None,
                        metavar="WORKLOAD[=NAME][@WEIGHT]",
                        help="add one tenant (repeatable); WORKLOAD is a "
                             "Table III name or trace:<path>")
    parser.add_argument("--name", default="mix",
                        help="scenario name for --tenant mixes "
                             "(default: mix)")
    parser.add_argument("--arrival", choices=ARRIVAL_MODELS,
                        default="interleave",
                        help="how tenant streams merge onto the issue "
                             "clock (default: interleave)")
    parser.add_argument("--rates", default=None, metavar="R1,R2,...",
                        help="per-tenant issue rates for --arrival rate, "
                             "positional over the --tenant list")
    parser.add_argument("--policy", choices=POLICY_NAMES, default="shared",
                        help="QoS policy evaluated during replay "
                             "(default: shared)")
    parser.add_argument("--policy-params", default=None, metavar="JSON",
                        help="policy parameters as a JSON object, e.g. "
                             "'{\"limits\": {\"reader\": 0.5}}' or "
                             "'{\"shares\": {\"reader\": 3}}'")


def _parse_tenant_token(token: str) -> TenantSpec:
    """``WORKLOAD[=NAME][@WEIGHT]`` -> a TenantSpec.

    The weight suffix is split first so trace paths containing ``=`` stay
    intact; the name is everything after the first ``=`` of the rest.
    """
    body, sep, weight_text = token.rpartition("@")
    if not sep:
        body, weight_text = token, ""
    workload, _, name = body.partition("=")
    kwargs = {}
    if weight_text:
        try:
            kwargs["weight"] = int(weight_text)
        except ValueError:
            raise ValueError(
                f"tenant weight must be an integer, got {weight_text!r} "
                f"in {token!r}") from None
    return TenantSpec(workload=workload, name=name or None, **kwargs)


def _build_spec(args: argparse.Namespace) -> ScenarioSpec:
    """The scenario a command describes: a --spec file or --tenant tokens."""
    if args.spec is not None and args.tenant:
        raise ValueError("give --spec or --tenant tokens, not both")
    if args.spec is not None:
        payload = json.loads(args.spec.read_text(encoding="utf-8"))
        return ScenarioSpec.from_dict(payload)
    if not args.tenant:
        raise ValueError("describe the mix: --spec FILE or repeated "
                         "--tenant WORKLOAD[=NAME][@WEIGHT]")
    tenants = [_parse_tenant_token(token) for token in args.tenant]
    if args.rates is not None:
        rates = [float(rate) for rate in args.rates.split(",")]
        if len(rates) != len(tenants):
            raise ValueError(
                f"--rates names {len(rates)} rate(s) for "
                f"{len(tenants)} tenant(s)")
        tenants = [TenantSpec(**{**_tenant_kwargs(tenant), "rate": rate})
                   for tenant, rate in zip(tenants, rates)]
    policy_params = (json.loads(args.policy_params)
                     if args.policy_params else {})
    return ScenarioSpec(name=args.name, tenants=tuple(tenants),
                        arrival=args.arrival, policy=args.policy,
                        policy_params=policy_params)


def _tenant_kwargs(tenant: TenantSpec) -> Dict[str, object]:
    return {field: value for field, value in tenant.canonical().items()
            if value is not None}


def _session(args: argparse.Namespace):
    from ..api import Session  # lazy: keeps `repro scenario -h` fast
    from ..runner.cli import _build_scale

    return Session(scale=_build_scale(args), workers=1,
                   cache_dir=args.cache_dir)


def _tenant_breakdown(tenants: Mapping[str, Mapping[str, float]],
                      title: str) -> str:
    """The per-tenant table of a scenario RunResult's ``tenants`` payload."""
    have_cache = any("cache_hits" in stats or "cache_misses" in stats
                     for stats in tenants.values())
    rows: Dict[str, Dict[str, float]] = {}
    for name, stats in tenants.items():
        row = {
            "accesses": stats.get("accesses", 0.0),
            "offchip": stats.get("offchip", 0.0),
            "MB moved": stats.get("bytes", 0.0) / 1e6,
            "stall ms": stats.get("stall_ns", 0.0) / 1e6,
            "svc us": stats.get("service_ns.mean_ns", 0.0) / 1e3,
        }
        if have_cache:
            row["cache hits"] = stats.get("cache_hits", 0.0)
            row["cache misses"] = stats.get("cache_misses", 0.0)
            row["evicted by others"] = stats.get("evictions_suffered", 0.0)
        rows[name] = row
    return format_table(rows, title=title, float_format="{:.1f}",
                        row_header="tenant")


def cmd_scenario_run(args: argparse.Namespace) -> int:
    try:
        spec = _build_spec(args)
    except (ValueError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    session = _session(args)
    try:
        result = session.scenario(spec, args.platform)
    except (ValueError, AssertionError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(_tenant_breakdown(
        result.tenants,
        title=f"{spec.name} on {args.platform} "
              f"({spec.arrival} arrival, {spec.policy} policy)"))
    print()
    print(f"{spec.name}: {result.memory_accesses} accesses "
          f"({result.offchip_accesses} off-chip), "
          f"{result.operations_per_second:.0f} ops/s, "
          f"{len(spec.tenants)} tenant(s)")
    return 0


def cmd_scenario_plan(args: argparse.Namespace) -> int:
    from ..runner.artifacts import scale_to_dict
    from ..runner.cli import _build_scale

    try:
        spec = _build_spec(args)
    except (ValueError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    scale = _build_scale(args)
    names = spec.tenant_names()
    try:
        lengths = [tenant_stream_length(tenant, scale)
                   for tenant in spec.tenants]
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = {
        name: {
            "weight": float(tenant.weight),
            "rate": tenant.rate,
            "phase": tenant.phase,
            "priority": float(tenant.priority),
            "accesses": float(length),
        }
        for name, tenant, length in zip(names, spec.tenants, lengths)
    }
    print(format_table(
        rows, title=f"{spec.name}: {spec.arrival} arrival, "
                    f"{spec.policy} policy",
        float_format="{:.2f}", row_header="tenant"))
    print()
    for name, tenant in zip(names, spec.tenants):
        print(f"  {name}: {tenant.workload}")
    print()
    print(f"merged accesses: {scenario_spec_length(spec, scale)}")
    print(f"mix identity:    {spec.identity(scale_to_dict(scale))}")
    return 0


def cmd_scenario_report(args: argparse.Namespace) -> int:
    try:
        spec = _build_spec(args)
    except (ValueError, OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    session = _session(args)
    names = spec.tenant_names()
    try:
        solo = {
            name: session.simulate(
                args.platform, tenant.workload,
                dataset_bytes_override=tenant.dataset_bytes_override)
            for name, tenant in zip(names, spec.tenants)
        }
        mixed = session.scenario(spec, args.platform)
    except (ValueError, AssertionError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    slowdowns = tenant_slowdowns(mixed.tenants, solo)
    rows = {
        name: {
            "solo stall ns/acc":
                (solo[name].memory_stall_ns / solo[name].memory_accesses
                 if solo[name].memory_accesses else 0.0),
            "mixed stall ns/acc":
                (mixed.tenants[name].get("stall_ns", 0.0)
                 / mixed.tenants[name]["accesses"]
                 if mixed.tenants[name].get("accesses") else 0.0),
            "slowdown": slowdowns.get(name, 1.0),
        }
        for name in names
    }
    print(_tenant_breakdown(
        mixed.tenants,
        title=f"{spec.name} on {args.platform} "
              f"({spec.arrival} arrival, {spec.policy} policy)"))
    print()
    print(format_table(
        rows, title=f"{spec.name}: contention (mixed vs solo)",
        float_format="{:.3f}", row_header="tenant"))
    fairness = jains_index([
        1.0 / slowdown if slowdown else 1.0
        for slowdown in slowdowns.values()])
    print()
    print(f"Jain fairness index (reciprocal slowdowns): {fairness:.4f}")
    return 0
