"""DDR4 DRAM device timing model.

The model exposes the two access costs the evaluation depends on:

* fine-grained (cache-line, 64 B) accesses dominated by tRCD + tCL + tBURST,
* bulk page accesses (4 KB and larger) dominated by the burst bandwidth of
  the channel — the paper quotes ~2.4 us for a 4 KB access on DDR4-2133 and
  a ~20 GB/s per-channel peak.

Row-buffer locality is modelled with a configurable hit probability rather
than a full bank state machine; the figures reproduced here are insensitive
to bank-level detail but do depend on the line-vs-page latency gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..config import DDRConfig
from ..numerics import sequential_add


@dataclass
class DRAMAccessResult:
    """Latency of one DRAM access."""

    latency_ns: float
    bytes_accessed: int
    row_hit: bool


class DRAMDevice:
    """A DDR4 DRAM rank set behind one memory channel."""

    def __init__(self, config: DDRConfig, capacity_bytes: int,
                 row_hit_rate: float = 0.6) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= row_hit_rate <= 1.0:
            raise ValueError("row_hit_rate must be within [0, 1]")
        self.config = config
        self.capacity_bytes = capacity_bytes
        self.row_hit_rate = row_hit_rate
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_ns = 0.0

    # -- latency building blocks ---------------------------------------------------

    def line_access_ns(self, row_hit: bool = True) -> float:
        """Latency of one 64 B cache-line access."""
        config = self.config
        if row_hit:
            return config.tCL_ns + config.tBURST_ns
        return config.tRP_ns + config.tRCD_ns + config.tCL_ns + config.tBURST_ns

    def expected_line_access_ns(self) -> float:
        """Line access latency averaged over the row-hit probability."""
        hit = self.line_access_ns(row_hit=True)
        miss = self.line_access_ns(row_hit=False)
        return self.row_hit_rate * hit + (1.0 - self.row_hit_rate) * miss

    def bulk_access_ns(self, size_bytes: int) -> float:
        """Latency of a bulk transfer of *size_bytes* (page fill/evict)."""
        if size_bytes <= 0:
            raise ValueError("size must be positive")
        lines = max(1, size_bytes // self.config.line_size)
        activation = self.config.tRCD_ns + self.config.tCL_ns
        burst = size_bytes / self.config.channel_bw_bytes_per_ns
        # Consecutive lines of a page stream out of the row buffer, so the
        # activation cost is paid once per row (64 lines per 4 KB row here).
        rows = max(1, lines * self.config.line_size // 4096)
        return rows * activation + burst

    # -- recorded accesses -----------------------------------------------------------

    def access(self, size_bytes: int, is_write: bool,
               row_hit: bool | None = None) -> DRAMAccessResult:
        """Perform an access and record traffic statistics."""
        if row_hit is None:
            row_hit = True
        if size_bytes <= self.config.line_size:
            latency = self.line_access_ns(row_hit)
        else:
            latency = self.bulk_access_ns(size_bytes)
        if is_write:
            self.writes += 1
            self.bytes_written += size_bytes
        else:
            self.reads += 1
            self.bytes_read += size_bytes
        self.busy_ns += latency
        return DRAMAccessResult(latency_ns=latency, bytes_accessed=size_bytes,
                                row_hit=row_hit)

    def access_batch(self, sizes: np.ndarray,
                     writes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`access`: one latency per (size, write) row.

        Latency is a pure function of the access size (row hits assumed, as
        in the scalar default), so the per-access latencies are filled per
        unique size; the traffic counters and ``busy_ns`` are updated exactly
        as the equivalent scalar sequence would update them (``busy_ns`` via
        bit-exact sequential accumulation).
        """
        sizes = np.asarray(sizes, dtype=np.int64)
        writes = np.asarray(writes, dtype=bool)
        latency = np.empty(len(sizes), dtype=np.float64)
        for size in np.unique(sizes):
            size = int(size)
            if size <= self.config.line_size:
                cost = self.line_access_ns(True)
            else:
                cost = self.bulk_access_ns(size)
            latency[sizes == size] = cost
        write_count = int(np.count_nonzero(writes))
        self.writes += write_count
        self.reads += len(sizes) - write_count
        self.bytes_written += int(sizes[writes].sum())
        self.bytes_read += int(sizes[~writes].sum())
        self.busy_ns = sequential_add(self.busy_ns, latency)
        return latency

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    def statistics(self) -> Dict[str, float]:
        return {
            "reads": float(self.reads),
            "writes": float(self.writes),
            "bytes_read": float(self.bytes_read),
            "bytes_written": float(self.bytes_written),
            "busy_ns": self.busy_ns,
        }
