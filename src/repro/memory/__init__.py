"""Memory-device substrate: DDR4 DRAM, NVDIMM-N, Optane DC PMM, and the MCH."""

from .dram import DRAMDevice
from .nvdimm import NVDIMM, NVDIMMState
from .optane import OptaneDCPMM
from .mch import MemoryControllerHub

__all__ = [
    "DRAMDevice",
    "NVDIMM",
    "NVDIMMState",
    "OptaneDCPMM",
    "MemoryControllerHub",
]
