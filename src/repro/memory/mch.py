"""Memory controller hub (MCH).

The MCH is where HAMS lives (Figure 8): it hosts the DDR4 memory controller
for the NVDIMM, the PCIe root complex for storage, and — in the HAMS designs
— the address manager, MoS cache logic and hardware NVMe engine.  The class
here is a thin composition root that owns the device objects and the links
between them, so platforms can be assembled declaratively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..config import SystemConfig
from ..flash.ssd import SSD
from ..interconnect.ddr_bus import DDR4Bus
from ..interconnect.pcie import PCIeLink
from ..interconnect.sata import SATALink
from .nvdimm import NVDIMM


@dataclass
class MemoryControllerHub:
    """Device composition for one simulated system."""

    nvdimm: NVDIMM
    ssd: Optional[SSD]
    pcie: Optional[PCIeLink]
    ddr_bus: DDR4Bus
    sata: Optional[SATALink] = None

    @staticmethod
    def build(config: SystemConfig, ssd: Optional[SSD] = None,
              attach_ssd_to_ddr: bool = False) -> "MemoryControllerHub":
        """Assemble an MCH from a :class:`~repro.config.SystemConfig`.

        ``attach_ssd_to_ddr`` selects the advanced-HAMS topology in which the
        ULL-Flash sits on the DDR4 bus; otherwise the SSD (if any) is reached
        through the PCIe root complex.
        """
        nvdimm = NVDIMM(config.nvdimm)
        ddr_bus = DDR4Bus(config.nvdimm.ddr)
        pcie = None if attach_ssd_to_ddr else PCIeLink(config.pcie)
        sata = SATALink(config.sata)
        return MemoryControllerHub(nvdimm=nvdimm, ssd=ssd, pcie=pcie,
                                   ddr_bus=ddr_bus, sata=sata)

    @property
    def storage_link(self):
        """The link data takes between the MCH and the SSD."""
        return self.pcie if self.pcie is not None else self.ddr_bus

    def statistics(self) -> Dict[str, float]:
        stats: Dict[str, float] = {}
        stats.update({f"nvdimm.{k}": v for k, v in self.nvdimm.statistics().items()})
        if self.ssd is not None:
            stats.update({f"ssd.{k}": v for k, v in self.ssd.statistics().items()})
        if self.pcie is not None:
            stats.update({f"pcie.{k}": v for k, v in self.pcie.statistics().items()})
        stats.update({f"ddr_bus.{k}": v
                      for k, v in self.ddr_bus.statistics().items()})
        return stats
