"""NVDIMM-N module model.

An NVDIMM-N is DRAM plus a same-capacity backup flash, a supercapacitor and
multiplexers (Section II-A): the host sees plain DRAM latency, and on a power
failure the on-board controller isolates the DRAM from the bus and migrates
its contents to the backup flash (taking tens of seconds), restoring them on
the next boot.  The model tracks that state machine plus the *pinned region*
HAMS reserves for NVMe data structures, and delegates access timing to the
underlying :class:`~repro.memory.dram.DRAMDevice`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

from ..config import NVDIMMConfig
from ..units import transfer_time_ns
from .dram import DRAMAccessResult, DRAMDevice


class NVDIMMState(Enum):
    """Operating state of the NVDIMM-N controller."""

    ONLINE = "online"
    BACKING_UP = "backing-up"
    OFFLINE = "offline"
    RESTORING = "restoring"


class NVDIMM:
    """A single NVDIMM-N module on a DDR4 channel."""

    def __init__(self, config: NVDIMMConfig) -> None:
        self.config = config
        self.dram = DRAMDevice(config.ddr, config.capacity_bytes)
        self.state = NVDIMMState.ONLINE
        self.backups_performed = 0
        self.restores_performed = 0
        self.last_backup_duration_ns = 0.0
        self.last_restore_duration_ns = 0.0

    # -- capacity layout ---------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.config.capacity_bytes

    @property
    def pinned_region_bytes(self) -> int:
        return self.config.pinned_region_bytes

    @property
    def cacheable_bytes(self) -> int:
        """Bytes available to the MoS cache (capacity minus the pinned region)."""
        return self.config.cacheable_bytes

    def pinned_region_base(self) -> int:
        """The pinned region occupies the top of the module's address range."""
        return self.capacity_bytes - self.pinned_region_bytes

    def is_pinned_address(self, offset: int) -> bool:
        """True when *offset* falls inside the MMU-invisible pinned region."""
        if offset < 0 or offset >= self.capacity_bytes:
            raise ValueError(f"offset {offset} outside the module")
        return offset >= self.pinned_region_base()

    # -- accesses ---------------------------------------------------------------

    def access(self, size_bytes: int, is_write: bool) -> DRAMAccessResult:
        """DRAM-speed access; only legal while the module is online."""
        if self.state is not NVDIMMState.ONLINE:
            raise RuntimeError(
                f"NVDIMM access while {self.state.value}; the multiplexers "
                "isolate the DRAM during backup/restore")
        return self.dram.access(size_bytes, is_write)

    def access_batch(self, sizes, writes):
        """Vectorized :meth:`access` over whole request columns.

        Returns the per-access latency array; counters end up exactly as the
        equivalent scalar access sequence would leave them (see
        :meth:`~repro.memory.dram.DRAMDevice.access_batch`).
        """
        if self.state is not NVDIMMState.ONLINE:
            raise RuntimeError(
                f"NVDIMM access while {self.state.value}; the multiplexers "
                "isolate the DRAM during backup/restore")
        return self.dram.access_batch(sizes, writes)

    def line_access_ns(self) -> float:
        return self.dram.expected_line_access_ns()

    def page_access_ns(self, page_bytes: int) -> float:
        return self.dram.bulk_access_ns(page_bytes)

    # -- power failure -------------------------------------------------------------

    def power_failure(self, dirty_bytes: Optional[int] = None) -> float:
        """Begin a supercap-powered backup of DRAM contents to the backup flash.

        Returns the backup duration.  *dirty_bytes* defaults to the whole
        module (the NVDIMM controller has no dirty tracking).
        """
        if self.state is not NVDIMMState.ONLINE:
            raise RuntimeError("power failure while not online")
        to_save = self.capacity_bytes if dirty_bytes is None else dirty_bytes
        duration = transfer_time_ns(to_save,
                                    self.config.backup_bandwidth_bytes_per_ns)
        self.state = NVDIMMState.BACKING_UP
        self.last_backup_duration_ns = duration
        self.backups_performed += 1
        self.state = NVDIMMState.OFFLINE
        return duration

    def power_restore(self) -> float:
        """Restore DRAM contents from the backup flash on the next boot."""
        if self.state is not NVDIMMState.OFFLINE:
            raise RuntimeError("restore is only possible from the offline state")
        self.state = NVDIMMState.RESTORING
        duration = transfer_time_ns(self.capacity_bytes,
                                    self.config.restore_bandwidth_bytes_per_ns)
        self.last_restore_duration_ns = duration
        self.restores_performed += 1
        self.state = NVDIMMState.ONLINE
        return duration

    # -- reporting -------------------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        stats = {f"dram_{key}": value
                 for key, value in self.dram.statistics().items()}
        stats.update({
            "backups": float(self.backups_performed),
            "restores": float(self.restores_performed),
            "last_backup_ns": self.last_backup_duration_ns,
        })
        return stats
