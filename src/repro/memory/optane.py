"""Optane DC PMM analytical model (the ``optane-P`` / ``optane-M`` baselines).

The model follows the published measurements the paper cites ([29], [66]):

* read latency ~305 ns, write latency ~94 ns to the XPBuffer,
* an internal 256 B access granularity — a 64 B store still moves a full
  256 B block internally, wasting bandwidth for fine-grained accesses
  (the effect that hurts Optane on SQLite/Rodinia in Figure 16),
* a small (16 KB) XPBuffer that absorbs write bursts; once it saturates,
  writes see the media bandwidth,
* App Direct mode (``optane-P``): every request goes to the media —
  persistent but slow,
* Memory mode (``optane-M``): a DRAM cache in front of the media — faster
  but not persistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import OptaneConfig


@dataclass
class OptaneAccessResult:
    """Latency and internal traffic of one Optane access."""

    latency_ns: float
    internal_bytes: int
    hit_xpbuffer: bool


class OptaneDCPMM:
    """A single Optane DC PMM DIMM in App Direct mode."""

    def __init__(self, config: OptaneConfig) -> None:
        self.config = config
        self.reads = 0
        self.writes = 0
        self.bytes_requested = 0
        self.bytes_internal = 0
        self._xpbuffer_occupancy = 0

    @property
    def capacity_bytes(self) -> int:
        return self.config.capacity_bytes

    def _internal_size(self, size_bytes: int) -> int:
        """Round a request up to the 256 B internal block granularity."""
        block = self.config.internal_block_bytes
        blocks = (size_bytes + block - 1) // block
        return blocks * block

    def read(self, size_bytes: int) -> OptaneAccessResult:
        """A load served from the 3D XPoint media."""
        if size_bytes <= 0:
            raise ValueError("size must be positive")
        internal = self._internal_size(size_bytes)
        blocks = internal // self.config.internal_block_bytes
        latency = (self.config.read_latency_ns
                   + (blocks - 1) * self.config.block_overhead_ns
                   + internal / self.config.read_bw_bytes_per_ns)
        self.reads += 1
        self.bytes_requested += size_bytes
        self.bytes_internal += internal
        return OptaneAccessResult(latency_ns=latency, internal_bytes=internal,
                                  hit_xpbuffer=False)

    def write(self, size_bytes: int) -> OptaneAccessResult:
        """A store absorbed by the XPBuffer when it has room.

        Once the small write buffer fills, stores are throttled to the media
        write bandwidth (the "long PRAM write latency" discussed in
        Section VII).
        """
        if size_bytes <= 0:
            raise ValueError("size must be positive")
        internal = self._internal_size(size_bytes)
        blocks = internal // self.config.internal_block_bytes
        hit_buffer = (self._xpbuffer_occupancy + internal
                      <= self.config.xpbuffer_bytes)
        if hit_buffer:
            self._xpbuffer_occupancy += internal
            latency = self.config.write_latency_ns
        else:
            # Draining the buffer exposes the media bandwidth.
            latency = (self.config.write_latency_ns
                       + (blocks - 1) * self.config.block_overhead_ns
                       + internal / self.config.write_bw_bytes_per_ns)
            self._xpbuffer_occupancy = max(
                0, self._xpbuffer_occupancy - self.config.xpbuffer_bytes // 2)
        self.writes += 1
        self.bytes_requested += size_bytes
        self.bytes_internal += internal
        return OptaneAccessResult(latency_ns=latency, internal_bytes=internal,
                                  hit_xpbuffer=hit_buffer)

    @property
    def bandwidth_waste_ratio(self) -> float:
        """Internal traffic divided by requested traffic (>= 1)."""
        if self.bytes_requested == 0:
            return 1.0
        return self.bytes_internal / self.bytes_requested

    def statistics(self) -> Dict[str, float]:
        return {
            "reads": float(self.reads),
            "writes": float(self.writes),
            "bytes_requested": float(self.bytes_requested),
            "bytes_internal": float(self.bytes_internal),
            "bandwidth_waste_ratio": self.bandwidth_waste_ratio,
        }
