"""Optane DC PMM analytical model (the ``optane-P`` / ``optane-M`` baselines).

The model follows the published measurements the paper cites ([29], [66]):

* read latency ~305 ns, write latency ~94 ns to the XPBuffer,
* an internal 256 B access granularity — a 64 B store still moves a full
  256 B block internally, wasting bandwidth for fine-grained accesses
  (the effect that hurts Optane on SQLite/Rodinia in Figure 16),
* a small (16 KB) XPBuffer that absorbs write bursts; once it saturates,
  writes see the media bandwidth,
* App Direct mode (``optane-P``): every request goes to the media —
  persistent but slow,
* Memory mode (``optane-M``): a DRAM cache in front of the media — faster
  but not persistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..config import OptaneConfig


@dataclass
class OptaneAccessResult:
    """Latency and internal traffic of one Optane access."""

    latency_ns: float
    internal_bytes: int
    hit_xpbuffer: bool


class OptaneDCPMM:
    """A single Optane DC PMM DIMM in App Direct mode."""

    def __init__(self, config: OptaneConfig) -> None:
        self.config = config
        self.reads = 0
        self.writes = 0
        self.bytes_requested = 0
        self.bytes_internal = 0
        self._xpbuffer_occupancy = 0

    @property
    def capacity_bytes(self) -> int:
        return self.config.capacity_bytes

    def _internal_size(self, size_bytes: int) -> int:
        """Round a request up to the 256 B internal block granularity."""
        block = self.config.internal_block_bytes
        blocks = (size_bytes + block - 1) // block
        return blocks * block

    def read(self, size_bytes: int) -> OptaneAccessResult:
        """A load served from the 3D XPoint media."""
        if size_bytes <= 0:
            raise ValueError("size must be positive")
        internal = self._internal_size(size_bytes)
        blocks = internal // self.config.internal_block_bytes
        latency = (self.config.read_latency_ns
                   + (blocks - 1) * self.config.block_overhead_ns
                   + internal / self.config.read_bw_bytes_per_ns)
        self.reads += 1
        self.bytes_requested += size_bytes
        self.bytes_internal += internal
        return OptaneAccessResult(latency_ns=latency, internal_bytes=internal,
                                  hit_xpbuffer=False)

    def write(self, size_bytes: int) -> OptaneAccessResult:
        """A store absorbed by the XPBuffer when it has room.

        Once the small write buffer fills, stores are throttled to the media
        write bandwidth (the "long PRAM write latency" discussed in
        Section VII).
        """
        if size_bytes <= 0:
            raise ValueError("size must be positive")
        internal = self._internal_size(size_bytes)
        blocks = internal // self.config.internal_block_bytes
        hit_buffer = (self._xpbuffer_occupancy + internal
                      <= self.config.xpbuffer_bytes)
        if hit_buffer:
            self._xpbuffer_occupancy += internal
            latency = self.config.write_latency_ns
        else:
            # Draining the buffer exposes the media bandwidth.
            latency = (self.config.write_latency_ns
                       + (blocks - 1) * self.config.block_overhead_ns
                       + internal / self.config.write_bw_bytes_per_ns)
            self._xpbuffer_occupancy = max(
                0, self._xpbuffer_occupancy - self.config.xpbuffer_bytes // 2)
        self.writes += 1
        self.bytes_requested += size_bytes
        self.bytes_internal += internal
        return OptaneAccessResult(latency_ns=latency, internal_bytes=internal,
                                  hit_xpbuffer=hit_buffer)

    def access_batch(self, sizes: np.ndarray,
                     writes: np.ndarray) -> np.ndarray:
        """Vectorized access: per-request media latency for whole columns.

        Reads are a pure function of size, filled per unique size with the
        exact scalar expression.  Writes run the XPBuffer occupancy state
        machine sequentially (plain integer arithmetic, no result objects),
        so buffer hits and drains land on exactly the accesses the scalar
        calls would have charged.  Counters are updated to the identical
        final values.
        """
        sizes = np.asarray(sizes, dtype=np.int64)
        writes = np.asarray(writes, dtype=bool)
        count = len(sizes)
        config = self.config
        block = config.internal_block_bytes
        internal = ((sizes + block - 1) // block) * block
        latency = np.empty(count, dtype=np.float64)

        read_mask = ~writes
        for size in np.unique(sizes[read_mask]):
            internal_size = self._internal_size(int(size))
            blocks = internal_size // block
            cost = (config.read_latency_ns
                    + (blocks - 1) * config.block_overhead_ns
                    + internal_size / config.read_bw_bytes_per_ns)
            latency[read_mask & (sizes == size)] = cost

        write_indices = np.flatnonzero(writes)
        if len(write_indices):
            drain_cost = {}
            for size in np.unique(sizes[writes]):
                internal_size = self._internal_size(int(size))
                blocks = internal_size // block
                drain_cost[int(size)] = (
                    config.write_latency_ns
                    + (blocks - 1) * config.block_overhead_ns
                    + internal_size / config.write_bw_bytes_per_ns)
            occupancy = self._xpbuffer_occupancy
            limit = config.xpbuffer_bytes
            write_sizes = sizes[writes].tolist()
            write_internal = internal[writes].tolist()
            for index, size, internal_size in zip(write_indices.tolist(),
                                                  write_sizes, write_internal):
                if occupancy + internal_size <= limit:
                    occupancy += internal_size
                    latency[index] = config.write_latency_ns
                else:
                    latency[index] = drain_cost[size]
                    occupancy = max(0, occupancy - limit // 2)
            self._xpbuffer_occupancy = occupancy

        write_count = len(write_indices)
        self.writes += write_count
        self.reads += count - write_count
        self.bytes_requested += int(sizes.sum())
        self.bytes_internal += int(internal.sum())
        return latency

    @property
    def bandwidth_waste_ratio(self) -> float:
        """Internal traffic divided by requested traffic (>= 1)."""
        if self.bytes_requested == 0:
            return 1.0
        return self.bytes_internal / self.bytes_requested

    def statistics(self) -> Dict[str, float]:
        return {
            "reads": float(self.reads),
            "writes": float(self.writes),
            "bytes_requested": float(self.bytes_requested),
            "bytes_internal": float(self.bytes_internal),
            "bandwidth_waste_ratio": self.bandwidth_waste_ratio,
        }
