"""Adaptive sweeps: spend simulated accesses where the signal is.

:class:`AdaptiveSweepDriver` layers knee-finding refinement on
:meth:`Session.submit` and the content-addressed run cache; the
``repro.sweep/1`` record (:mod:`repro.sweep.record`) makes each run
auditable and resumable.  Use :meth:`repro.api.Session.adaptive_sweep`
or the one-shot :func:`repro.api.adaptive_sweep` rather than building
the driver by hand.
"""

from .driver import (
    STOP_BUDGET,
    STOP_CONVERGED,
    STOP_MAX_ROUNDS,
    STOP_SETTLED,
    AdaptiveSweepDriver,
    AdaptiveSweepResult,
    SweepCell,
    SweepRound,
    curvature_scores,
    knee_index,
    refinement_candidates,
    seed_indices,
    sweep_labels,
)
from .record import (
    SWEEP_SCHEMA,
    load_sweep_record,
    sweep_record,
    write_sweep_record,
)

__all__ = [
    "AdaptiveSweepDriver",
    "AdaptiveSweepResult",
    "SweepCell",
    "SweepRound",
    "STOP_BUDGET",
    "STOP_CONVERGED",
    "STOP_MAX_ROUNDS",
    "STOP_SETTLED",
    "curvature_scores",
    "knee_index",
    "refinement_candidates",
    "seed_indices",
    "sweep_labels",
    "SWEEP_SCHEMA",
    "load_sweep_record",
    "sweep_record",
    "write_sweep_record",
]
