"""The adaptive sweep driver: spend simulated accesses where the signal is.

Fixed-grid sensitivity studies (the Figure 20a page-size sweep) evaluate
every cell of a ``values x workloads`` grid even where the metric curve is
a straight line.  This driver evaluates a coarse seed subsample of the
grid first and then iteratively *refines*: wherever a workload's metric
curve bends — the discrete curvature of an evaluated triple exceeds the
tolerance — the neighbouring grid intervals are bisected and only those
midpoints are evaluated next round.  Three mechanisms keep the spend
proportional to the signal:

* **cache skips** — a candidate cell whose content-addressed
  :func:`~repro.runner.artifacts.run_cache_key` is already resolved in the
  session's run cache costs zero budget (it streams back as a cache hit),
  so re-running a sweep — or sharing a cache with a previous fixed-grid
  study — only pays for genuinely new cells;
* **budget** — a cap on the total *estimated simulated accesses*
  (:func:`~repro.distrib.manifest.estimate_spec_cost`) prunes candidates
  once the spend would exceed it, and the pruned cells are recorded, not
  silently dropped;
* **early stop** — a workload whose knee estimate has been stable for
  ``settle_rounds`` consecutive refinement rounds is *settled*: its
  remaining candidates are recorded as settled instead of evaluated.

Every cell the driver does evaluate is submitted as exactly the
:class:`~repro.runner.specs.RunSpec` a fixed-grid :meth:`Session.sweep`
would build (same platform, same ``{section: {field: value}}`` override,
same label) — so evaluated cells are **bit-identical** to their fixed-grid
counterparts, share the same cache entries, and the adaptive experiment
artifact threshold-0 diffs cleanly against a full-grid baseline.

The driver is a consumer of :meth:`Session.submit`: each round's specs go
to the session's executor (serial, pool, sharded or ``serve:``) and the
refinement analysis runs *while the round streams* — as soon as the last
cell of a workload arrives through
:meth:`~repro.exec.ExperimentHandle.iter_results`, that workload's next
candidates are computed, overlapping analysis with the remaining runs'
execution on any tier.

Refinement geometry lives in **grid-index space**: candidates are always
cells of the supplied grid, and linearity is judged by interpolating the
metric between evaluated grid indices.  A geometrically spaced grid (page
sizes in powers of two) is therefore judged in log space, exactly as its
author laid it out — and the evaluated-cells-are-grid-cells invariant is
what makes the parity contract above checkable at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..analysis.experiments import ExperimentResult
from ..platforms.base import RunResult
from ..runner.specs import RunSpec

#: Stop reasons recorded by :class:`AdaptiveSweepResult`.
STOP_CONVERGED = "converged"    #: no triple above tolerance anywhere
STOP_BUDGET = "budget"          #: every remaining candidate was pruned
STOP_SETTLED = "settled"        #: every refining workload early-stopped
STOP_MAX_ROUNDS = "max-rounds"  #: the round cap fired first


def sweep_labels(values: Sequence[Any],
                 labels: Optional[Sequence[str]] = None) -> List[str]:
    """Resolve and validate the per-value labels of a sweep.

    The default label is ``str(value)``.  Duplicate labels — two values
    that stringify identically (``4096`` and ``"4096"``), or user-passed
    duplicates — are rejected: each value keys a ``(label, workload)``
    cell of the experiment result, and a duplicate would silently
    overwrite another value's runs.
    """
    values = list(values)
    if labels is None:
        labels = [str(value) for value in values]
    labels = [str(label) for label in labels]
    if len(labels) != len(values):
        raise ValueError("labels must match values")
    counts: Dict[str, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    duplicates = sorted(label for label, count in counts.items() if count > 1)
    if duplicates:
        raise ValueError(
            f"duplicate sweep label(s) {duplicates}: every (label, workload) "
            f"result key must be unique, or values would overwrite each "
            f"other; pass distinct values or explicit labels=")
    return labels


def metric_function(metric: Union[str, Callable[[RunResult], float]]
                    ) -> Callable[[RunResult], float]:
    """Turn a metric name (a ``RunResult`` attribute) into an extractor."""
    if callable(metric):
        return metric
    if not isinstance(metric, str) or not hasattr(RunResult, metric):
        raise ValueError(
            f"unknown sweep metric {metric!r}: expected a RunResult "
            f"attribute name (e.g. 'operations_per_second') or a callable")
    return lambda result: float(getattr(result, metric))


def curvature_scores(curve: Mapping[int, float]) -> Dict[int, float]:
    """Discrete-curvature score of every interior evaluated grid index.

    For each evaluated triple ``(i0, i1, i2)`` (consecutive in the sorted
    evaluated set, interpolated in index space), the score is the metric's
    deviation from the linear interpolation at ``i1``, normalised by the
    curve's largest absolute metric value.  Zero everywhere for a straight
    line; large at a knee.  Fewer than three points score nothing.
    """
    indices = sorted(curve)
    if len(indices) < 3:
        return {}
    scale = max(abs(curve[index]) for index in indices)
    scores: Dict[int, float] = {}
    for position in range(1, len(indices) - 1):
        i0, i1, i2 = indices[position - 1:position + 2]
        fraction = (i1 - i0) / (i2 - i0)
        linear = curve[i0] + (curve[i2] - curve[i0]) * fraction
        deviation = abs(curve[i1] - linear)
        scores[i1] = deviation / scale if scale > 0 else 0.0
    return scores


def knee_index(curve: Mapping[int, float]) -> Optional[int]:
    """The evaluated grid index of maximum curvature (ties: the smallest).

    ``None`` until the curve has an interior point, or when it is exactly
    linear (every score zero) — a line has no knee to report.
    """
    scores = curvature_scores(curve)
    if not scores or max(scores.values()) <= 0.0:
        return None
    best = max(scores.values())
    return min(index for index, score in scores.items() if score == best)


def refinement_candidates(curve: Mapping[int, float],
                          tolerance: float) -> Set[int]:
    """Grid indices to bisect next, given one workload's evaluated curve.

    Both intervals flanking any interior point whose curvature score
    exceeds *tolerance* are bisected (integer midpoint of the grid
    indices); intervals already at unit width cannot refine further.
    The result never contains an already-evaluated index.
    """
    indices = sorted(curve)
    out: Set[int] = set()
    scores = curvature_scores(curve)
    for position in range(1, len(indices) - 1):
        i1 = indices[position]
        if scores.get(i1, 0.0) <= tolerance:
            continue
        i0, i2 = indices[position - 1], indices[position + 1]
        for low, high in ((i0, i1), (i1, i2)):
            if high - low >= 2:
                out.add((low + high) // 2)
    return out - set(indices)


def seed_indices(grid_size: int, seed_points: int) -> List[int]:
    """Near-evenly spaced grid indices, always including both endpoints."""
    if grid_size <= 0:
        raise ValueError("the value grid must not be empty")
    points = max(2, min(int(seed_points), grid_size))
    if grid_size == 1:
        return [0]
    picked = {round(position * (grid_size - 1) / (points - 1))
              for position in range(points)}
    return sorted(picked)


@dataclass(frozen=True)
class SweepCell:
    """One resolved cell of an adaptive sweep (evaluated or cache-skipped)."""

    workload: str
    index: int        #: position on the value grid
    value: Any
    label: str
    metric: float
    cost: int         #: estimated accesses charged (0 for cache skips)
    cache_hit: bool
    key: Optional[str]

    def to_record(self) -> Dict[str, Any]:
        return {"workload": self.workload, "index": self.index,
                "value": self.value, "label": self.label,
                "metric": self.metric, "cost": self.cost,
                "cache_hit": self.cache_hit, "key": self.key}


@dataclass(frozen=True)
class SweepRound:
    """One refinement round: what ran, what the cache served, what did not.

    ``pruned`` cells fell to the budget cap; ``settled`` cells belonged to
    workloads whose knee had already stabilised.  Both are recorded as
    ``(workload, grid index)`` pairs so an audit can tell exactly which
    part of the grid was *not* explored and why.
    """

    number: int
    evaluated: Tuple[SweepCell, ...]
    skipped: Tuple[SweepCell, ...]
    pruned: Tuple[Tuple[str, int], ...]
    settled: Tuple[Tuple[str, int], ...]


@dataclass
class AdaptiveSweepResult:
    """Everything an adaptive sweep produced, decided and declined to run.

    ``experiment`` holds every resolved cell under the same
    ``(label, workload)`` keys a fixed-grid :meth:`Session.sweep` would
    use — bit-identical values for the cells both evaluated.  ``rounds``
    is the full refinement trace; ``knees`` the final knee estimate
    (grid value) per workload; the cost fields express what adaptivity
    saved relative to enumerating the grid.
    """

    platform: str
    section: str
    field_name: str
    values: List[Any]
    labels: List[str]
    workloads: List[str]
    metric: str
    tolerance: float
    budget: Optional[int]
    seed_points: int
    settle_rounds: Optional[int]
    experiment: ExperimentResult
    rounds: List[SweepRound] = field(default_factory=list)
    knees: Dict[str, Optional[Any]] = field(default_factory=dict)
    grid_cost: int = 0
    spent_cost: int = 0
    stop_reason: str = STOP_CONVERGED

    @property
    def evaluated_cells(self) -> List[SweepCell]:
        return [cell for round_ in self.rounds for cell in round_.evaluated]

    @property
    def skipped_cells(self) -> List[SweepCell]:
        return [cell for round_ in self.rounds for cell in round_.skipped]

    @property
    def pruned_cells(self) -> List[Tuple[str, int]]:
        return [cell for round_ in self.rounds for cell in round_.pruned]

    @property
    def settled_cells(self) -> List[Tuple[str, int]]:
        return [cell for round_ in self.rounds for cell in round_.settled]

    def evaluated_indices(self, workload: str) -> List[int]:
        """Sorted grid indices resolved (run or cache) for one workload."""
        return sorted({cell.index for round_ in self.rounds
                       for cell in (*round_.evaluated, *round_.skipped)
                       if cell.workload == workload})

    def curve(self, workload: str) -> Dict[int, float]:
        """The evaluated metric curve of one workload, by grid index."""
        return {cell.index: cell.metric for round_ in self.rounds
                for cell in (*round_.evaluated, *round_.skipped)
                if cell.workload == workload}


class AdaptiveSweepDriver:
    """Drives one adaptive sweep over a :class:`~repro.api.Session`.

    Built (and normally invoked) through :meth:`Session.adaptive_sweep`;
    separate from the facade so the refinement algorithm is testable
    without a live session and reusable by the CLI and benchmarks.
    *observer*, when given, is called with each completed
    :class:`SweepRound` — the CLI's per-round progress line.
    """

    def __init__(self, session: Any, platform: str,
                 workloads: Sequence[str], section: str, field_name: str,
                 values: Sequence[Any], *,
                 labels: Optional[Sequence[str]] = None,
                 metric: Union[str, Callable[[RunResult], float]]
                 = "operations_per_second",
                 tolerance: float = 0.05,
                 budget: Optional[int] = None,
                 seed_points: int = 5,
                 max_rounds: int = 12,
                 settle_rounds: Optional[int] = 3,
                 name: Optional[str] = None,
                 executor: Any = None,
                 shards: Optional[int] = None,
                 observer: Optional[Callable[[SweepRound], None]] = None
                 ) -> None:
        self.session = session
        self.platform = platform
        self.workloads = list(workloads)
        self.section = section
        self.field_name = field_name
        self.values = list(values)
        if not self.values:
            raise ValueError("the sweep needs at least one value")
        if not self.workloads:
            raise ValueError("the sweep needs at least one workload")
        numeric = [value for value in self.values
                   if isinstance(value, (int, float))
                   and not isinstance(value, bool)]
        if len(numeric) == len(self.values):
            if any(later <= earlier for earlier, later
                   in zip(self.values, self.values[1:])):
                raise ValueError(
                    "adaptive sweep values must be strictly increasing — "
                    "the grid is the bisection axis")
        elif len(self.values) > 1:
            raise ValueError(
                "adaptive sweep values must be numeric (the grid is "
                "bisected by position); use Session.sweep for categorical "
                "values")
        self.labels = sweep_labels(self.values, labels)
        self.metric = metric if isinstance(metric, str) else getattr(
            metric, "__name__", "custom")
        self._metric_fn = metric_function(metric)
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        self.tolerance = float(tolerance)
        if budget is not None and budget < 0:
            raise ValueError("budget must be >= 0 (estimated accesses)")
        self.budget = budget
        self.seed_points = max(2, min(int(seed_points), len(self.values)))
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.max_rounds = int(max_rounds)
        if settle_rounds is not None and settle_rounds < 1:
            raise ValueError("settle_rounds must be >= 1 (or None)")
        self.settle_rounds = settle_rounds
        self.name = name or f"adaptive-{platform}-{section}.{field_name}"
        self.executor = executor
        self.shards = shards
        self.observer = observer
        self._workload_order = {workload: position for position, workload
                                in enumerate(self.workloads)}

    # -- spec/cost plumbing ----------------------------------------------------------

    def _spec(self, workload: str, index: int) -> RunSpec:
        """Exactly the spec a fixed-grid ``Session.sweep`` would submit."""
        return RunSpec(platform=self.platform, workload=workload,
                       config_overrides={
                           self.section: {self.field_name:
                                          self.values[index]}},
                       label=self.labels[index])

    def _cell_cost(self, spec: RunSpec) -> int:
        from ..distrib.manifest import estimate_spec_cost
        return estimate_spec_cost(spec, self.session.scale)

    def _cache_resolved(self, key: Optional[str]) -> bool:
        """Would this key stream back from the run cache without executing?"""
        runner = self.session.runner
        if key is None or runner.force or not runner.cache.enabled:
            return False
        path = runner.cache.path_for(key)
        return path is not None and path.is_file()

    def grid_cost(self) -> int:
        """Estimated accesses of enumerating the full grid (the baseline)."""
        return sum(self._cell_cost(self._spec(workload, index))
                   for workload in self.workloads
                   for index in range(len(self.values)))

    # -- the refinement loop ---------------------------------------------------------

    def run(self) -> AdaptiveSweepResult:
        runner = self.session.runner
        result = AdaptiveSweepResult(
            platform=self.platform, section=self.section,
            field_name=self.field_name, values=list(self.values),
            labels=list(self.labels), workloads=list(self.workloads),
            metric=self.metric, tolerance=self.tolerance, budget=self.budget,
            seed_points=self.seed_points, settle_rounds=self.settle_rounds,
            experiment=ExperimentResult(scale=self.session.scale),
            grid_cost=self.grid_cost())
        curves: Dict[str, Dict[int, float]] = {workload: {}
                                               for workload in self.workloads}
        knee_history: Dict[str, List[Optional[int]]] = {
            workload: [] for workload in self.workloads}
        settled: Set[str] = set()
        seeds = seed_indices(len(self.values), self.seed_points)
        candidates: Set[Tuple[str, int]] = {
            (workload, index)
            for workload in self.workloads for index in seeds}
        spent = 0

        for round_number in range(self.max_rounds):
            if not candidates:
                break
            ordered = sorted(candidates, key=lambda cell: (
                self._workload_order[cell[0]], cell[1]))
            settled_cells = tuple(cell for cell in ordered
                                  if cell[0] in settled)
            live = [cell for cell in ordered if cell[0] not in settled]

            # Budget partition.  Cache-resolved candidates are free; the
            # rest charge their estimated access count, in submission
            # order, until the budget line — everything past it is pruned
            # (recorded, never silently dropped).
            to_run: List[Tuple[str, int, RunSpec, Optional[str], int]] = []
            pruned: List[Tuple[str, int]] = []
            for workload, index in live:
                spec = self._spec(workload, index)
                key = (runner.cache_key(spec) if runner.cache.enabled
                       else None)
                cost = (0 if self._cache_resolved(key)
                        else self._cell_cost(spec))
                if self.budget is not None and cost \
                        and spent + cost > self.budget:
                    pruned.append((workload, index))
                    continue
                spent += cost
                to_run.append((workload, index, spec, key, cost))

            if not to_run:
                result.rounds.append(SweepRound(
                    number=round_number, evaluated=(), skipped=(),
                    pruned=tuple(pruned), settled=settled_cells))
                if self.observer is not None:
                    self.observer(result.rounds[-1])
                result.stop_reason = STOP_BUDGET if pruned else STOP_SETTLED
                break

            # One submission per round; refinement of a workload starts
            # the moment its last cell streams in, overlapping analysis
            # with the execution still in flight on the chosen tier.
            handle = self.session.submit(
                [spec for _, _, spec, _, _ in to_run],
                name=f"{self.name}-r{round_number}",
                executor=self.executor, shards=self.shards)
            outstanding: Dict[str, int] = {}
            for workload, _, _, _, _ in to_run:
                outstanding[workload] = outstanding.get(workload, 0) + 1
            next_candidates: Set[Tuple[str, int]] = set()
            evaluated: List[SweepCell] = []
            skipped: List[SweepCell] = []
            for run in handle.iter_results():
                workload, index, spec, key, charged = to_run[run.index]
                value = self._metric_fn(run.result)
                curves[workload][index] = value
                platform_key, workload_key = spec.result_key
                result.experiment.add(platform_key, workload_key, run.result)
                # The streamed flag is ground truth; reconcile the charge
                # when the prediction was wrong (e.g. a torn cache file).
                actual = 0 if run.cache_hit else self._cell_cost(spec)
                spent += actual - charged
                cell = SweepCell(
                    workload=workload, index=index, value=self.values[index],
                    label=self.labels[index], metric=value, cost=actual,
                    cache_hit=run.cache_hit, key=key)
                (skipped if run.cache_hit else evaluated).append(cell)
                outstanding[workload] -= 1
                if outstanding[workload] == 0:
                    next_candidates.update(
                        (workload, candidate) for candidate in
                        refinement_candidates(curves[workload],
                                              self.tolerance))
            handle.result()  # raises ExperimentCancelled on a partial round

            result.rounds.append(SweepRound(
                number=round_number, evaluated=tuple(evaluated),
                skipped=tuple(skipped), pruned=tuple(pruned),
                settled=settled_cells))
            if self.observer is not None:
                self.observer(result.rounds[-1])

            # Early stop: a workload whose knee estimate has not moved for
            # settle_rounds consecutive rounds stops refining.
            for workload in self.workloads:
                if workload in settled:
                    continue
                knee_history[workload].append(knee_index(curves[workload]))
                history = knee_history[workload]
                if self.settle_rounds is not None \
                        and len(history) >= self.settle_rounds \
                        and history[-1] is not None \
                        and len(set(
                            history[-self.settle_rounds:])) == 1:
                    settled.add(workload)

            candidates = {(workload, index)
                          for workload, index in next_candidates
                          if index not in curves[workload]}
            if not candidates:
                result.stop_reason = STOP_CONVERGED
                break
        else:
            result.stop_reason = STOP_MAX_ROUNDS

        result.spent_cost = spent
        result.knees = {}
        for workload in self.workloads:
            knee = knee_index(curves[workload])
            result.knees[workload] = (self.values[knee]
                                      if knee is not None else None)
        return result
