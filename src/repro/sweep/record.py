"""The ``repro.sweep/1`` record: an adaptive sweep's full audit trail.

The experiment artifact (``repro.experiment/1``) holds the *results* of an
adaptive sweep — every resolved cell, bit-identical to its fixed-grid
counterpart, diffable with ``repro report --diff``.  This record holds the
*decisions*: which cells each refinement round evaluated, which resolved
from the content-addressed cache, which fell to the budget cap or to a
settled knee, what each cost, and where the knees landed.  Together with
the run cache it makes an adaptive run auditable (exactly which part of
the grid was not explored, and why) and resumable (re-running the same
sweep against the same cache streams every prior cell back as a skip and
only pays for cells the previous run never reached).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict

from ..config import SystemConfig
from ..runner.artifacts import (
    atomic_write_json,
    config_hash_of,
    scale_to_dict,
)
from .driver import AdaptiveSweepResult

#: Bump when the serialised layout of the sweep record changes.
SWEEP_SCHEMA = "repro.sweep/1"


def sweep_record(name: str, sweep: AdaptiveSweepResult,
                 config: SystemConfig) -> Dict[str, Any]:
    """Assemble the versioned ``repro.sweep/1`` payload."""
    rounds = []
    for round_ in sweep.rounds:
        rounds.append({
            "number": round_.number,
            "evaluated": [cell.to_record() for cell in round_.evaluated],
            "skipped": [cell.to_record() for cell in round_.skipped],
            "pruned": [{"workload": workload, "index": index}
                       for workload, index in round_.pruned],
            "settled": [{"workload": workload, "index": index}
                        for workload, index in round_.settled],
        })
    return {
        "schema": SWEEP_SCHEMA,
        "experiment": name,
        "created_unix": time.time(),
        "platform": sweep.platform,
        "section": sweep.section,
        "field": sweep.field_name,
        "metric": sweep.metric,
        "tolerance": sweep.tolerance,
        "budget": sweep.budget,
        "seed_points": sweep.seed_points,
        "settle_rounds": sweep.settle_rounds,
        "scale": scale_to_dict(sweep.experiment.scale),
        "config_hash": config_hash_of(config),
        "values": list(sweep.values),
        "labels": list(sweep.labels),
        "workloads": list(sweep.workloads),
        "rounds": rounds,
        "knees": dict(sweep.knees),
        "totals": {
            "evaluated": len(sweep.evaluated_cells),
            "skipped": len(sweep.skipped_cells),
            "pruned": len(sweep.pruned_cells),
            "settled": len(sweep.settled_cells),
            "grid_cells": len(sweep.values) * len(sweep.workloads),
            "grid_cost": sweep.grid_cost,
            "spent_cost": sweep.spent_cost,
        },
        "stop_reason": sweep.stop_reason,
    }


def write_sweep_record(directory: Path, name: str,
                       sweep: AdaptiveSweepResult,
                       config: SystemConfig) -> Path:
    """Write ``<directory>/<name>.sweep.json`` and return its path."""
    path = Path(directory) / f"{name}.sweep.json"
    return atomic_write_json(path, sweep_record(name, sweep, config))


def load_sweep_record(path: Path) -> Dict[str, Any]:
    """Read and validate one ``repro.sweep/1`` record."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != SWEEP_SCHEMA:
        raise ValueError(
            f"{path}: unsupported sweep record schema "
            f"{payload.get('schema')!r} (expected {SWEEP_SCHEMA})")
    return payload
