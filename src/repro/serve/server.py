"""The ``repro serve`` daemon: a multi-tenant experiment service.

One :class:`ServeDaemon` owns a **state directory**:

* ``queue/`` — the crash-safe persistent job queue
  (:class:`~repro.serve.jobs.JobQueue`, ``repro.job/1`` records);
* ``cache/`` — the content-addressed run cache every execution shares
  (what makes restarts resume and duplicate submissions cheap);
* ``events/<exec-key>.jsonl`` — one ``repro.events/1`` stream per
  *execution* (deduped jobs share the file, and therefore the stream);
* ``results/<tenant>/<job-id>.json`` — per-tenant ``repro.experiment/1``
  artifacts (the tenant namespace is a directory, so tenants can never
  collide on artifact names);
* ``serve.log.jsonl`` — the daemon's own job-lifecycle event log
  (``job-queued``/``job-start``/``job-finish`` records);
* ``server.json`` — the endpoint record (``repro.serve/1``: url + pid)
  CLI verbs use to find a running daemon.

Submissions arrive over HTTP/JSON (stdlib ``http.server``, threaded); a
bounded fleet of worker threads multiplexes them, each job executing
through a fresh :class:`~repro.api.Session` bound to the shared cache.
Scheduling is priority-plus-per-tenant-fair (:mod:`repro.serve.scheduler`),
and identical submissions dedupe on their execution key: one execution,
one event stream, one artifact per subscribing job.

Crash safety is inherited, not invented: every queue transition is an
atomic write + rename, every finished run streams into the run cache the
moment it completes, and a daemon killed at any instant restarts by
requeueing ``running/`` jobs — the re-execution resolves finished runs
from the cache and folds a bit-identical artifact.  ``SIGTERM`` drains
gracefully: in-flight *runs* finish and persist, their jobs return to
``pending/``, and the restarted daemon picks the queue up without
duplicating or dropping anything.

HTTP API (all JSON; ``/v1`` prefix)::

    GET  /v1/status                      daemon + queue + tenant snapshot
    GET  /v1/jobs[?tenant=T]             job listing (records sans specs)
    POST /v1/jobs                        submit {tenant,name,priority,specs}
    GET  /v1/jobs/<id>                   one job record
    GET  /v1/jobs/<id>/events?offset=N   chunked long-poll repro.events/1
    GET  /v1/jobs/<id>/result            the job's experiment artifact
    POST /v1/jobs/<id>/cancel            cancel (cooperative when running)
    GET  /v1/cache/<key>                 one repro.run/1 cache entry
    POST /v1/shutdown {"drain": bool}    stop the daemon
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading
import time
import urllib.parse
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..api import Session
from ..config import default_config
from ..exec import ExperimentCancelled
from ..platforms.registry import available_platforms
from ..runner.artifacts import (
    atomic_write_json,
    config_hash_of,
    experiment_to_artifact,
    run_cache_key,
    scale_to_dict,
)
from ..runner.events import (
    JOB_FINISH,
    JOB_QUEUED,
    JOB_START,
    append_event,
    job_event,
    tail_bytes,
)
from ..runner.specs import RunSpec, apply_config_overrides
from ..workloads.registry import (
    ExperimentScale,
    all_workload_names,
    scale_system_config,
)
from .jobs import (
    CANCELLED,
    DEFAULT_TENANT,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
    execution_key,
)
from .scheduler import pick_next, tenant_snapshot, waiting_duplicates

#: Schema of the ``server.json`` endpoint record.
SERVER_SCHEMA = "repro.serve/1"
#: Schema of the ``GET /v1/status`` payload.
STATUS_SCHEMA = "repro.serve-status/1"

#: Tenant / job-name grammar: path-safe, no dots-only names, no separators.
_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Long-poll bounds for the event-stream endpoint (seconds).
DEFAULT_WAIT_S = 30.0
MAX_WAIT_S = 120.0


@dataclass(frozen=True)
class ServeConfig:
    """Everything a daemon needs: where its state lives and how it executes.

    *fleet* bounds the worker threads multiplexing jobs; *job_workers* and
    *job_executor* shape the :class:`~repro.api.Session` each job runs
    under (serial by default — the fleet provides the concurrency, and
    forking pools from worker threads is an opt-in).  *scale* is daemon-
    wide: every tenant's submission executes under one scale + config, so
    execution keys, cache entries and artifacts are mutually consistent.
    """

    state_dir: Path
    host: str = "127.0.0.1"
    port: int = 0
    fleet: int = 2
    job_workers: int = 1
    job_executor: str = "serial"
    scale: Optional[ExperimentScale] = None
    quiet: bool = True


@dataclass
class _Counters:
    """Daemon-lifetime run accounting behind the status endpoint."""

    executions: int = 0
    runs_completed: int = 0
    run_cache_hits: int = 0
    deduped_jobs: int = 0

    @property
    def cache_hit_rate(self) -> float:
        if self.runs_completed == 0:
            return 0.0
        return self.run_cache_hits / self.runs_completed

    def snapshot(self) -> Dict[str, Any]:
        return {"executions": self.executions,
                "runs_completed": self.runs_completed,
                "run_cache_hits": self.run_cache_hits,
                "cache_hit_rate": self.cache_hit_rate,
                "deduped_jobs": self.deduped_jobs}


class ServeError(Exception):
    """An HTTP-mappable request error."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def server_record_path(state_dir: Path) -> Path:
    return Path(state_dir) / "server.json"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except (OSError, TypeError):
        return False
    return True


class ServeDaemon:
    """The long-running service: queue + scheduler + worker fleet + HTTP."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.state_dir = Path(config.state_dir)
        self.queue = JobQueue(self.state_dir / "queue")
        self.cache_dir = self.state_dir / "cache"
        self.events_dir = self.state_dir / "events"
        self.results_dir = self.state_dir / "results"
        self.log_path = self.state_dir / "serve.log.jsonl"
        self.scale = config.scale if config.scale is not None \
            else ExperimentScale()
        self.session_config = scale_system_config(default_config(),
                                                  self.scale)
        self.config_hash = config_hash_of(self.session_config)
        self.owner = f"{socket.gethostname()}:{os.getpid()}"

        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._handles: Dict[str, Any] = {}
        self._user_cancelled: set = set()
        self._last_served: Dict[str, int] = {}
        self._serve_serial = 0
        self.counters = _Counters()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._draining = False
        self._started_unix = time.time()
        self._http: Optional[ThreadingHTTPServer] = None
        self._threads: List[threading.Thread] = []

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> "ServeDaemon":
        """Bind, recover the queue, launch the fleet; returns immediately."""
        record_path = server_record_path(self.state_dir)
        if record_path.exists():
            try:
                record = json.loads(record_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                record = {}
            pid = record.get("pid")
            if pid != os.getpid() and _pid_alive(pid):
                raise RuntimeError(
                    f"a serve daemon (pid {pid}) already owns "
                    f"{self.state_dir}; two daemons sharing a queue would "
                    f"double-execute jobs")
        for directory in (self.cache_dir, self.events_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)
        self.queue.prepare()
        # Startup recovery: jobs a killed daemon left mid-flight go back to
        # pending; their finished runs are in the cache, so re-execution
        # resumes instead of recomputing.
        self.queue.requeue_running()
        with self._lock:
            for job in self.queue.all_jobs():
                self._jobs[job.id] = job

        self._http = _ServeHTTPServer((self.config.host, self.config.port),
                                      _ServeHandler, daemon=self)
        atomic_write_json(record_path, {
            "schema": SERVER_SCHEMA,
            "url": self.url,
            "pid": os.getpid(),
            "state_dir": str(self.state_dir),
            "started_unix": self._started_unix,
        })
        http_thread = threading.Thread(target=self._http.serve_forever,
                                       name="repro-serve-http", daemon=True)
        http_thread.start()
        self._threads.append(http_thread)
        for index in range(max(1, self.config.fleet)):
            worker = threading.Thread(target=self._worker_loop,
                                      name=f"repro-serve-worker-{index}",
                                      daemon=True)
            worker.start()
            self._threads.append(worker)
        return self

    @property
    def url(self) -> str:
        assert self._http is not None, "daemon not started"
        host, port = self._http.server_address[:2]
        return f"http://{host}:{port}"

    def request_shutdown(self, drain: bool = True) -> None:
        """Begin stopping; returns immediately (callable from HTTP threads).

        With *drain* (the default), running jobs are cooperatively
        cancelled — the current run finishes and persists — and requeued as
        pending, so a restarted daemon resumes them.  Without drain the
        same cooperative stop happens but the daemon does not wait for
        workers before tearing the HTTP server down.
        """
        with self._lock:
            if self._stopping.is_set():
                return
            self._draining = True
            self._stopping.set()
            for handle in self._handles.values():
                handle.cancel()
            self._wake.notify_all()
        threading.Thread(target=self._finalise_stop, args=(drain,),
                         name="repro-serve-stop", daemon=True).start()

    def _finalise_stop(self, drain: bool) -> None:
        if drain:
            for thread in self._threads:
                if thread.name.startswith("repro-serve-worker"):
                    thread.join(timeout=60.0)
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
        server_record_path(self.state_dir).unlink(missing_ok=True)
        self._stopped.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the daemon has fully stopped."""
        return self._stopped.wait(timeout)

    # -- submission ------------------------------------------------------------------

    def submit(self, payload: Dict[str, Any]) -> Job:
        """Validate one HTTP submission and enqueue it."""
        tenant = payload.get("tenant", DEFAULT_TENANT)
        name = payload.get("name", "experiment")
        priority = payload.get("priority", 0)
        if not isinstance(tenant, str) or not _NAME_RE.match(tenant):
            raise ServeError(400, f"invalid tenant {tenant!r}")
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ServeError(400, f"invalid job name {name!r}")
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ServeError(400, f"priority must be an integer, "
                                  f"got {priority!r}")
        raw_specs = payload.get("specs")
        if not isinstance(raw_specs, list) or not raw_specs:
            raise ServeError(400, "specs must be a non-empty list")
        specs = self._validate_specs(raw_specs)
        exec_key = execution_key(specs, self.session_config, self.scale)
        with self._wake:
            if self._stopping.is_set():
                raise ServeError(503, "daemon is shutting down")
            duplicate_of = next(
                (job.id for job in self._jobs.values()
                 if job.exec_key == exec_key and job.state in (QUEUED,
                                                               RUNNING)),
                None)
            job = Job(id=self.queue.next_id(), tenant=tenant, name=name,
                      priority=priority, specs=specs, exec_key=exec_key,
                      deduped_against=duplicate_of,
                      events_path=f"events/{exec_key}.jsonl")
            self.queue.submit(job)
            self._jobs[job.id] = job
            self._wake.notify_all()
        self._log(job_event(JOB_QUEUED, job.id, job.tenant, key=exec_key,
                            experiment=job.name, total=job.total))
        return job

    def _validate_specs(self, raw_specs: List[Any]) -> List[RunSpec]:
        """Reject bad submissions at the door, not deep inside a worker."""
        platforms = set(available_platforms())
        workloads = set(all_workload_names())
        specs = []
        for position, raw in enumerate(raw_specs):
            try:
                spec = RunSpec.from_dict(raw)
                # Unknown override sections/fields raise here, eagerly.
                apply_config_overrides(self.session_config,
                                       spec.config_overrides)
            except (ValueError, KeyError, TypeError) as error:
                raise ServeError(
                    400, f"specs[{position}]: {error}") from None
            if spec.platform not in platforms:
                raise ServeError(
                    400, f"specs[{position}]: unknown platform "
                         f"{spec.platform!r}")
            if spec.workload.startswith("scenario:"):
                # Scenario sources carry their spec inline; parse it now
                # so a malformed mix fails the submission, not a worker.
                from ..scenario.spec import parse_scenario_source
                try:
                    scenario = parse_scenario_source(spec.workload)
                except ValueError as error:
                    raise ServeError(
                        400, f"specs[{position}]: {error}") from None
                for tenant in scenario.tenants:
                    if (not tenant.workload.startswith("trace:")
                            and tenant.workload not in workloads):
                        raise ServeError(
                            400, f"specs[{position}]: unknown tenant "
                                 f"workload {tenant.workload!r}")
            elif (spec.workload not in workloads
                    and not spec.workload.startswith("trace:")):
                raise ServeError(
                    400, f"specs[{position}]: unknown workload "
                         f"{spec.workload!r}")
            specs.append(spec)
        return specs

    # -- cancellation ----------------------------------------------------------------

    def cancel(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServeError(404, f"no such job {job_id!r}")
            if job.state == QUEUED:
                self.queue.finish(job, CANCELLED)
                self._log(job_event(JOB_FINISH, job.id, job.tenant,
                                    state=CANCELLED, key=job.exec_key))
                return job
            if job.state == RUNNING:
                self._user_cancelled.add(job.id)
                handle = self._handles.get(job.id)
                if handle is not None:
                    handle.cancel()
                return job
            raise ServeError(409, f"job {job_id} already terminal "
                                  f"({job.state})")

    # -- the worker fleet ------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._wake:
                if self._stopping.is_set():
                    return
                pending = [job for job in self._jobs.values()
                           if job.state == QUEUED]
                running = [job for job in self._jobs.values()
                           if job.state == RUNNING]
                job = pick_next(pending, running, self._last_served)
                if job is None:
                    self._wake.wait(timeout=0.2)
                    continue
                self.queue.claim(job, self.owner)
                self._last_served[job.tenant] = self._serve_serial
                self._serve_serial += 1
            self._execute(job)

    def _job_session(self) -> Session:
        """A fresh per-job session bound to the daemon's shared cache."""
        return Session(scale=self.scale, workers=self.config.job_workers,
                       cache_dir=self.cache_dir,
                       executor=self.config.job_executor)

    def _execute(self, job: Job) -> None:
        started = time.monotonic()
        with self._lock:
            # This job is executing itself (its duplicate-of hint, if any,
            # pointed at a job that finished or was cancelled first).
            job.deduped_against = None
        events_path = self.state_dir / job.events_path
        self._log(job_event(JOB_START, job.id, job.tenant, key=job.exec_key,
                            experiment=job.name, total=job.total,
                            owner=self.owner))
        session = self._job_session()
        try:
            handle = session.submit(job.specs, name=job.name,
                                    events_path=events_path)
            with self._lock:
                self._handles[job.id] = handle
                self.counters.executions += 1
            for run in handle.iter_results():
                with self._lock:
                    job.completed += 1
                    job.cache_hits += int(run.cache_hit)
                    self.counters.runs_completed += 1
                    self.counters.run_cache_hits += int(run.cache_hit)
            experiment = handle.result()
        except ExperimentCancelled:
            self._finish_cancelled(job, events_path)
            return
        except Exception as error:  # noqa: BLE001 - worker must survive
            self._finish_terminal(job, FAILED, events_path,
                                  error=f"{type(error).__name__}: {error}")
            return
        finally:
            with self._lock:
                self._handles.pop(job.id, None)

        elapsed = time.monotonic() - started
        self._publish(job, experiment, elapsed)
        self._finish_terminal(job, DONE, events_path)
        self._adopt_duplicates(job, experiment, events_path)

    def _finish_cancelled(self, job: Job, events_path: Path) -> None:
        """Route a cooperative stop: user cancel vs shutdown drain."""
        with self._lock:
            user = job.id in self._user_cancelled
            self._user_cancelled.discard(job.id)
            draining = self._draining
        if user or not draining:
            self._finish_terminal(job, CANCELLED, events_path)
        else:
            # Drain: the job goes back to pending intact; finished runs
            # are in the cache, so the restarted daemon resumes it.
            with self._lock:
                self.queue.release(job)

    def _finish_terminal(self, job: Job, state: str, events_path: Path, *,
                         error: Optional[str] = None) -> None:
        with self._lock:
            self.queue.finish(job, state, error=error)
        marker = job_event(JOB_FINISH, job.id, job.tenant, state=state,
                           key=job.exec_key, experiment=job.name,
                           total=job.total)
        # The stream-terminal marker: watchers of this execution's events
        # see the job reach a terminal state in-band.
        try:
            append_event(events_path, marker)
        except OSError:  # pragma: no cover - events dir removed underneath
            pass
        self._log(marker)

    def _publish(self, job: Job, experiment, elapsed: float) -> None:
        """Write the job's artifact into its tenant's result namespace."""
        directory = self.results_dir / job.tenant
        payload = experiment_to_artifact(
            job.name, experiment, self.session_config,
            meta={"tenant": job.tenant, "job": job.id,
                  "exec_key": job.exec_key, "executor": "serve",
                  "elapsed_s": elapsed, "cache_hits": job.cache_hits,
                  "cache_misses": job.total - job.cache_hits,
                  "events": job.events_path,
                  **({"deduped_against": job.deduped_against}
                     if job.deduped_against else {})})
        path = directory / f"{job.id}.json"
        atomic_write_json(path, payload)
        with self._lock:
            job.result_path = str(path.relative_to(self.state_dir))

    def _adopt_duplicates(self, job: Job, experiment, events_path) -> None:
        """Complete every pending duplicate of a just-finished execution.

        Their artifacts are folded from the shared run cache against each
        duplicate's *own* spec list (labels and spec order may differ
        between tenants without changing the execution), so nothing
        re-executes and every subscriber gets a correct, complete result.
        """
        session = None
        while True:
            with self._wake:
                pending = [j for j in self._jobs.values()
                           if j.state == QUEUED]
                duplicates = waiting_duplicates(pending, job.exec_key)
                for duplicate in duplicates:
                    self.queue.claim(duplicate, self.owner)
            if not duplicates:
                return
            if session is None:
                session = self._job_session()
            for duplicate in duplicates:
                self._log(job_event(JOB_START, duplicate.id,
                                    duplicate.tenant, key=duplicate.exec_key,
                                    experiment=duplicate.name,
                                    total=duplicate.total, owner=self.owner))
                try:
                    folded = self._fold_from_cache(duplicate, session)
                except Exception as error:  # noqa: BLE001
                    self._finish_terminal(
                        duplicate, FAILED, events_path,
                        error=f"{type(error).__name__}: {error}")
                    continue
                with self._lock:
                    duplicate.completed = duplicate.total
                    duplicate.cache_hits = duplicate.total
                    duplicate.deduped_against = job.id
                    self.counters.deduped_jobs += 1
                self._publish(duplicate, folded, 0.0)
                self._finish_terminal(duplicate, DONE, events_path)

    def _fold_from_cache(self, job: Job, session: Session):
        """Fold a duplicate's ExperimentResult from cached runs by key."""
        from ..analysis.experiments import ExperimentResult
        cache = session.runner.cache
        experiment = ExperimentResult(scale=self.scale)
        for spec in job.specs:
            key = run_cache_key(spec, self.session_config, self.scale)
            result = cache.load(key)
            if result is None:
                raise RuntimeError(
                    f"cache entry {key} vanished while folding a deduped "
                    f"job; resubmit {job.id}")
            platform_key, workload_key = spec.result_key
            experiment.add(platform_key, workload_key, result)
        return experiment

    # -- observability ---------------------------------------------------------------

    def _log(self, event) -> None:
        try:
            append_event(self.log_path, event)
        except OSError:  # pragma: no cover - state dir removed underneath
            pass

    def status(self) -> Dict[str, Any]:
        with self._lock:
            jobs = list(self._jobs.values())
            counters = self.counters.snapshot()
            draining = self._draining
        states: Dict[str, int] = {state: 0 for state in
                                  (QUEUED, RUNNING, DONE, FAILED, CANCELLED)}
        for job in jobs:
            states[job.state] = states.get(job.state, 0) + 1
        pending = [job for job in jobs if job.state == QUEUED]
        running = [job for job in jobs if job.state == RUNNING]
        return {
            "schema": STATUS_SCHEMA,
            "url": self.url,
            "pid": os.getpid(),
            "state_dir": str(self.state_dir),
            "uptime_s": time.time() - self._started_unix,
            "scale": scale_to_dict(self.scale),
            "config_hash": self.config_hash,
            "fleet": self.config.fleet,
            "job_workers": self.config.job_workers,
            "job_executor": self.config.job_executor,
            "draining": draining,
            "queue": states,
            "tenants": tenant_snapshot(pending, running),
            "runs": counters,
        }

    def job_payload(self, job_id: str) -> Dict[str, Any]:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServeError(404, f"no such job {job_id!r}")
            return job_public(job)

    def jobs_payload(self, tenant: Optional[str] = None
                     ) -> List[Dict[str, Any]]:
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda job: job.id)
        return [job_public(job) for job in jobs
                if tenant is None or job.tenant == tenant]


def job_public(job: Job) -> Dict[str, Any]:
    """A job record as served over HTTP: the payload minus the spec bodies.

    Spec lists can be large (sweeps) and the submitting client already has
    them; ``total`` keeps the run count visible.
    """
    payload = job.to_payload()
    payload.pop("specs")
    return payload


# ---------------------------------------------------------------------------
# HTTP plumbing
# ---------------------------------------------------------------------------


class _ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying its daemon (handlers need it)."""

    daemon_threads = True
    # Long-poll watchers occupy threads; do not linger on socket close.
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], handler,
                 daemon: ServeDaemon) -> None:
        self.serve_daemon = daemon
        super().__init__(address, handler)


class _ServeHandler(BaseHTTPRequestHandler):
    """Route table + JSON plumbing for the daemon's API."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    # -- helpers ---------------------------------------------------------------------

    @property
    def daemon(self) -> ServeDaemon:
        return self.server.serve_daemon  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if not self.daemon.config.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _read_json_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise ServeError(400, "request body is not valid JSON") \
                from None
        if not isinstance(payload, dict):
            raise ServeError(400, "request body must be a JSON object")
        return payload

    def _route(self) -> Tuple[str, Dict[str, str]]:
        parsed = urllib.parse.urlsplit(self.path)
        query = {key: values[-1] for key, values
                 in urllib.parse.parse_qs(parsed.query).items()}
        return parsed.path.rstrip("/") or "/", query

    # -- verbs -----------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, query = self._route()
        try:
            if path == "/v1/status":
                self._send_json(self.daemon.status())
            elif path == "/v1/jobs":
                self._send_json(
                    {"jobs": self.daemon.jobs_payload(query.get("tenant"))})
            elif match := re.fullmatch(r"/v1/jobs/([^/]+)", path):
                self._send_json(self.daemon.job_payload(match.group(1)))
            elif match := re.fullmatch(r"/v1/jobs/([^/]+)/events", path):
                self._stream_events(match.group(1), query)
            elif match := re.fullmatch(r"/v1/jobs/([^/]+)/result", path):
                self._send_result(match.group(1))
            elif match := re.fullmatch(r"/v1/cache/([0-9a-f]{64})", path):
                self._send_cache_entry(match.group(1))
            else:
                self._send_error_json(404, f"unknown path {path!r}")
        except ServeError as error:
            self._send_error_json(error.status, str(error))
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path, _query = self._route()
        try:
            body = self._read_json_body()
            if path == "/v1/jobs":
                job = self.daemon.submit(body)
                self._send_json(job_public(job), status=201)
            elif match := re.fullmatch(r"/v1/jobs/([^/]+)/cancel", path):
                job = self.daemon.cancel(match.group(1))
                self._send_json(job_public(job))
            elif path == "/v1/shutdown":
                drain = bool(body.get("drain", True))
                self._send_json({"stopping": True, "drain": drain})
                self.daemon.request_shutdown(drain=drain)
            else:
                self._send_error_json(404, f"unknown path {path!r}")
        except ServeError as error:
            self._send_error_json(error.status, str(error))
        except (BrokenPipeError, ConnectionResetError):
            pass

    # -- endpoint bodies -------------------------------------------------------------

    def _send_result(self, job_id: str) -> None:
        payload = self.daemon.job_payload(job_id)
        if payload["state"] != DONE:
            raise ServeError(
                409, f"job {job_id} is {payload['state']}"
                     + (f": {payload['error']}" if payload.get("error")
                        else ""))
        path = self.daemon.state_dir / payload["result_path"]
        try:
            body = path.read_bytes()
        except OSError:
            raise ServeError(410, f"artifact of job {job_id} is gone "
                                  f"({payload['result_path']})") from None
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_cache_entry(self, key: str) -> None:
        path = self.daemon.cache_dir / f"{key}.json"
        try:
            body = path.read_bytes()
        except OSError:
            raise ServeError(404, f"no cache entry {key}") from None
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _stream_events(self, job_id: str, query: Dict[str, str]) -> None:
        """Chunked long-poll over the job's ``repro.events/1`` stream.

        Sends complete lines from byte ``offset`` as they are appended,
        ending when the job is terminal (and fully relayed) or after
        ``wait`` seconds; the client resumes with its byte count as the
        next offset.  The ``X-Repro-Events-Offset`` header echoes the
        offset actually used — the server clamps an offset past EOF back
        to zero when a resumed execution truncated the stream.
        """
        payload = self.daemon.job_payload(job_id)
        events_path = self.daemon.state_dir / payload["events_path"]
        try:
            offset = max(0, int(query.get("offset", "0")))
        except ValueError:
            raise ServeError(400, "offset must be an integer") from None
        try:
            wait = min(MAX_WAIT_S,
                       max(0.0, float(query.get("wait", DEFAULT_WAIT_S))))
        except ValueError:
            raise ServeError(400, "wait must be a number") from None
        try:
            size = events_path.stat().st_size
        except OSError:
            size = 0
        if offset > size:
            offset = 0

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("X-Repro-Events-Offset", str(offset))
        self.end_headers()

        deadline = time.monotonic() + wait
        try:
            while True:
                data, offset = tail_bytes(events_path, offset)
                if data:
                    self._write_chunk(data)
                terminal = self.daemon.job_payload(job_id)["state"] not in \
                    (QUEUED, RUNNING)
                if terminal and not data:
                    break
                if time.monotonic() >= deadline:
                    break
                time.sleep(0.05)
            self._write_chunk(b"")
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
        if data:
            self.wfile.write(data)
            self.wfile.write(b"\r\n")
        else:
            self.wfile.write(b"\r\n")
        self.wfile.flush()
