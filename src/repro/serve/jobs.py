"""Versioned ``repro.job/1`` records and the crash-safe persistent job queue.

A **job** is one tenant's submission to the serve daemon: a named list of
:class:`~repro.runner.specs.RunSpec` records plus scheduling metadata
(tenant, priority).  Jobs are plain JSON files in a spool-style directory —
the same dependency-free coordination idiom :mod:`repro.distrib.spool`
uses — with one subdirectory per state:

* ``queue/pending/<job-id>.json`` — submitted, waiting for a worker;
* ``queue/running/<job-id>.json`` — claimed by a worker thread.  Claiming
  is an atomic ``os.replace`` from ``pending/`` — crash-safe bookkeeping,
  not inter-process locking (one daemon owns a queue; its scheduler lock
  serialises claims);
* ``queue/done/<job-id>.json`` — terminal (``done``/``failed``/
  ``cancelled``, recorded inside the file).

Every transition rewrites the record atomically (via the shared
``atomic_write_json``) *before* the rename, so a daemon killed at any
instant leaves only whole files: on restart, :meth:`JobQueue.requeue_running`
returns claimed-but-unfinished jobs to ``pending/`` and execution resumes —
finished runs of the interrupted experiment are already in the
content-addressed run cache, so the rerun recomputes nothing and folds a
bit-identical artifact (the same invariant the distrib spool workers keep).

The **execution key** is the submission-dedup address: the SHA-256 over the
*sorted run-cache keys* of the job's specs.  Two tenants submitting the
same spec set — regardless of spec order or result-key labels, which do
not change what executes — get the same execution key, share one
execution and one ``repro.events/1`` stream, and each receives an artifact
folded from their own spec list.  Anything that changes any run-cache key
(spec, scale, any config field) changes the execution key, exactly as it
changes the cache address.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..config import SystemConfig
from ..runner.artifacts import atomic_write_json, run_cache_key
from ..runner.specs import RunSpec
from ..workloads.registry import ExperimentScale

#: Bump when the serialised job-record layout changes.
JOB_SCHEMA = "repro.job/1"

#: Job states; the first two are *active* (occupying a queue directory
#: other than ``done/``), the rest are terminal.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
ACTIVE_STATES = (QUEUED, RUNNING)
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: Tenant used when a submission names none.
DEFAULT_TENANT = "default"


def execution_key(specs: List[RunSpec], config: SystemConfig,
                  scale: ExperimentScale) -> str:
    """The submission-dedup address of one spec set under one session.

    Defined as the SHA-256 of the sorted per-run cache keys, so dedup
    identity and cache identity can never drift apart: two submissions
    dedupe if and only if every run of one would resolve from the cache
    entries the other produces.
    """
    keys = sorted(run_cache_key(spec, config, scale) for spec in specs)
    return hashlib.sha256("\n".join(keys).encode("ascii")).hexdigest()


@dataclass
class Job:
    """One submitted experiment: specs plus scheduling/provenance metadata.

    ``exec_key`` addresses the execution (shared across deduped jobs);
    ``result_path``/``events_path`` are state-dir-relative so a state
    directory can be moved or mounted elsewhere without breaking records.
    ``completed``/``total`` are live progress counters (refreshed in the
    terminal record; advisory while running).
    """

    id: str
    tenant: str
    name: str
    priority: int
    specs: List[RunSpec]
    exec_key: str
    state: str = QUEUED
    submitted_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    owner: Optional[str] = None
    error: Optional[str] = None
    completed: int = 0
    cache_hits: int = 0
    deduped_against: Optional[str] = None
    result_path: Optional[str] = None
    events_path: Optional[str] = None

    @property
    def total(self) -> int:
        return len(self.specs)

    def to_payload(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["schema"] = JOB_SCHEMA
        payload["specs"] = [spec.to_dict() for spec in self.specs]
        payload["total"] = self.total
        return payload

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "Job":
        return validate_job(payload)


def validate_job(payload: Dict[str, Any]) -> Job:
    """Rebuild (and structurally validate) a job from its JSON payload."""
    if payload.get("schema") != JOB_SCHEMA:
        raise ValueError(f"unsupported job schema {payload.get('schema')!r} "
                         f"(expected {JOB_SCHEMA})")
    if payload.get("state") not in JOB_STATES:
        raise ValueError(f"unknown job state {payload.get('state')!r}")
    known = {f.name for f in dataclasses.fields(Job)}
    kwargs = {name: value for name, value in payload.items()
              if name in known}
    kwargs["specs"] = [RunSpec.from_dict(spec)
                       for spec in payload["specs"]]
    return Job(**kwargs)


class JobQueue:
    """The persistent pending/running/done queue under one state directory.

    Methods mutate job files atomically but do **not** lock against each
    other — the owning daemon serialises queue access under one
    ``threading.Lock`` (a queue belongs to exactly one daemon process; the
    on-disk states exist so a *killed* daemon restarts without losing or
    duplicating work, not so two daemons can share a queue).
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.pending_dir = self.root / "pending"
        self.running_dir = self.root / "running"
        self.done_dir = self.root / "done"

    def prepare(self) -> "JobQueue":
        for directory in (self.pending_dir, self.running_dir, self.done_dir):
            directory.mkdir(parents=True, exist_ok=True)
        return self

    def _dir_for(self, state: str) -> Path:
        if state == QUEUED:
            return self.pending_dir
        if state == RUNNING:
            return self.running_dir
        return self.done_dir

    def path_for(self, job: Job) -> Path:
        return self._dir_for(job.state) / f"{job.id}.json"

    # -- transitions ---------------------------------------------------------------

    def submit(self, job: Job) -> Path:
        """Persist a freshly submitted job into ``pending/``."""
        self.prepare()
        job.state = QUEUED
        return atomic_write_json(self.path_for(job), job.to_payload())

    def claim(self, job: Job, owner: str) -> Job:
        """Move one pending job to ``running/`` (record first, then rename).

        The record is rewritten *in pending* with the new state before the
        rename: whichever instant a crash hits, the file is whole and
        :meth:`requeue_running` (or a pending re-scan) recovers it.
        """
        source = self.pending_dir / f"{job.id}.json"
        job.state = RUNNING
        job.owner = owner
        job.started_unix = time.time()
        atomic_write_json(source, job.to_payload())
        os.replace(source, self.path_for(job))
        return job

    def finish(self, job: Job, state: str, *,
               error: Optional[str] = None) -> Job:
        """Move a job to ``done/`` with a terminal state."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"not a terminal job state: {state!r}")
        source = self.path_for(job)
        job.state = state
        job.error = error
        job.finished_unix = time.time()
        target = self.path_for(job)
        atomic_write_json(target, job.to_payload())
        if source != target:
            source.unlink(missing_ok=True)
        return job

    def release(self, job: Job) -> Job:
        """Return a running job to ``pending/`` (drain or worker failure).

        Progress fields are reset — the re-execution re-counts them — but
        the submission identity (id, tenant, priority, submit time) is
        kept, so a released job neither loses its queue position class nor
        duplicates: the run cache carries everything already computed.
        """
        source = self.path_for(job)
        job.state = QUEUED
        job.owner = None
        job.started_unix = None
        job.completed = 0
        job.cache_hits = 0
        target = self.path_for(job)
        atomic_write_json(target, job.to_payload())
        if source != target:
            source.unlink(missing_ok=True)
        return job

    def requeue_running(self) -> List[Job]:
        """Startup recovery: every job a dead daemon left in ``running/``.

        Each is atomically rewritten as queued and returned to ``pending/``;
        the caller (the restarting daemon) schedules them normally and the
        content-addressed cache turns the re-execution into a resume.
        """
        self.prepare()
        requeued = []
        for path in sorted(self.running_dir.glob("*.json")):
            job = self._load(path)
            if job is None:
                continue
            requeued.append(self.release(job))
        return requeued

    # -- inspection ----------------------------------------------------------------

    def _load(self, path: Path) -> Optional[Job]:
        try:
            return validate_job(
                json.loads(path.read_text(encoding="utf-8")))
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, ValueError, KeyError, TypeError):
            # A torn or foreign file must not wedge the queue; atomic
            # writes make this unreachable for our own records.
            return None

    def _scan(self, directory: Path) -> List[Job]:
        jobs = [self._load(path) for path in sorted(directory.glob("*.json"))]
        return [job for job in jobs if job is not None]

    def pending(self) -> List[Job]:
        return self._scan(self.pending_dir)

    def running(self) -> List[Job]:
        return self._scan(self.running_dir)

    def finished(self) -> List[Job]:
        return self._scan(self.done_dir)

    def all_jobs(self) -> List[Job]:
        return self.pending() + self.running() + self.finished()

    def get(self, job_id: str) -> Optional[Job]:
        for directory in (self.pending_dir, self.running_dir, self.done_dir):
            job = self._load(directory / f"{job_id}.json")
            if job is not None:
                return job
        return None

    def next_id(self) -> str:
        """A fresh job id, unique across restarts of the same state dir.

        Ids are ordinal (``j000001`` ...) so listings sort in submission
        order; the max-scan keeps them unique after a restart without a
        separate counter file to keep crash-consistent.
        """
        self.prepare()
        highest = 0
        for directory in (self.pending_dir, self.running_dir, self.done_dir):
            for path in directory.glob("j*.json"):
                try:
                    highest = max(highest, int(path.stem[1:]))
                except ValueError:
                    continue
        return f"j{highest + 1:06d}"
