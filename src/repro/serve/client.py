"""HTTP client for the ``repro serve`` daemon, and the ``serve:`` executor.

:class:`ServeClient` is the typed wrapper over the daemon's JSON API —
submit, list, watch, fetch results, cancel, shut down — built on
``urllib.request`` only (the ``http.client`` layer underneath decodes the
daemon's chunked event stream transparently, so a long-poll segment is just
a blocking read).

:class:`ServeExecutor` plugs the daemon into the executor protocol:
``Session(executor="serve:http://host:port")`` makes ``Session.submit()``
POST the specs as a job and return a normal streaming
:class:`~repro.exec.ExperimentHandle` whose events are relayed from the
daemon's ``repro.events/1`` stream.  Run records in that stream carry the
content-addressed cache ``key`` of each run; the executor maps keys back to
the *local* spec indexes (the daemon may execute a deduped twin submitted
in a different order) and pulls each :class:`~repro.platforms.base.RunResult`
from the daemon's cache endpoint, so ``handle.result()`` folds exactly the
same matrix — bit-identical — as a local ``Session.submit()`` on the same
specs.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..exec.handle import CancelToken, ExperimentHandle
from ..runner.artifacts import (
    config_hash_of,
    experiment_from_artifact,
    run_cache_key,
    run_result_from_dict,
)
from ..runner.events import (
    CACHE_HIT,
    JOB_FINISH,
    RUN_FINISH,
    RUN_START,
    Event,
    event_from_record,
)
from ..runner.specs import RunSpec
from .jobs import ACTIVE_STATES, CANCELLED, DEFAULT_TENANT, DONE, FAILED

#: Default per-request timeout (seconds); event long-polls add their wait.
DEFAULT_TIMEOUT_S = 30.0


class ServeClientError(RuntimeError):
    """A request the daemon rejected (carries the HTTP status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServeUnavailable(RuntimeError):
    """The daemon could not be reached at all."""


class ServeClient:
    """Typed access to one serve daemon's HTTP API, as one tenant."""

    def __init__(self, url: str, *, tenant: str = DEFAULT_TENANT,
                 timeout: float = DEFAULT_TIMEOUT_S) -> None:
        self.url = url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    @classmethod
    def from_state_dir(cls, state_dir: Path, *,
                       tenant: str = DEFAULT_TENANT,
                       timeout: float = DEFAULT_TIMEOUT_S) -> "ServeClient":
        """Connect via the ``server.json`` record a running daemon wrote."""
        record_path = Path(state_dir) / "server.json"
        try:
            record = json.loads(record_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ServeUnavailable(
                f"no running daemon found under {state_dir} "
                f"({record_path}: {error})") from None
        return cls(record["url"], tenant=tenant, timeout=timeout)

    # -- plumbing --------------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None,
                 timeout: Optional[float] = None) -> Any:
        body = None if payload is None \
            else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.url + path, data=body, method=method,
            headers={"Content-Type": "application/json"} if body else {})
        try:
            with urllib.request.urlopen(
                    request, timeout=timeout or self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            detail = error.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise ServeClientError(error.code, detail) from None
        except urllib.error.URLError as error:
            raise ServeUnavailable(
                f"cannot reach serve daemon at {self.url}: "
                f"{error.reason}") from None

    # -- verbs -----------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/status")

    def jobs(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        query = f"?tenant={urllib.parse.quote(tenant)}" if tenant else ""
        return self._request("GET", f"/v1/jobs{query}")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET",
                             f"/v1/jobs/{urllib.parse.quote(job_id)}")

    def submit(self, specs: Sequence[RunSpec], *, name: str = "experiment",
               priority: int = 0,
               tenant: Optional[str] = None) -> Dict[str, Any]:
        """POST one job; returns its ``repro.job/1`` record (sans specs)."""
        return self._request("POST", "/v1/jobs", {
            "tenant": tenant or self.tenant,
            "name": name,
            "priority": priority,
            "specs": [spec.to_dict() for spec in specs],
        })

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request(
            "POST", f"/v1/jobs/{urllib.parse.quote(job_id)}/cancel", {})

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        return self._request("POST", "/v1/shutdown", {"drain": drain})

    def result(self, job_id: str) -> Dict[str, Any]:
        """The finished job's ``repro.experiment/1`` artifact payload."""
        return self._request(
            "GET", f"/v1/jobs/{urllib.parse.quote(job_id)}/result")

    def experiment(self, job_id: str):
        """The finished job's result as an ExperimentResult."""
        return experiment_from_artifact(self.result(job_id))

    def cache_entry(self, key: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/cache/{key}")

    # -- the event stream ------------------------------------------------------------

    def events(self, job_id: str, offset: int = 0,
               wait: float = 10.0) -> Tuple[List[Event], int]:
        """One long-poll segment of the job's ``repro.events/1`` stream.

        Returns the parsed events plus the byte offset to resume from.  The
        daemon clamps an offset past EOF back to zero (a resumed execution
        truncated the stream) and echoes the offset it used, so resuming
        just works; run-event consumers dedupe on index/key, making a
        replayed prefix harmless.
        """
        path = (f"/v1/jobs/{urllib.parse.quote(job_id)}/events"
                f"?offset={offset}&wait={wait}")
        request = urllib.request.Request(self.url + path, method="GET")
        try:
            with urllib.request.urlopen(
                    request, timeout=wait + self.timeout) as response:
                start = int(response.headers.get("X-Repro-Events-Offset",
                                                 offset))
                data = response.read()
        except urllib.error.HTTPError as error:
            detail = error.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise ServeClientError(error.code, detail) from None
        except urllib.error.URLError as error:
            raise ServeUnavailable(
                f"cannot reach serve daemon at {self.url}: "
                f"{error.reason}") from None
        events = _parse_event_lines(data)
        return events, start + len(data)

    def watch(self, job_id: str, *, offset: int = 0,
              wait: float = 10.0) -> Iterator[Event]:
        """Yield the job's events until it reaches a terminal state.

        Ends at the job's own terminal ``job-finish`` marker; as a
        belt-and-braces fallback (the marker can be truncated away by a
        drain/restart), an empty segment on an already-terminal job record
        also ends the stream.
        """
        while True:
            events, offset = self.events(job_id, offset, wait=wait)
            terminal = False
            for event in events:
                yield event
                if event.kind == JOB_FINISH and event.job == job_id:
                    terminal = True
            if terminal:
                return
            if not events and \
                    self.job(job_id)["state"] not in ACTIVE_STATES:
                return

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the job is terminal; returns its final record.

        Long-polls the event stream between state checks (the deadline is
        enforced per segment, so a silent job cannot hang past *timeout*).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        offset = 0
        while True:
            record = self.job(job_id)
            if record["state"] not in ACTIVE_STATES:
                return record
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still active after {timeout:.1f}s")
            _events, offset = self.events(job_id, offset, wait=5.0)


def _parse_event_lines(data: bytes) -> List[Event]:
    """Parse relayed JSONL bytes, skipping foreign/torn lines."""
    events: List[Event] = []
    for raw in data.split(b"\n"):
        if not raw:
            continue
        try:
            payload = json.loads(raw.decode("utf-8"))
            events.append(event_from_record(payload))
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError,
                TypeError):
            continue
    return events


# ---------------------------------------------------------------------------
# The executor tier
# ---------------------------------------------------------------------------


class ServeExecutor:
    """Run submissions through a serve daemon (``executor="serve:<url>"``).

    The handle's drive generator relays the daemon's event stream: run
    records are re-indexed from their cache ``key`` into the local spec
    order and their results fetched from the daemon's cache endpoint, so
    streaming consumption (``iter_results``/``progress``) and the final
    index-ordered fold behave exactly like the local tiers.  Requires the
    local session's scale + config to match the daemon's (checked against
    the daemon's ``config_hash`` at submit time) — otherwise the cache
    keys, and therefore the results, would not correspond.
    """

    name = "serve"

    def __init__(self, url: str, *, tenant: str = DEFAULT_TENANT,
                 priority: int = 0, poll_s: float = 5.0) -> None:
        self.client = ServeClient(url, tenant=tenant)
        self.priority = priority
        self.poll_s = poll_s

    def submit(self, specs: Sequence[RunSpec], ctx) -> ExperimentHandle:
        specs = list(specs)
        status = self.client.status()
        local_hash = config_hash_of(ctx.runner.config)
        if status["config_hash"] != local_hash:
            raise ServeClientError(
                409,
                f"daemon at {self.client.url} runs config "
                f"{status['config_hash'][:12]} (scale {status['scale']}) "
                f"but this session is configured for {local_hash[:12]}; "
                f"point the session at the daemon's scale")
        indexes_for_key: Dict[str, List[int]] = {}
        for index, spec in enumerate(specs):
            key = run_cache_key(spec, ctx.runner.config, ctx.runner.scale)
            indexes_for_key.setdefault(key, []).append(index)
        record = self.client.submit(specs, name=ctx.name,
                                    priority=self.priority)
        token = CancelToken()
        drive = self._drive(record["id"], specs, indexes_for_key, token)
        return ExperimentHandle(ctx.name, specs, ctx.runner.scale, drive,
                                token, executor=self.name,
                                events_path=ctx.events_path)

    # -- the relay -------------------------------------------------------------------

    def _drive(self, job_id: str, specs: List[RunSpec],
               indexes_for_key: Dict[str, List[int]],
               token: CancelToken) -> Iterator[Event]:
        seen: set = set()
        offset = 0
        cancelled_sent = False
        while True:
            if token.cancelled and not cancelled_sent:
                self.client.cancel(job_id)
                cancelled_sent = True
            events, offset = self.client.events(job_id, offset,
                                                wait=self.poll_s)
            terminal_state: Optional[str] = None
            for event in events:
                if event.kind == JOB_FINISH and event.job == job_id:
                    terminal_state = event.state
                    continue
                if event.kind == RUN_START:
                    continue  # foreign indexes; starts are not re-mapped
                if event.kind not in (RUN_FINISH, CACHE_HIT) \
                        or event.key is None:
                    continue
                for index in indexes_for_key.get(event.key, ()):
                    if index in seen:
                        continue
                    seen.add(index)
                    yield self._run_event(event, index)
            if terminal_state is None and not events:
                state = self.client.job(job_id)["state"]
                if state not in ACTIVE_STATES:
                    terminal_state = state
            if terminal_state is None:
                continue
            if terminal_state == FAILED:
                record = self.client.job(job_id)
                raise RuntimeError(
                    f"serve job {job_id} failed: "
                    f"{record.get('error') or 'unknown error'}")
            if terminal_state == CANCELLED:
                return
            if terminal_state == DONE:
                # Belt and braces: fill any run the relayed stream missed
                # (e.g. truncated by a drain/restart) from the artifact.
                missing = [index for indexes in indexes_for_key.values()
                           for index in indexes if index not in seen]
                if missing:
                    experiment = self.client.experiment(job_id)
                    for index in missing:
                        seen.add(index)
                        platform_key, workload_key = \
                            specs[index].result_key
                        result = experiment.get(platform_key, workload_key)
                        yield Event(kind=CACHE_HIT, index=index,
                                    platform_key=platform_key,
                                    workload_key=workload_key,
                                    cache_hit=True,
                                    operations_per_second=result
                                    .operations_per_second,
                                    remote=True, result=result)
                return

    def _run_event(self, event: Event, index: int) -> Event:
        """Re-index a relayed run record and attach its fetched result."""
        entry = self.client.cache_entry(event.key)
        result = run_result_from_dict(entry["result"])
        return Event(kind=event.kind, unix=event.unix, index=index,
                     platform_key=event.platform_key,
                     workload_key=event.workload_key,
                     cache_hit=event.cache_hit,
                     operations_per_second=event.operations_per_second,
                     key=event.key, remote=True, result=result)


__all__ = [
    "ServeClient",
    "ServeClientError",
    "ServeExecutor",
    "ServeUnavailable",
]
