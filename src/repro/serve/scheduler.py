"""Multi-tenant job scheduling: priority first, then per-tenant fairness.

The daemon's worker fleet asks :func:`pick_next` which pending job to claim.
The policy, in strict order:

1. **No concurrent duplicates** — a pending job whose execution key is
   already running is never started; the running execution's worker adopts
   it on completion (see the dedup path in :mod:`repro.serve.server`), so
   one execution serves every subscriber.
2. **Priority** — higher ``priority`` strictly wins.  Priorities are
   per-submission integers (default 0); a tenant paying for a rush job
   jumps the whole band below it.
3. **Per-tenant fair queueing** — within a priority band, the tenant with
   the fewest jobs currently running goes first (a tenant streaming fifty
   submissions cannot starve a tenant submitting one), ties broken by who
   was served *least recently* (round-robin over tenants, not over jobs).
4. **FIFO** — within one tenant, submission order.

The function is pure — it inspects queue snapshots and returns a choice —
so the policy is unit-testable without a daemon, and the daemon applies it
under its scheduler lock to make pick-and-claim atomic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .jobs import Job


def pick_next(pending: Sequence[Job], running: Sequence[Job],
              last_served: Dict[str, int]) -> Optional[Job]:
    """Choose the next job to claim, or ``None`` when nothing is startable.

    *last_served* maps tenant -> a monotonically increasing serial stamped
    by the caller each time a tenant's job is claimed (missing = never
    served, which sorts first).  The caller updates it after claiming.
    """
    running_keys = {job.exec_key for job in running}
    in_flight: Dict[str, int] = {}
    for job in running:
        in_flight[job.tenant] = in_flight.get(job.tenant, 0) + 1

    startable = [job for job in pending if job.exec_key not in running_keys]
    if not startable:
        return None

    def rank(job: Job):
        return (-job.priority,
                in_flight.get(job.tenant, 0),
                last_served.get(job.tenant, -1),
                job.submitted_unix,
                job.id)

    return min(startable, key=rank)


def tenant_snapshot(pending: Sequence[Job],
                    running: Sequence[Job]) -> Dict[str, Dict[str, int]]:
    """Per-tenant ``{queued, running}`` counts for the status endpoint."""
    tenants: Dict[str, Dict[str, int]] = {}
    for jobs, state in ((pending, "queued"), (running, "running")):
        for job in jobs:
            entry = tenants.setdefault(job.tenant,
                                       {"queued": 0, "running": 0})
            entry[state] += 1
    return tenants


def waiting_duplicates(pending: Sequence[Job], exec_key: str,
                       exclude: Optional[str] = None) -> List[Job]:
    """Pending jobs sharing *exec_key* (the adoption set of a finishing
    execution), oldest first."""
    jobs = [job for job in pending
            if job.exec_key == exec_key and job.id != exclude]
    return sorted(jobs, key=lambda job: (job.submitted_unix, job.id))
