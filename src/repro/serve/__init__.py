"""repro.serve: the long-running multi-tenant experiment service.

A daemon (:class:`ServeDaemon`) that owns the content-addressed run cache
and a crash-safe persistent job queue, accepts experiment submissions over
HTTP/JSON, multiplexes them across a bounded worker fleet with per-tenant
fair scheduling and submission dedup, and streams per-run progress as
``repro.events/1`` JSONL.  :class:`ServeClient` is the typed client;
``Session(executor="serve:<url>")`` routes ordinary ``submit()`` calls
through a daemon via :class:`ServeExecutor`.  Start one with
``python -m repro serve start --state DIR``.
"""

from .client import (
    ServeClient,
    ServeClientError,
    ServeExecutor,
    ServeUnavailable,
)
from .jobs import (
    ACTIVE_STATES,
    CANCELLED,
    DEFAULT_TENANT,
    DONE,
    FAILED,
    JOB_SCHEMA,
    JOB_STATES,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobQueue,
    execution_key,
)
from .scheduler import pick_next, tenant_snapshot, waiting_duplicates
from .server import (
    SERVER_SCHEMA,
    STATUS_SCHEMA,
    ServeConfig,
    ServeDaemon,
    ServeError,
    server_record_path,
)

__all__ = [
    "ACTIVE_STATES",
    "CANCELLED",
    "DEFAULT_TENANT",
    "DONE",
    "FAILED",
    "JOB_SCHEMA",
    "JOB_STATES",
    "QUEUED",
    "RUNNING",
    "SERVER_SCHEMA",
    "STATUS_SCHEMA",
    "TERMINAL_STATES",
    "Job",
    "JobQueue",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "ServeExecutor",
    "ServeUnavailable",
    "execution_key",
    "pick_next",
    "server_record_path",
    "tenant_snapshot",
    "waiting_duplicates",
]
