"""``python -m repro serve`` — operate the long-running experiment service.

Verbs
-----

``serve start --state DIR``
    Run a daemon in the foreground over *DIR* (queue, cache, events,
    per-tenant results).  ``--fleet`` bounds the concurrent jobs,
    ``--job-executor``/``--job-workers`` shape each job's execution, and
    the scale knobs mirror ``repro run`` (the scale is daemon-wide: every
    tenant's submissions execute under it).  SIGTERM/SIGINT drain
    gracefully — in-flight runs finish and persist, their jobs return to
    the queue, and a restarted daemon resumes without duplicating or
    dropping work.

``serve status [--watch]``
    One status line (or a polling view, mirroring ``shard status
    --watch``): queue depth by state, per-tenant in-flight counts, and the
    daemon-lifetime run cache-hit rate.  ``--until-idle`` makes ``--watch``
    exit once nothing is queued or running (what CI polls).

``serve submit [EXPERIMENT | --platforms ... --workloads ...]``
    Submit a preset or ad-hoc matrix as one job (``--tenant``,
    ``--priority`` set the scheduling identity) and print its job id.
    ``--wait`` blocks streaming progress until the job is terminal;
    ``--output`` then writes the ``repro.experiment/1`` artifact locally.

``serve watch JOB``
    Tail a job's ``repro.events/1`` stream (long-poll) until it is
    terminal; exits 0 only when the job finished cleanly.

``serve shutdown``
    Stop the daemon (default: drain).
"""

from __future__ import annotations

import argparse
import signal
import sys
import time
from pathlib import Path

from ..runner.artifacts import atomic_write_json
from ..runner.cli import (
    _add_matrix_arguments,
    _add_scale_arguments,
    _build_scale,
    _select_single_preset,
)
from ..runner.events import CACHE_HIT, JOB_FINISH, RUN_FINISH, RUN_START
from ..runner.specs import matrix_specs
from .client import ServeClient, ServeClientError, ServeUnavailable
from .jobs import ACTIVE_STATES, DEFAULT_TENANT, DONE
from .server import ServeConfig, ServeDaemon


def register(subparsers) -> None:
    """Attach the ``serve`` verb tree to the main ``repro`` parser."""
    serve = subparsers.add_parser(
        "serve", help="long-running multi-tenant experiment service")
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    start = serve_sub.add_parser(
        "start", help="run a serve daemon in the foreground")
    start.add_argument("--state", type=Path, required=True,
                       help="state directory (queue, cache, events, "
                            "per-tenant results)")
    start.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    start.add_argument("--port", type=int, default=0,
                       help="bind port (default: 0 = ephemeral; the chosen "
                            "port lands in <state>/server.json)")
    start.add_argument("--fleet", type=int, default=2,
                       help="worker threads multiplexing jobs (default: 2)")
    start.add_argument("--job-workers", type=int, default=1,
                       help="process-pool size inside each job "
                            "(default: 1)")
    start.add_argument("--job-executor", default="serial",
                       choices=("serial", "pool"),
                       help="execution tier each job runs under "
                            "(default: serial — the fleet provides the "
                            "concurrency)")
    _add_scale_arguments(start)
    start.set_defaults(handler=cmd_serve_start)

    status = serve_sub.add_parser(
        "status", help="queue depth, per-tenant in-flight, cache-hit rate")
    _add_endpoint_arguments(status)
    status.add_argument("--watch", action="store_true",
                        help="keep polling (like `shard status --watch`)")
    status.add_argument("--interval", type=float, default=2.0,
                        help="poll interval in seconds for --watch "
                             "(default: 2)")
    status.add_argument("--until-idle", action="store_true",
                        help="with --watch: exit 0 once nothing is queued "
                             "or running")
    status.set_defaults(handler=cmd_serve_status)

    submit = serve_sub.add_parser(
        "submit", help="submit one experiment as a service job")
    submit.add_argument("experiment", nargs="?", metavar="EXPERIMENT",
                        help="preset name (default: 'smoke' with --smoke)")
    _add_matrix_arguments(submit)
    submit.add_argument("--smoke", action="store_true",
                        help="submit the CI smoke preset")
    _add_endpoint_arguments(submit)
    submit.add_argument("--tenant", default=DEFAULT_TENANT,
                        help=f"tenant namespace for scheduling and results "
                             f"(default: {DEFAULT_TENANT})")
    submit.add_argument("--name", default=None,
                        help="job name (default: the preset name)")
    submit.add_argument("--priority", type=int, default=0,
                        help="scheduling priority; higher runs first "
                             "(default: 0)")
    submit.add_argument("--wait", action="store_true",
                        help="stream progress until the job is terminal")
    submit.add_argument("--output", type=Path, default=None,
                        help="with --wait: write the finished artifact here")
    submit.set_defaults(handler=cmd_serve_submit)

    watch = serve_sub.add_parser(
        "watch", help="tail one job's event stream until it is terminal")
    watch.add_argument("job", metavar="JOB", help="job id (e.g. j000001)")
    _add_endpoint_arguments(watch)
    watch.set_defaults(handler=cmd_serve_watch)

    shutdown = serve_sub.add_parser(
        "shutdown", help="stop the daemon (default: graceful drain)")
    _add_endpoint_arguments(shutdown)
    shutdown.add_argument("--no-drain", action="store_true",
                          help="do not wait for in-flight runs before "
                               "tearing the HTTP server down (jobs are "
                               "still requeued, never lost)")
    shutdown.set_defaults(handler=cmd_serve_shutdown)


def _add_endpoint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--url", default=None,
                        help="daemon endpoint (e.g. http://127.0.0.1:8642)")
    parser.add_argument("--state", type=Path, default=None,
                        help="state directory of a running daemon (reads "
                             "its server.json); alternative to --url")


def _client(args: argparse.Namespace,
            tenant: str = DEFAULT_TENANT) -> ServeClient:
    if args.url:
        return ServeClient(args.url, tenant=tenant)
    if args.state:
        return ServeClient.from_state_dir(args.state, tenant=tenant)
    raise ServeUnavailable("give --url or --state to locate the daemon")


def cmd_serve_start(args: argparse.Namespace) -> int:
    config = ServeConfig(state_dir=args.state, host=args.host,
                         port=args.port, fleet=args.fleet,
                         job_workers=args.job_workers,
                         job_executor=args.job_executor,
                         scale=_build_scale(args))
    try:
        daemon = ServeDaemon(config).start()
    except (RuntimeError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"serve daemon listening at {daemon.url} "
          f"(state {daemon.state_dir}, fleet {config.fleet}, "
          f"{config.job_executor} jobs x{config.job_workers} workers)",
          flush=True)

    def _drain(_signum, _frame) -> None:
        print("serve daemon draining: in-flight runs will finish and "
              "persist; queued jobs resume on restart", file=sys.stderr,
              flush=True)
        daemon.request_shutdown(drain=True)

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    daemon.wait()
    print("serve daemon stopped", flush=True)
    return 0


def _format_status_line(status: dict) -> str:
    queue = status["queue"]
    runs = status["runs"]
    tenants = status["tenants"]
    tenant_part = ", ".join(
        f"{tenant}={counts['running']}r/{counts['queued']}q"
        for tenant, counts in sorted(tenants.items())) or "idle"
    return (f"serve {status['url']}: "
            f"{queue['queued']} queued, {queue['running']} running, "
            f"{queue['done']} done, {queue['failed']} failed, "
            f"{queue['cancelled']} cancelled | "
            f"runs {runs['runs_completed']} "
            f"({runs['cache_hit_rate'] * 100.0:.0f}% cache hits, "
            f"{runs['executions']} executions, "
            f"{runs['deduped_jobs']} deduped) | "
            f"tenants: {tenant_part}"
            + (" | DRAINING" if status.get("draining") else ""))


def cmd_serve_status(args: argparse.Namespace) -> int:
    try:
        client = _client(args)
    except ServeUnavailable as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not args.watch:
        try:
            status = client.status()
        except (ServeUnavailable, ServeClientError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(_format_status_line(status))
        idle = status["queue"]["queued"] == 0 \
            and status["queue"]["running"] == 0
        return 0 if idle else 3

    # --watch: the `shard status --watch` idiom — one line per poll so an
    # operator (or CI log) sees the queue advance, not just the end state.
    while True:
        try:
            status = client.status()
        except (ServeUnavailable, ServeClientError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(_format_status_line(status), flush=True)
        if args.until_idle and status["queue"]["queued"] == 0 \
                and status["queue"]["running"] == 0:
            return 0
        time.sleep(args.interval)


def cmd_serve_submit(args: argparse.Namespace) -> int:
    try:
        preset = _select_single_preset(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    specs = matrix_specs(list(preset.platforms), list(preset.workloads))
    try:
        client = _client(args, tenant=args.tenant)
        job = client.submit(specs, name=args.name or preset.name,
                            priority=args.priority)
    except (ServeUnavailable, ServeClientError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    dedup = (f" (deduped against {job['deduped_against']})"
             if job.get("deduped_against") else "")
    print(f"{job['id']}: submitted {job['name']} as tenant "
          f"{job['tenant']} ({job['total']} runs, priority "
          f"{job['priority']}){dedup}")
    if not args.wait:
        return 0
    code = _watch_job(client, job["id"])
    if code == 0 and args.output is not None:
        atomic_write_json(args.output, client.result(job["id"]))
        print(f"artifact -> {args.output}")
    return code


def _watch_job(client: ServeClient, job_id: str) -> int:
    """Stream one job's events to stdout; exit code mirrors its state."""
    try:
        for event in client.watch(job_id):
            if event.kind in (RUN_FINISH, CACHE_HIT):
                hit = " (cached)" if event.cache_hit else ""
                print(f"  {event.kind:9s} {event.platform_key}/"
                      f"{event.workload_key} "
                      f"{event.operations_per_second:,.0f} ops/s{hit}",
                      flush=True)
            elif event.kind == RUN_START:
                print(f"  {event.kind:9s} {event.platform_key}/"
                      f"{event.workload_key}", flush=True)
            elif event.kind == JOB_FINISH and event.job == job_id:
                print(f"  {event.kind:9s} state={event.state}", flush=True)
        record = client.job(job_id)
    except (ServeUnavailable, ServeClientError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    state = record["state"]
    if state in ACTIVE_STATES:
        # A drain/restart put the job back in the queue mid-watch; the
        # stream ended but the job is alive — report, do not block forever.
        print(f"{job_id}: still {state} (daemon restarted?); "
              f"re-run `repro serve watch {job_id}`")
        return 3
    suffix = f": {record['error']}" if record.get("error") else ""
    print(f"{job_id}: {state} ({record['completed']}/{record['total']} "
          f"runs, {record['cache_hits']} cached){suffix}")
    return 0 if state == DONE else 1


def cmd_serve_watch(args: argparse.Namespace) -> int:
    try:
        client = _client(args)
    except ServeUnavailable as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return _watch_job(client, args.job)


def cmd_serve_shutdown(args: argparse.Namespace) -> int:
    try:
        client = _client(args)
        reply = client.shutdown(drain=not args.no_drain)
    except (ServeUnavailable, ServeClientError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    mode = "draining" if reply.get("drain") else "stopping"
    print(f"serve daemon {mode}")
    return 0
