"""Central configuration dataclasses for the HAMS reproduction.

The defaults mirror Table II of the paper (gem5 specification) plus the
device parameters quoted throughout Sections II, III and V:

* quad-core 2 GHz CPU, 64 KB L1I / 64 KB L1D / 2 MB L2,
* 8 GB DDR4 NVDIMM with 128 KB MoS pages,
* 800 GB ULL-Flash with a 512 MB internal DRAM buffer,
* Z-NAND latencies of 3 us read / 100 us program,
* PCIe 3.0 x4 for the loosely-coupled (baseline) HAMS,
* DDR4-2133 with ~20 GB/s per channel for the tightly-coupled HAMS.

Every subsystem receives its configuration explicitly so experiments can
sweep a single knob (page size, footprint, queue depth, ...) without
touching module-level globals.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .units import GB, KB, MB, gb_per_s, mb_per_s, us


# ---------------------------------------------------------------------------
# Flash / SSD
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlashTiming:
    """Raw NAND array timing for a single die operation."""

    read_ns: float
    program_ns: float
    erase_ns: float

    @staticmethod
    def znand() -> "FlashTiming":
        """Z-NAND (SLC 3D V-NAND): 3 us read, 100 us program."""
        return FlashTiming(read_ns=us(3), program_ns=us(100), erase_ns=us(1000))

    @staticmethod
    def vnand_tlc() -> "FlashTiming":
        """Conventional V-NAND TLC: 15x read / 7x program slower than Z-NAND."""
        return FlashTiming(read_ns=us(45), program_ns=us(700), erase_ns=us(3500))


@dataclass(frozen=True)
class FlashGeometry:
    """Physical organisation of the flash complex.

    The capacity exposed to the host is
    ``channels * packages * dies * planes * blocks * pages * page_size``
    scaled down by the over-provisioning factor.
    """

    channels: int = 8
    packages_per_channel: int = 4
    dies_per_package: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 256
    pages_per_block: int = 256
    page_size: int = KB(4)
    overprovision: float = 0.07

    @property
    def dies_total(self) -> int:
        return self.channels * self.packages_per_channel * self.dies_per_package

    @property
    def planes_total(self) -> int:
        return self.dies_total * self.planes_per_die

    @property
    def pages_per_plane(self) -> int:
        return self.blocks_per_plane * self.pages_per_block

    @property
    def raw_capacity_bytes(self) -> int:
        return self.planes_total * self.pages_per_plane * self.page_size

    @property
    def usable_capacity_bytes(self) -> int:
        return int(self.raw_capacity_bytes * (1.0 - self.overprovision))

    @property
    def physical_pages(self) -> int:
        return self.planes_total * self.pages_per_plane

    @property
    def logical_pages(self) -> int:
        return self.usable_capacity_bytes // self.page_size


@dataclass(frozen=True)
class SSDConfig:
    """Configuration for one simulated SSD device.

    ``split_channels`` reproduces the ULL-Flash datapath optimisation that
    splits one 4 KB host request into two half-page operations issued to two
    channels simultaneously, halving the on-chip DMA time (Section II-C).
    """

    name: str = "ull-flash"
    geometry: FlashGeometry = field(default_factory=FlashGeometry)
    timing: FlashTiming = field(default_factory=FlashTiming.znand)
    split_channels: bool = True
    channel_bw_bytes_per_ns: float = mb_per_s(800)
    dram_buffer_bytes: int = MB(512)
    dram_buffer_hit_ns: float = 500.0
    dram_buffer_enabled: bool = True
    firmware_latency_ns: float = 800.0
    max_outstanding: int = 64
    # Fraction of the internal DRAM buffer reserved for the FTL mapping
    # table rather than data caching (FlatFlash discussion, Section VII).
    mapping_table_fraction: float = 0.25

    @staticmethod
    def ull_flash(capacity_bytes: int = GB(800)) -> "SSDConfig":
        """The 800 GB Z-SSD prototype used throughout the paper."""
        geometry = _geometry_for_capacity(capacity_bytes, channels=8)
        return SSDConfig(name="ull-flash", geometry=geometry,
                         timing=FlashTiming.znand())

    @staticmethod
    def nvme_ssd(capacity_bytes: int = GB(400)) -> "SSDConfig":
        """A conventional high-performance NVMe SSD (Intel 750-class)."""
        geometry = _geometry_for_capacity(capacity_bytes, channels=8)
        return SSDConfig(name="nvme-ssd", geometry=geometry,
                         timing=FlashTiming.vnand_tlc(),
                         split_channels=False,
                         firmware_latency_ns=3000.0)

    @staticmethod
    def sata_ssd(capacity_bytes: int = GB(256)) -> "SSDConfig":
        """A SATA SSD (Intel 535-class); link bandwidth capped at 550 MB/s."""
        geometry = _geometry_for_capacity(capacity_bytes, channels=4)
        return SSDConfig(name="sata-ssd", geometry=geometry,
                         timing=FlashTiming.vnand_tlc(),
                         split_channels=False,
                         channel_bw_bytes_per_ns=mb_per_s(400),
                         firmware_latency_ns=8000.0,
                         max_outstanding=32)


def _geometry_for_capacity(capacity_bytes: int, channels: int) -> FlashGeometry:
    """Derive a flash geometry whose usable capacity covers *capacity_bytes*.

    Channel/die/plane counts are fixed by the device class; the block count
    per plane is solved so that the raw capacity (plus over-provisioning)
    reaches the requested size.
    """
    base = FlashGeometry(channels=channels)
    pages_needed = capacity_bytes / (1.0 - base.overprovision) / base.page_size
    pages_per_plane = pages_needed / base.planes_total
    blocks_per_plane = max(1, int(pages_per_plane / base.pages_per_block) + 1)
    return replace(base, blocks_per_plane=blocks_per_plane)


# ---------------------------------------------------------------------------
# Interconnect
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PCIeConfig:
    """PCIe link used between the MCH root complex and an NVMe SSD."""

    lanes: int = 4
    per_lane_bw_bytes_per_ns: float = gb_per_s(1.0)
    # Transaction-layer packet framing cost (encapsulation + header parsing).
    packet_overhead_ns: float = 250.0
    max_payload_bytes: int = 256

    @property
    def bandwidth_bytes_per_ns(self) -> float:
        return self.lanes * self.per_lane_bw_bytes_per_ns


@dataclass(frozen=True)
class SATAConfig:
    """SATA 3.0 link (for the SATA SSD comparison point in Figure 6)."""

    bandwidth_bytes_per_ns: float = mb_per_s(550)
    command_overhead_ns: float = 5000.0


@dataclass(frozen=True)
class DDRConfig:
    """DDR4 channel timing (DDR4-2133 RDIMM, Table II / Section V)."""

    channel_bw_bytes_per_ns: float = gb_per_s(20.0)
    tCL_ns: float = 14.0
    tRCD_ns: float = 14.0
    tRP_ns: float = 14.0
    tBURST_ns: float = 3.75
    line_size: int = 64
    channels: int = 2
    ranks: int = 2
    banks_per_rank: int = 8
    # Extra cycles the advanced-HAMS register interface spends writing a 64 B
    # NVMe command into the data-buffer registers (8-beat burst, Section V-A).
    register_command_ns: float = 30.0
    lock_register_ns: float = 5.0


# ---------------------------------------------------------------------------
# Memory devices
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NVDIMMConfig:
    """NVDIMM-N module: DRAM-speed access plus supercap-backed flash backup."""

    capacity_bytes: int = GB(8)
    ddr: DDRConfig = field(default_factory=DDRConfig)
    pinned_region_bytes: int = MB(512)
    backup_bandwidth_bytes_per_ns: float = mb_per_s(400)
    restore_bandwidth_bytes_per_ns: float = mb_per_s(800)

    @property
    def cacheable_bytes(self) -> int:
        """Capacity available to the MoS cache after the pinned region."""
        return self.capacity_bytes - self.pinned_region_bytes


@dataclass(frozen=True)
class OptaneConfig:
    """Optane DC PMM analytical model (numbers from [29], [66]).

    ``internal_block_bytes`` is the 256 B access granularity that wastes
    bandwidth for fine-grained requests; the XPBuffer is a small internal
    write-combining buffer.  The bandwidths are *effective* per-DIMM values
    under mixed access streams (well below the datasheet peak), and
    ``block_overhead_ns`` is the internal serialisation cost each additional
    256 B block adds — together these reproduce the paper's observation that
    the aggregated Optane throughput is ~4.5x lower than ULL-Flash and that
    NVDIMM-N beats it by a wide margin on write-intensive workloads.
    """

    capacity_bytes: int = GB(512)
    read_latency_ns: float = 400.0
    write_latency_ns: float = 94.0
    internal_block_bytes: int = 256
    block_overhead_ns: float = 150.0
    # App Direct persistence requires cache-line writeback + fencing on every
    # store to the media, which Memory mode avoids.
    persist_write_overhead_ns: float = 1200.0
    xpbuffer_bytes: int = KB(16)
    read_bw_bytes_per_ns: float = gb_per_s(2.2)
    write_bw_bytes_per_ns: float = gb_per_s(0.8)
    dram_cache_bytes: int = 0  # Memory mode sets this to the DRAM size.


# ---------------------------------------------------------------------------
# Host (CPU, caches, OS)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CPUConfig:
    """Simplified in-order core model (quad-core ARM v8 @ 2 GHz in Table II)."""

    cores: int = 4
    frequency_ghz: float = 2.0
    base_cpi: float = 1.0

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.frequency_ghz


@dataclass(frozen=True)
class CacheConfig:
    """Two-level cache hierarchy (64 KB L1I / 64 KB L1D / 2 MB L2)."""

    l1_size_bytes: int = KB(64)
    l1_latency_ns: float = 1.0
    l2_size_bytes: int = MB(2)
    l2_latency_ns: float = 5.0
    line_size: int = 64


@dataclass(frozen=True)
class OSStackConfig:
    """Latency model of the Linux storage stack traversed by the MMF path.

    The paper measures 15-20 us of software time per page fault (Section
    III-B): page-fault handling + context switches + file system + blk-mq +
    NVMe driver.  The split below follows the Figure 7a decomposition.
    """

    page_fault_ns: float = us(4.0)
    context_switch_ns: float = us(5.0)
    filesystem_ns: float = us(3.0)
    blk_mq_ns: float = us(2.0)
    nvme_driver_ns: float = us(1.5)
    interrupt_ns: float = us(1.0)
    copy_bandwidth_bytes_per_ns: float = gb_per_s(10.0)
    readahead_pages: int = 8

    @property
    def mmap_overhead_ns(self) -> float:
        """Software time charged to the mmap/page-fault portion."""
        return self.page_fault_ns + self.context_switch_ns

    @property
    def io_stack_ns(self) -> float:
        """Software time charged to the file system / block layer / driver."""
        return (self.filesystem_ns + self.blk_mq_ns + self.nvme_driver_ns
                + self.interrupt_ns)


# ---------------------------------------------------------------------------
# NVMe protocol
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NVMeConfig:
    """NVMe queue-pair and protocol constants (Section II-C)."""

    queue_depth: int = 64 * 1024
    command_size_bytes: int = 64
    completion_size_bytes: int = 16
    doorbell_ns: float = 100.0
    msi_ns: float = 200.0
    controller_processing_ns: float = 500.0
    prp_entry_bytes: int = 8


# ---------------------------------------------------------------------------
# HAMS
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HAMSConfig:
    """Configuration of the HAMS controller inside the MCH.

    ``integration`` selects the loosely-coupled baseline (``"loose"``:
    NVDIMM on DDR4, ULL-Flash behind PCIe/NVMe) or the aggressive
    integration (``"tight"``: ULL-Flash on the DDR4 bus behind the
    register-based interface, SSD-internal DRAM removed).

    ``mode`` selects ``"persist"`` (FUA-like, at most one outstanding flush)
    or ``"extend"`` (full NVMe parallelism + journal-tag persistency).
    """

    integration: str = "loose"       # "loose" | "tight"
    mode: str = "extend"             # "persist" | "extend"
    mos_page_bytes: int = KB(128)
    tag_check_ns: float = 10.0
    cache_logic_ns: float = 20.0
    prp_pool_bytes: int = MB(512)
    wait_queue_depth: int = 256
    max_outstanding_io: int = 16

    def __post_init__(self) -> None:
        if self.integration not in ("loose", "tight"):
            raise ValueError(f"unknown integration {self.integration!r}")
        if self.mode not in ("persist", "extend"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.mos_page_bytes <= 0 or self.mos_page_bytes % KB(4) != 0:
            raise ValueError("mos_page_bytes must be a positive multiple of 4 KB")

    @property
    def is_persist(self) -> bool:
        return self.mode == "persist"

    @property
    def is_tight(self) -> bool:
        return self.integration == "tight"


# ---------------------------------------------------------------------------
# Energy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EnergyConfig:
    """Per-component power model (McPAT / MICRON calculator style).

    The absolute numbers are representative datasheet values; Figure 19 only
    depends on the relative contributions (CPU + system memory dominate the
    mmap baseline, SSD-internal DRAM adds ~17 % over the flash complex, ...).
    """

    cpu_active_w: float = 12.0
    cpu_idle_w: float = 3.0
    dram_active_w_per_gb: float = 0.375
    dram_idle_w_per_gb: float = 0.10
    ssd_internal_dram_active_w: float = 1.4
    ssd_internal_dram_idle_w: float = 0.45
    znand_read_nj_per_page: float = 3_000.0
    znand_program_nj_per_page: float = 15_000.0
    znand_idle_w: float = 1.2
    pcie_pj_per_byte: float = 15.0
    ddr_pj_per_byte: float = 6.0


# ---------------------------------------------------------------------------
# Whole-system configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration bundle handed to platforms."""

    cpu: CPUConfig = field(default_factory=CPUConfig)
    caches: CacheConfig = field(default_factory=CacheConfig)
    os_stack: OSStackConfig = field(default_factory=OSStackConfig)
    nvdimm: NVDIMMConfig = field(default_factory=NVDIMMConfig)
    ssd: SSDConfig = field(default_factory=SSDConfig.ull_flash)
    pcie: PCIeConfig = field(default_factory=PCIeConfig)
    sata: SATAConfig = field(default_factory=SATAConfig)
    nvme: NVMeConfig = field(default_factory=NVMeConfig)
    hams: HAMSConfig = field(default_factory=HAMSConfig)
    optane: OptaneConfig = field(default_factory=OptaneConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)

    def with_hams(self, **kwargs) -> "SystemConfig":
        """Return a copy with modified HAMS parameters."""
        return replace(self, hams=replace(self.hams, **kwargs))

    def with_nvdimm(self, **kwargs) -> "SystemConfig":
        """Return a copy with modified NVDIMM parameters."""
        return replace(self, nvdimm=replace(self.nvdimm, **kwargs))

    def with_ssd(self, ssd: SSDConfig) -> "SystemConfig":
        """Return a copy with a different SSD device."""
        return replace(self, ssd=ssd)


def default_config() -> SystemConfig:
    """The Table II configuration used by every paper experiment."""
    return SystemConfig()
