"""Eviction-hazard and redundant-eviction avoidance (Section V-B).

Because the NVDIMM is simultaneously the MoS cache and the PRP target of
in-flight NVMe commands, two hazards arise (Figure 13):

* **Eviction hazard** — the NVMe controller DMAs into an NVDIMM page frame
  that the cache logic is concurrently reusing, corrupting data, and
* **Redundant eviction** — a second miss on an entry whose eviction is still
  in flight issues the same eviction again.

HAMS avoids both with three mechanisms, all modelled here:

1. the evicted page is *cloned* into the PRP pool in pinned memory and the
   command's PRP is pointed at the clone, so the DMA reads stable data,
2. the tag-array entry's *busy bit* is set while any command targets it, and
3. colliding requests are parked in a *wait queue* and replayed when the
   busy bit clears.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from ..nvme.prp import PRPEntry, PRPPool, PRPPoolExhausted
from .tag_array import MoSTagArray


class WaitQueueFullError(RuntimeError):
    """Raised when the pinned-memory wait queue overflows."""


@dataclass(frozen=True)
class WaitingRequest:
    """A memory request parked because its target entry is busy."""

    mos_page: int
    is_write: bool
    arrival_ns: float


class WaitQueue:
    """Bounded FIFO of requests waiting for a busy cache entry."""

    def __init__(self, depth: int) -> None:
        if depth <= 0:
            raise ValueError("wait queue depth must be positive")
        self.depth = depth
        self._queue: Deque[WaitingRequest] = deque()
        self.enqueued_total = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        return not self._queue

    def push(self, request: WaitingRequest) -> None:
        if len(self._queue) >= self.depth:
            raise WaitQueueFullError(
                f"wait queue overflow (depth={self.depth})")
        self._queue.append(request)
        self.enqueued_total += 1
        self.max_occupancy = max(self.max_occupancy, len(self._queue))

    def pop(self) -> Optional[WaitingRequest]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def pending_for(self, mos_page: int) -> List[WaitingRequest]:
        return [request for request in self._queue if request.mos_page == mos_page]


@dataclass
class InFlightOperation:
    """Bookkeeping for one outstanding miss (fill and/or eviction)."""

    index: int
    mos_page: int
    command_ids: List[int] = field(default_factory=list)
    completes_at_ns: float = 0.0


class HazardManager:
    """Coordinates busy bits, PRP cloning and the wait queue for the cache logic."""

    def __init__(self, tag_array: MoSTagArray, prp_pool: PRPPool,
                 wait_queue_depth: int) -> None:
        self.tag_array = tag_array
        self.prp_pool = prp_pool
        self.wait_queue = WaitQueue(wait_queue_depth)
        self._in_flight: Dict[int, InFlightOperation] = {}
        self.evictions_cloned = 0
        self.redundant_evictions_avoided = 0
        self.hazard_stalls = 0

    # -- queries -------------------------------------------------------------------

    def is_busy(self, index: int) -> bool:
        return self.tag_array.entry(index).busy

    def busy_until(self, index: int) -> float:
        operation = self._in_flight.get(index)
        return operation.completes_at_ns if operation else 0.0

    @property
    def outstanding_operations(self) -> int:
        return len(self._in_flight)

    # -- miss lifecycle ---------------------------------------------------------------

    def begin_miss(self, index: int, mos_page: int,
                   victim_page: Optional[int], command_id: int,
                   completes_at_ns: float) -> Optional[PRPEntry]:
        """Mark a miss in flight on *index* and clone the victim if any.

        Returns the PRP pool entry holding the clone (``None`` when there is
        no dirty victim to protect).  A second miss arriving on the same
        entry while this one is outstanding is a *redundant eviction*; the
        caller detects it through :meth:`is_busy` and parks the request.
        """
        if self.is_busy(index):
            raise RuntimeError(
                f"begin_miss on busy entry {index}: callers must park the "
                "request in the wait queue instead")
        self.tag_array.set_busy(index, True)
        operation = InFlightOperation(index=index, mos_page=mos_page,
                                      command_ids=[command_id],
                                      completes_at_ns=completes_at_ns)
        self._in_flight[index] = operation
        clone: Optional[PRPEntry] = None
        if victim_page is not None:
            clone = self.prp_pool.clone(victim_page, command_id)
            self.evictions_cloned += 1
        return clone

    def attach_command(self, index: int, command_id: int,
                       completes_at_ns: float) -> None:
        """Associate another command (e.g. the fill read) with an operation."""
        operation = self._in_flight.get(index)
        if operation is None:
            raise KeyError(f"no in-flight operation on entry {index}")
        operation.command_ids.append(command_id)
        operation.completes_at_ns = max(operation.completes_at_ns, completes_at_ns)

    def complete_miss(self, index: int) -> None:
        """Clear the busy bit and release any PRP clones for *index*."""
        operation = self._in_flight.pop(index, None)
        if operation is None:
            return
        for command_id in operation.command_ids:
            self.prp_pool.release(command_id)
        self.tag_array.set_busy(index, False)

    # -- collision handling ---------------------------------------------------------------

    def park(self, mos_page: int, is_write: bool, at_ns: float) -> None:
        """Park a request that collided with a busy entry."""
        self.wait_queue.push(WaitingRequest(mos_page=mos_page,
                                            is_write=is_write,
                                            arrival_ns=at_ns))
        self.redundant_evictions_avoided += 1
        self.hazard_stalls += 1

    def drain_parked(self) -> List[WaitingRequest]:
        """Remove and return every parked request (replayed after completion)."""
        drained: List[WaitingRequest] = []
        while True:
            request = self.wait_queue.pop()
            if request is None:
                break
            drained.append(request)
        return drained

    # -- reporting -------------------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        return {
            "evictions_cloned": float(self.evictions_cloned),
            "redundant_evictions_avoided": float(self.redundant_evictions_avoided),
            "hazard_stalls": float(self.hazard_stalls),
            "wait_queue_max_occupancy": float(self.wait_queue.max_occupancy),
            "prp_peak_in_use": float(self.prp_pool.peak_in_use),
        }
