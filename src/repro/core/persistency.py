"""Persistency control and power-failure recovery (Sections IV-B, V-C, Figure 15).

HAMS keeps every NVMe data structure — the SQ/CQ rings, the PRP pool and the
MSI table — in the *pinned*, MMU-invisible region of the NVDIMM, which the
module's supercapacitor preserves across power loss.  Each command carries a
*journal tag* in its reserved field: set to 1 when the engine sends it to
the ULL-Flash, cleared when the completion interrupt arrives.

On power-up the controller therefore knows exactly which I/Os were in flight
when the lights went out: it scans the SQ region for commands whose journal
tag is still 1 (equivalently, for SQ/CQ tail-pointer mismatches), allocates
a fresh SQ/CQ pair, re-inserts those commands and rings the doorbell so they
complete before the MoS space is handed back to the MMU.  The ULL-Flash's
own supercapacitor flushes its volatile buffer, so no acknowledged write is
ever lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..flash.ssd import SSD
from ..memory.nvdimm import NVDIMM, NVDIMMState
from ..nvme.commands import NVMeCommand
from ..nvme.controller import NVMeController
from ..nvme.queues import QueuePair


@dataclass
class RecoveryReport:
    """Outcome of one power-failure recovery pass."""

    pending_commands_found: int
    commands_reissued: int
    nvdimm_restore_ns: float
    ssd_flush_ns: float
    replay_ns: float

    @property
    def total_recovery_ns(self) -> float:
        return self.nvdimm_restore_ns + self.ssd_flush_ns + self.replay_ns

    @property
    def consistent(self) -> bool:
        """True when every interrupted command was successfully replayed."""
        return self.pending_commands_found == self.commands_reissued


class PersistencyController:
    """Implements the journal-tag protocol and the Figure 15 recovery procedure."""

    def __init__(self, nvdimm: NVDIMM, ssd: SSD,
                 controller: NVMeController, queue_pair: QueuePair) -> None:
        self.nvdimm = nvdimm
        self.ssd = ssd
        self.controller = controller
        self.queue_pair = queue_pair
        self.power_failures = 0
        self.recoveries = 0
        self.commands_recovered_total = 0
        self._failed = False
        self._interrupted_commands: List[NVMeCommand] = []

    # -- normal operation -------------------------------------------------------------

    def pending_commands(self) -> List[NVMeCommand]:
        """Commands currently journalled as in flight (tag still 1)."""
        return self.queue_pair.in_flight_commands()

    @property
    def is_failed(self) -> bool:
        return self._failed

    # -- power failure -------------------------------------------------------------------

    def power_failure(self, at_ns: float,
                      in_flight: Optional[List[NVMeCommand]] = None) -> float:
        """Simulate a power loss at *at_ns*.

        *in_flight* lets callers inject commands that were issued but whose
        completion interrupt never arrived; by default the SQ is scanned.
        Returns the time at which the platform is fully powered down (NVDIMM
        backup plus the ULL-Flash supercap flush, whichever is longer).
        """
        if self._failed:
            raise RuntimeError("power failure while already failed")
        self.power_failures += 1
        self._failed = True
        self._interrupted_commands = list(
            in_flight if in_flight is not None else self.pending_commands())
        backup_ns = self.nvdimm.power_failure(
            dirty_bytes=self.nvdimm.pinned_region_bytes)
        flush_finish = self.ssd.supercap_flush(at_ns)
        return at_ns + max(backup_ns, flush_finish - at_ns)

    def recover(self, at_ns: float) -> RecoveryReport:
        """Run the three-phase recovery of Figure 15.

        Phase 1 already happened at failure time (journal tags persisted in
        the pinned region).  Phase 2 restores the NVDIMM and allocates a new
        SQ/CQ pair; phase 3 re-inserts every incomplete command, advances
        the SQ tail and rings the doorbell so the ULL-Flash replays it.
        """
        if not self._failed:
            raise RuntimeError("recover called without a preceding power failure")
        self.recoveries += 1
        restore_ns = self.nvdimm.power_restore()
        # Phase 2: a fresh queue pair replaces the interrupted one.
        fresh = QueuePair.create(self.queue_pair.sq.depth)
        self.queue_pair.sq = fresh.sq
        self.queue_pair.cq = fresh.cq

        replay_start = at_ns + restore_ns
        replay_cursor = replay_start
        reissued = 0
        for command in self._interrupted_commands:
            replayed = NVMeCommand(opcode=command.opcode, lba=command.lba,
                                   length_bytes=command.length_bytes,
                                   prp=command.prp, fua=command.fua)
            self.queue_pair.sq.submit(replayed)
            self.queue_pair.sq.ring_doorbell()
            result = self.controller.execute(replayed, replay_cursor)
            self.queue_pair.sq.fetch()
            replay_cursor = result.finish_ns
            reissued += 1
        self.commands_recovered_total += reissued

        report = RecoveryReport(
            pending_commands_found=len(self._interrupted_commands),
            commands_reissued=reissued,
            nvdimm_restore_ns=restore_ns,
            ssd_flush_ns=0.0,
            replay_ns=replay_cursor - replay_start)
        self._interrupted_commands = []
        self._failed = False
        return report

    # -- reporting -------------------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        return {
            "power_failures": float(self.power_failures),
            "recoveries": float(self.recoveries),
            "commands_recovered_total": float(self.commands_recovered_total),
        }
