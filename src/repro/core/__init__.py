"""HAMS core: the hardware-automated Memory-over-Storage controller.

This package is the paper's primary contribution.  It contains:

* :mod:`~repro.core.tag_array` — the direct-mapped MoS tag-array embedded in
  NVDIMM cache lines (tag + valid/dirty/busy bits, Figure 11),
* :mod:`~repro.core.address_manager` — the 64-bit MoS address space that
  exposes the ULL-Flash capacity to the MMU and maps the pinned region,
* :mod:`~repro.core.nvme_engine` — the hardware NVMe queue engine that
  composes commands, rings doorbells and reaps completions without any OS
  involvement,
* :mod:`~repro.core.register_interface` — the advanced-HAMS SSD command
  generator that talks to the unboxed ULL-Flash over DDR4 (Figure 12),
* :mod:`~repro.core.hazard` — eviction-hazard and redundant-eviction
  avoidance via PRP-pool cloning, busy bits and the wait queue (Figure 14),
* :mod:`~repro.core.persistency` — journal tags and the power-failure
  recovery procedure (Figure 15),
* :mod:`~repro.core.hams_controller` — the top-level controller tying it all
  together in its four configurations (loose/tight x persist/extend).
"""

from .tag_array import MoSTagArray, TagEntry, TagLookup
from .address_manager import AddressManager, DecomposedAddress
from .nvme_engine import HardwareNVMeEngine, EngineIOResult
from .register_interface import RegisterInterface
from .hazard import HazardManager, WaitQueue
from .persistency import PersistencyController, RecoveryReport
from .hams_controller import HAMSController, HAMSAccessResult

__all__ = [
    "MoSTagArray",
    "TagEntry",
    "TagLookup",
    "AddressManager",
    "DecomposedAddress",
    "HardwareNVMeEngine",
    "EngineIOResult",
    "RegisterInterface",
    "HazardManager",
    "WaitQueue",
    "PersistencyController",
    "RecoveryReport",
    "HAMSController",
    "HAMSAccessResult",
]
