"""The HAMS controller: top-level composition of the MoS datapath (Figure 8).

The controller fields every memory request coming from the MMU:

1. the address manager decomposes the MoS address and the tag-array probe
   costs one NVDIMM line access plus the comparator,
2. a hit is served directly from the NVDIMM at DRAM latency,
3. a miss secures the direct-mapped entry — evicting the dirty victim to
   ULL-Flash (after cloning it into the PRP pool to avoid eviction hazards)
   and filling the requested page from ULL-Flash — through the hardware
   NVMe engine, with no OS involvement, and
4. the stalled instruction is retried once the data sits in the NVDIMM.

The same class covers all four evaluated configurations:

========  ==============  =======================================
platform  integration      datapath to ULL-Flash
========  ==============  =======================================
hams-LP   loose, persist  PCIe/NVMe, FUA, one outstanding I/O
hams-LE   loose, extend   PCIe/NVMe, parallel queue + journal tags
hams-TP   tight, persist  DDR4 register interface, FUA
hams-TE   tight, extend   DDR4 register interface, parallel queue
========  ==============  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import SystemConfig
from ..flash.ssd import SSD
from ..interconnect.ddr_bus import DDR4Bus
from ..interconnect.pcie import PCIeLink
from ..memory.nvdimm import NVDIMM
from ..nvme.controller import NVMeController
from ..nvme.prp import PRPPool, PRPPoolExhausted
from ..nvme.queues import QueuePair
from .address_manager import AddressManager, DecomposedAddress
from .hazard import HazardManager
from .tag_array import TagLookup
from .nvme_engine import HardwareNVMeEngine
from .persistency import PersistencyController, RecoveryReport
from .register_interface import RegisterInterface


@dataclass
class HAMSAccessResult:
    """Timing of one MMU request served by HAMS."""

    address: int
    is_write: bool
    hit: bool
    start_ns: float
    finish_ns: float
    nvdimm_ns: float = 0.0
    dma_ns: float = 0.0
    ssd_ns: float = 0.0
    wait_ns: float = 0.0
    evicted: bool = False

    @property
    def latency_ns(self) -> float:
        return self.finish_ns - self.start_ns


@dataclass
class _DelayTotals:
    """Accumulated memory-delay components (Figure 18 categories)."""

    nvdimm_ns: float = 0.0
    dma_ns: float = 0.0
    ssd_ns: float = 0.0
    wait_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        return self.nvdimm_ns + self.dma_ns + self.ssd_ns + self.wait_ns


@dataclass
class HAMSBatchPlan:
    """Clock-free classification of one request batch (see :meth:`classify_batch`).

    ``hits`` marks the requests served straight from the NVDIMM cache,
    ``serve_ns`` / ``probe_ns`` are their pure timing ingredients, and
    ``misses`` carries everything the clocked replay of each miss needs:
    ``(position, address, decomposed, lookup)`` in batch order.
    """

    hits: np.ndarray
    serve_ns: np.ndarray
    probe_ns: float
    misses: List[Tuple[int, int, DecomposedAddress, TagLookup]]


class HAMSController:
    """Hardware-automated Memory-over-Storage controller in the MCH."""

    def __init__(self, config: SystemConfig,
                 ssd: Optional[SSD] = None) -> None:
        self.config = config
        self.hams_config = config.hams
        self.mos_page_bytes = config.hams.mos_page_bytes

        ssd_config = config.ssd
        if self.hams_config.is_tight:
            # The aggressive integration removes the SSD-internal DRAM buffer;
            # the NVDIMM is the only buffer on the path (Section IV-C).
            ssd_config = replace(ssd_config, dram_buffer_enabled=False)
        self.ssd = ssd if ssd is not None else SSD(ssd_config)

        self.nvdimm = NVDIMM(config.nvdimm)
        self.ddr_bus = DDR4Bus(config.nvdimm.ddr)
        if self.hams_config.is_tight:
            self.register_interface: Optional[RegisterInterface] = (
                RegisterInterface(self.ddr_bus))
            self.link = self.register_interface
            self.pcie: Optional[PCIeLink] = None
        else:
            self.register_interface = None
            self.pcie = PCIeLink(config.pcie)
            self.link = self.pcie

        self.address_manager = AddressManager(config.hams, config.nvdimm,
                                              self.ssd.capacity_bytes)
        self.tag_array = self.address_manager.tag_array
        self.prp_pool = PRPPool(config.hams.prp_pool_bytes,
                                self.mos_page_bytes)
        self.hazards = HazardManager(self.tag_array, self.prp_pool,
                                     config.hams.wait_queue_depth)
        self.queue_pair = QueuePair.create(depth=1024)
        self.nvme_controller = NVMeController(self.ssd, self.link, config.nvme)
        self.engine = HardwareNVMeEngine(self.nvme_controller, self.queue_pair,
                                         config.hams, config.nvme,
                                         register_interface=self.register_interface)
        self.persistency = PersistencyController(self.nvdimm, self.ssd,
                                                 self.nvme_controller,
                                                 self.queue_pair)

        self.delays = _DelayTotals()
        self.accesses = 0
        self.evictions = 0
        self.fills = 0
        # Background evictions outstanding per tag-array index (extend mode).
        self._background_evictions: Dict[int, float] = {}
        # Traffic moved by background fills/evictions in extend mode,
        # modelled analytically (see _background_transfer).
        self.background_flash_reads = 0
        self.background_flash_programs = 0
        self.background_link_bytes = 0

    # -- capacity -------------------------------------------------------------------

    @property
    def mos_capacity_bytes(self) -> int:
        """The flat byte-addressable space HAMS exposes to the MMU."""
        return self.address_manager.mos_capacity_bytes

    # -- the MMU-facing entry point -----------------------------------------------------

    def access(self, address: int, size_bytes: int, is_write: bool,
               at_ns: float) -> HAMSAccessResult:
        """Serve one memory request from the MMU.

        Requests must arrive in non-decreasing time order (the platform's
        trace loop guarantees this).
        """
        self.address_manager.validate(address, size_bytes)
        self.accesses += 1
        decomposed = self.address_manager.decompose(address)
        result = HAMSAccessResult(address=address, is_write=is_write, hit=False,
                                  start_ns=at_ns, finish_ns=at_ns)

        # 1. Tag probe: one NVDIMM line access plus the comparator.
        probe_ns = (self.nvdimm.line_access_ns()
                    + self.hams_config.tag_check_ns)
        self.nvdimm.access(self.config.nvdimm.ddr.line_size, is_write=False)
        result.nvdimm_ns += probe_ns
        now = at_ns + probe_ns

        lookup = self.tag_array.lookup(decomposed.mos_page)

        # 2. Redundant-eviction / hazard check: an outstanding background
        #    eviction on this entry blocks reuse until it drains.
        pending = self._background_evictions.get(decomposed.index, 0.0)
        if not lookup.hit and pending > now:
            self.hazards.park(decomposed.mos_page, is_write, now)
            result.wait_ns += pending - now
            now = pending
            self._background_evictions.pop(decomposed.index, None)
            self.hazards.drain_parked()

        if not lookup.hit:
            now = self._handle_miss(decomposed, lookup, is_write, now, result)
        else:
            result.hit = True

        # 4. Serve the data from the NVDIMM cache entry.
        serve_ns = self._nvdimm_serve_ns(size_bytes)
        self.nvdimm.access(size_bytes, is_write=is_write)
        result.nvdimm_ns += serve_ns
        now += serve_ns
        if is_write:
            self.tag_array.mark_dirty(decomposed.mos_page)

        result.finish_ns = now
        self.delays.nvdimm_ns += result.nvdimm_ns
        self.delays.dma_ns += result.dma_ns
        self.delays.ssd_ns += result.ssd_ns
        self.delays.wait_ns += result.wait_ns
        return result

    # -- batched classification (the clock-free half of the datapath) --------------------

    def classify_batch(self, addresses: np.ndarray, sizes: np.ndarray,
                       writes: np.ndarray) -> HAMSBatchPlan:
        """Walk one request batch through the tag array, clock-free.

        The tag array, the dirty bits and the direct-mapped installs do not
        depend on the clock, so one scalar-order walk classifies the whole
        batch and leaves the tag state exactly where the scalar loop would:
        hits mark their entry dirty on stores, misses install their page
        (the scalar path installs at the end of :meth:`_handle_miss`, but
        nothing between the lookup and the install reads the array).  The
        walk also records the batch's complete NVDIMM traffic — probe,
        victim clone, critical-chunk landing, serve — in the exact scalar
        call order and charges it through one
        :meth:`~repro.memory.nvdimm.NVDIMM.access_batch` fold, so the DRAM
        counters (and the bit-exact ``busy_ns`` accumulation) match the
        scalar replay.  Everything clock-dependent — engine waits, NVMe
        issue, background-eviction parking — stays out of the plan and runs
        later through :meth:`replay_miss`.
        """
        count = len(addresses)
        self.accesses += count
        nvdimm = self.nvdimm
        mos_page_bytes = self.mos_page_bytes
        tag_array = self.tag_array
        entries = tag_array._entries
        entries_count = tag_array.entries_count
        line_size = self.config.nvdimm.ddr.line_size
        line_ns = nvdimm.line_access_ns()
        probe_ns = line_ns + self.hams_config.tag_check_ns

        mos_pages = addresses // mos_page_bytes
        offsets_col = addresses % mos_page_bytes
        indices_col = mos_pages % entries_count
        tags_col = mos_pages // entries_count

        serve_ns = np.empty(count, dtype=np.float64)
        fine = sizes <= line_size
        serve_ns[fine] = line_ns
        for size in np.unique(sizes[~fine]):
            serve_ns[sizes == size] = nvdimm.page_access_ns(int(size))

        mos_list = mos_pages.tolist()
        offset_list = offsets_col.tolist()
        index_list = indices_col.tolist()
        tag_list = tags_col.tolist()
        writes_list = writes.tolist()
        sizes_list = sizes.tolist()

        hits = np.empty(count, dtype=bool)
        misses: List[Tuple[int, int, DecomposedAddress, TagLookup]] = []
        hit_count = 0
        # The batch's NVDIMM call sequence, in exact scalar order.
        sched_sizes: List[int] = []
        sched_writes: List[bool] = []
        size_append = sched_sizes.append
        write_append = sched_writes.append
        addresses_list = None  # materialised only when the batch has misses
        for j in range(count):
            index = index_list[j]
            tag = tag_list[j]
            is_write = writes_list[j]
            entry = entries[index]
            size_append(line_size)        # tag probe
            write_append(False)
            if entry.valid and entry.tag == tag:
                hit_count += 1
                hits[j] = True
                if is_write:
                    entry.dirty = True
            else:
                hits[j] = False
                victim_tag = entry.tag if entry.valid else None
                victim_dirty = entry.dirty if victim_tag is not None else False
                lookup = TagLookup(index=index, tag=tag, hit=False,
                                   busy=entry.busy, victim_tag=victim_tag,
                                   victim_dirty=victim_dirty)
                decomposed = DecomposedAddress(mos_page=mos_list[j], tag=tag,
                                               index=index,
                                               offset=offset_list[j])
                if addresses_list is None:
                    addresses_list = addresses.tolist()
                misses.append((j, addresses_list[j], decomposed, lookup))
                if victim_tag is not None and victim_dirty:
                    size_append(mos_page_bytes)   # victim clone read
                    write_append(False)
                    size_append(mos_page_bytes)   # victim clone write
                    write_append(True)
                size_append(mos_page_bytes)       # critical-chunk landing
                write_append(True)
                # Install now so later lookups in this batch classify
                # exactly; the dirty bit already folds in the scalar
                # install + mark-dirty pair.
                entry.tag = tag
                entry.valid = True
                entry.dirty = is_write
                entry.busy = False
            size_append(sizes_list[j])    # serve from the cache entry
            write_append(is_write)
        tag_array.lookups += count
        tag_array.hits += hit_count
        tag_array.misses += count - hit_count
        nvdimm.access_batch(np.array(sched_sizes, dtype=np.int64),
                            np.array(sched_writes, dtype=bool))
        return HAMSBatchPlan(hits=hits, serve_ns=serve_ns, probe_ns=probe_ns,
                             misses=misses)

    def replay_miss(self, address: int, decomposed: DecomposedAddress,
                    lookup: TagLookup, size_bytes: int, is_write: bool,
                    at_ns: float) -> HAMSAccessResult:
        """Clocked replay of one pre-classified miss (see :meth:`classify_batch`).

        Runs the exact scalar miss sequence — probe time, background-eviction
        parking, engine wait, clone, NVMe issue, landing, serve — without
        re-charging the NVDIMM counters or re-touching the tag array (both
        already folded by the classification walk).  The caller accumulates
        the returned delay components in batch order.
        """
        result = HAMSAccessResult(address=address, is_write=is_write,
                                  hit=False, start_ns=at_ns, finish_ns=at_ns)
        probe_ns = (self.nvdimm.line_access_ns()
                    + self.hams_config.tag_check_ns)
        result.nvdimm_ns += probe_ns
        now = at_ns + probe_ns

        pending = self._background_evictions.get(decomposed.index, 0.0)
        if pending > now:
            self.hazards.park(decomposed.mos_page, is_write, now)
            result.wait_ns += pending - now
            now = pending
            self._background_evictions.pop(decomposed.index, None)
            self.hazards.drain_parked()

        now = self._handle_miss(decomposed, lookup, is_write, now, result,
                                charge_nvdimm=False, install_tag=False)

        serve_ns = self._nvdimm_serve_ns(size_bytes)
        result.nvdimm_ns += serve_ns
        now += serve_ns
        result.finish_ns = now
        return result

    # -- miss handling -------------------------------------------------------------------

    #: Size of the critical chunk fetched first on a miss.  The MMU request
    #: only stalls until this chunk lands in the NVDIMM; the remainder of the
    #: MoS page streams in afterwards ("critical-chunk-first", matching the
    #: flash page size the ULL-Flash serves natively).
    CRITICAL_CHUNK_BYTES = 4096

    def _handle_miss(self, decomposed, lookup, is_write: bool, now: float,
                     result: HAMSAccessResult, *, charge_nvdimm: bool = True,
                     install_tag: bool = True) -> float:
        """Evict the victim (if dirty) and fill the requested page.

        ``charge_nvdimm=False`` / ``install_tag=False`` are the batched
        replay's knobs: :meth:`classify_batch` has already recorded the
        NVDIMM traffic (in one order-exact schedule) and installed the tag
        entry, so :meth:`replay_miss` re-runs only the clock-dependent part.

        In extend mode only the *critical chunk* (the 4 KB covering the
        requested address) sits on the access's critical path; the rest of
        the MoS page and the eviction of the dirty victim drain through the
        NVMe queue in the background, which is where extend mode's advantage
        over persist mode comes from (Figure 18).  Persist mode serialises
        everything: the FUA eviction, the critical chunk and the remainder.
        """
        engine_start = self.engine.next_available(now)
        result.wait_ns += engine_start - now
        now = engine_start

        chunk = min(self.CRITICAL_CHUNK_BYTES, self.mos_page_bytes)
        page_lba = self.address_manager.lba_of(decomposed.mos_page)
        chunk_lba = page_lba + (decomposed.offset // chunk) * (chunk // 512)
        slot_offset = self.address_manager.cache_slot_offset(decomposed.index)

        # -- eviction of the dirty victim -------------------------------------
        evict_command = None
        victim_page = None
        clone_ns = 0.0
        if lookup.needs_eviction:
            victim_page = self.tag_array.page_from(lookup.index,
                                                   lookup.victim_tag)
            # Clone the victim into the PRP pool: an NVDIMM-internal copy of
            # one MoS page (read + write) that protects against the eviction
            # hazard while the DMA is in flight.  The copy runs at DRAM
            # bandwidth and overlaps with the critical fill coming from flash.
            clone_ns = 2 * self.nvdimm.page_access_ns(self.mos_page_bytes)
            if charge_nvdimm:
                self.nvdimm.access(self.mos_page_bytes, is_write=False)
                self.nvdimm.access(self.mos_page_bytes, is_write=True)
            result.nvdimm_ns += clone_ns
            evict_command = self.engine.build_evict(
                lba=self.address_manager.lba_of(victim_page),
                length_bytes=self.mos_page_bytes,
                # The PRP points at the clone inside the pinned PRP pool, not
                # at the live cache entry (eviction-hazard avoidance).
                prp=self.address_manager.pinned_region_base)
            self.evictions += 1

        critical_fill = self.engine.build_fill(lba=chunk_lba,
                                               length_bytes=chunk,
                                               prp=slot_offset)
        remainder_bytes = self.mos_page_bytes - chunk
        remainder_fill = (self.engine.build_fill(lba=page_lba,
                                                 length_bytes=remainder_bytes,
                                                 prp=slot_offset)
                          if remainder_bytes > 0 else None)
        self.fills += 1

        try:
            self.hazards.begin_miss(
                lookup.index, decomposed.mos_page, victim_page,
                command_id=critical_fill.command_id, completes_at_ns=now)
        except PRPPoolExhausted:
            # The pool is sized for the worst case; running out means the
            # caller is issuing more concurrent misses than the design
            # supports, so serialise behind the engine instead.
            pass

        background_finish = now
        if self.hams_config.is_persist:
            # Persist mode: one outstanding I/O at a time, eviction first
            # (FUA), then the whole page fill — everything stalls the MMU.
            cursor = now + clone_ns
            if evict_command is not None:
                evict_result = self.engine.issue(evict_command, cursor)
                result.dma_ns += (evict_result.protocol_ns
                                  + evict_result.transfer_ns)
                result.ssd_ns += evict_result.device_ns
                cursor = evict_result.finish_ns
            fill_result = self.engine.issue(critical_fill, cursor)
            result.dma_ns += fill_result.protocol_ns + fill_result.transfer_ns
            result.ssd_ns += fill_result.device_ns
            cursor = fill_result.finish_ns
            if remainder_fill is not None:
                rest = self.engine.issue(remainder_fill, cursor)
                result.dma_ns += rest.protocol_ns + rest.transfer_ns
                result.ssd_ns += rest.device_ns
                cursor = rest.finish_ns
            critical_finish = cursor
        else:
            # Extend mode: the critical chunk stalls the MMU; the remainder
            # and the eviction ride the NVMe queue in the background.  The
            # NVMe queue arbitration gives incoming (critical) reads priority
            # over the streaming background traffic, so the background work
            # is modelled analytically: it consumes flash and link bandwidth
            # (visible in the energy accounting and in the per-entry reuse
            # blocking below) but does not head-of-line-block later critical
            # fills the way a single serialised command stream would.
            fill_result = self.engine.issue(critical_fill, now)
            result.dma_ns += fill_result.protocol_ns + fill_result.transfer_ns
            result.ssd_ns += fill_result.device_ns
            # The victim clone overlaps with the flash access; only the part
            # that outlasts the critical fill shows on the critical path.
            critical_finish = max(fill_result.finish_ns, now + clone_ns)
            background_finish = fill_result.finish_ns
            if remainder_fill is not None:
                background_finish = max(
                    background_finish,
                    self._background_transfer(remainder_bytes, is_write=False,
                                              at_ns=fill_result.finish_ns))
            if evict_command is not None:
                background_finish = max(
                    background_finish,
                    self._background_transfer(self.mos_page_bytes,
                                              is_write=True,
                                              at_ns=background_finish))
            if background_finish > critical_finish:
                # Block reuse of the entry until the background work drains.
                self._background_evictions[lookup.index] = background_finish

        now = max(now, critical_finish)

        # The critical chunk lands in the NVDIMM cache entry; the remainder
        # streams in behind it off the critical path.
        landing_ns = self.nvdimm.page_access_ns(chunk)
        if charge_nvdimm:
            self.nvdimm.access(self.mos_page_bytes, is_write=True)
        result.nvdimm_ns += landing_ns
        now += landing_ns

        self.hazards.complete_miss(lookup.index)
        if install_tag:
            self.tag_array.install(decomposed.mos_page, dirty=is_write)
        result.evicted = evict_command is not None
        return now

    def _background_transfer(self, size_bytes: int, is_write: bool,
                             at_ns: float) -> float:
        """Account for background traffic between ULL-Flash and NVDIMM.

        Extend mode streams the non-critical part of a fill and the eviction
        of the dirty victim through the NVMe queue while the MMU already
        continues; the traffic still costs flash operations, link bytes and
        time (returned as the estimated completion, used to block premature
        reuse of the cache entry), but it is not serialised in front of later
        critical fills — the hardware queue arbitration prioritises those.
        """
        if size_bytes <= 0:
            return at_ns
        flash_page = self.ssd.page_size
        pages = max(1, size_bytes // flash_page)
        if is_write:
            self.background_flash_programs += pages
            array_ns = self.ssd.config.timing.program_ns
        else:
            self.background_flash_reads += pages
            array_ns = self.ssd.config.timing.read_ns
        self.background_link_bytes += size_bytes
        channel_count = max(1, self.ssd.channels.geometry.channels)
        flash_stream_ns = (pages * self.ssd.channels.transfer_time(flash_page)
                           / channel_count) + array_ns
        link_ns = (self.link.raw_transfer_time(size_bytes)
                   + self.link.per_transfer_overhead(size_bytes))
        return at_ns + max(flash_stream_ns, link_ns)

    def _nvdimm_serve_ns(self, size_bytes: int) -> float:
        if size_bytes <= self.config.nvdimm.ddr.line_size:
            return self.nvdimm.line_access_ns()
        return self.nvdimm.page_access_ns(size_bytes)

    # -- persistency ----------------------------------------------------------------------

    def power_failure(self, at_ns: float) -> float:
        """Propagate a power failure through NVDIMM and ULL-Flash."""
        return self.persistency.power_failure(at_ns)

    def recover(self, at_ns: float) -> RecoveryReport:
        """Run the Figure 15 recovery procedure after a power failure."""
        return self.persistency.recover(at_ns)

    # -- reporting -------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        return self.tag_array.hit_rate

    def memory_delay_breakdown(self) -> Dict[str, float]:
        """Absolute memory-delay components (Figure 18 categories)."""
        return {
            "nvdimm_ns": self.delays.nvdimm_ns,
            "dma_ns": self.delays.dma_ns,
            "ssd_ns": self.delays.ssd_ns,
            "wait_ns": self.delays.wait_ns,
            "total_ns": self.delays.total_ns,
        }

    def dma_overhead_fraction(self) -> float:
        """Share of the average memory access time spent on the interface (Figure 10a)."""
        total = self.delays.total_ns
        if total <= 0:
            return 0.0
        return self.delays.dma_ns / total

    def statistics(self) -> Dict[str, float]:
        stats: Dict[str, float] = {
            "accesses": float(self.accesses),
            "hit_rate": self.hit_rate,
            "fills": float(self.fills),
            "evictions": float(self.evictions),
            "background_flash_reads": float(self.background_flash_reads),
            "background_flash_programs": float(self.background_flash_programs),
            "background_link_bytes": float(self.background_link_bytes),
        }
        stats.update({f"engine.{k}": v for k, v in self.engine.statistics().items()})
        stats.update({f"hazards.{k}": v
                      for k, v in self.hazards.statistics().items()})
        stats.update({f"link.{k}": v for k, v in self.link.statistics().items()})
        return stats
