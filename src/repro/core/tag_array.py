"""MoS tag-array: the direct-mapped NVDIMM cache metadata (Figure 11).

Instead of a large SRAM inside the HAMS controller (costly and volatile),
the paper stores each cache entry's metadata — tag, valid bit, dirty bit and
the *busy* bit that marks an in-flight DMA — alongside the ECC bits of the
corresponding NVDIMM cache line, similar to Knights Landing's MCDRAM tags.
The cache is direct-mapped at MoS-page granularity (128 KB by default,
Table II), so a MoS address decomposes into tag / index / offset and a
lookup costs one NVDIMM line read plus the comparator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class TagEntry:
    """Metadata for one direct-mapped NVDIMM cache entry."""

    index: int
    tag: Optional[int] = None
    valid: bool = False
    dirty: bool = False
    busy: bool = False

    def matches(self, tag: int) -> bool:
        return self.valid and self.tag == tag

    def reset(self) -> None:
        self.tag = None
        self.valid = False
        self.dirty = False
        self.busy = False


@dataclass(frozen=True)
class TagLookup:
    """Result of probing the tag-array for one MoS page."""

    index: int
    tag: int
    hit: bool
    busy: bool
    victim_tag: Optional[int]
    victim_dirty: bool

    @property
    def needs_eviction(self) -> bool:
        """A miss that lands on a valid, dirty entry must evict first."""
        return not self.hit and self.victim_tag is not None and self.victim_dirty


class MoSTagArray:
    """Direct-mapped tag array covering the cacheable NVDIMM capacity."""

    def __init__(self, cacheable_bytes: int, mos_page_bytes: int) -> None:
        if mos_page_bytes <= 0:
            raise ValueError("MoS page size must be positive")
        if cacheable_bytes < mos_page_bytes:
            raise ValueError("NVDIMM cacheable space smaller than one MoS page")
        self.mos_page_bytes = mos_page_bytes
        self.entries_count = cacheable_bytes // mos_page_bytes
        self._entries: List[TagEntry] = [TagEntry(index=i)
                                         for i in range(self.entries_count)]
        self.lookups = 0
        self.hits = 0
        self.misses = 0

    # -- address decomposition ---------------------------------------------------

    def index_of(self, mos_page: int) -> int:
        return mos_page % self.entries_count

    def tag_of(self, mos_page: int) -> int:
        return mos_page // self.entries_count

    def page_from(self, index: int, tag: int) -> int:
        """Reconstruct the MoS page number stored at (*index*, *tag*)."""
        return tag * self.entries_count + index

    # -- probing -------------------------------------------------------------------

    def lookup(self, mos_page: int) -> TagLookup:
        """Probe the array for *mos_page* without modifying any state."""
        if mos_page < 0:
            raise ValueError("negative MoS page number")
        self.lookups += 1
        index = self.index_of(mos_page)
        tag = self.tag_of(mos_page)
        entry = self._entries[index]
        hit = entry.matches(tag)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        victim_tag = entry.tag if (entry.valid and not hit) else None
        victim_dirty = entry.dirty if victim_tag is not None else False
        return TagLookup(index=index, tag=tag, hit=hit, busy=entry.busy,
                         victim_tag=victim_tag, victim_dirty=victim_dirty)

    def entry(self, index: int) -> TagEntry:
        if not 0 <= index < self.entries_count:
            raise ValueError(f"tag index out of range: {index}")
        return self._entries[index]

    # -- state transitions -------------------------------------------------------------

    def install(self, mos_page: int, dirty: bool = False) -> TagEntry:
        """Fill the entry for *mos_page* (after the flash read completes)."""
        index = self.index_of(mos_page)
        entry = self._entries[index]
        entry.tag = self.tag_of(mos_page)
        entry.valid = True
        entry.dirty = dirty
        entry.busy = False
        return entry

    def mark_dirty(self, mos_page: int) -> None:
        """Record a store hitting the cached copy of *mos_page*."""
        index = self.index_of(mos_page)
        entry = self._entries[index]
        if not entry.matches(self.tag_of(mos_page)):
            raise ValueError(f"page {mos_page} is not resident")
        entry.dirty = True

    def set_busy(self, index: int, busy: bool) -> None:
        """Toggle the busy bit while an NVMe command targets the entry.

        While busy, the entry is excluded from eviction and colliding misses
        are parked in the wait queue (Section IV-B / V-B).
        """
        self.entry(index).busy = busy

    def invalidate(self, mos_page: int) -> None:
        index = self.index_of(mos_page)
        entry = self._entries[index]
        if entry.matches(self.tag_of(mos_page)):
            entry.reset()

    # -- reporting -------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def resident_pages(self) -> Iterator[int]:
        """MoS page numbers currently cached (valid entries)."""
        for entry in self._entries:
            if entry.valid and entry.tag is not None:
                yield self.page_from(entry.index, entry.tag)

    def dirty_count(self) -> int:
        return sum(1 for entry in self._entries if entry.valid and entry.dirty)

    def busy_count(self) -> int:
        return sum(1 for entry in self._entries if entry.busy)

    def statistics(self) -> Dict[str, float]:
        return {
            "entries": float(self.entries_count),
            "lookups": float(self.lookups),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
            "dirty_entries": float(self.dirty_count()),
        }
