"""HAMS address manager (Figure 9).

The address manager exposes a 64-bit byte-addressable MoS space whose size
equals the ULL-Flash capacity: the MMU issues plain physical addresses into
this space and never learns that most of it lives on flash.  The manager

* decomposes a MoS address into the (tag, index, offset) fields the
  tag-array uses,
* converts MoS pages to storage LBAs for the NVMe commands,
* lays out the NVDIMM: the cacheable region at the bottom and the pinned,
  MMU-invisible region (SQ/CQ rings, PRP pool, MSI table) at the top, and
* validates that incoming requests stay inside the MoS space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import HAMSConfig, NVDIMMConfig
from .tag_array import MoSTagArray

LBA_BYTES = 512


@dataclass(frozen=True)
class DecomposedAddress:
    """A MoS address split into cache-addressing fields."""

    mos_page: int
    tag: int
    index: int
    offset: int

    def nvdimm_offset(self, mos_page_bytes: int) -> int:
        """Byte offset of the data inside the NVDIMM cache region."""
        return self.index * mos_page_bytes + self.offset


class AddressManager:
    """Maps the MoS address space onto the NVDIMM cache and ULL-Flash LBAs."""

    def __init__(self, hams: HAMSConfig, nvdimm: NVDIMMConfig,
                 storage_capacity_bytes: int) -> None:
        if storage_capacity_bytes <= 0:
            raise ValueError("storage capacity must be positive")
        self.hams = hams
        self.nvdimm = nvdimm
        self.mos_page_bytes = hams.mos_page_bytes
        self.storage_capacity_bytes = storage_capacity_bytes
        self.tag_array = MoSTagArray(nvdimm.cacheable_bytes, self.mos_page_bytes)

    # -- MoS address space -------------------------------------------------------

    @property
    def mos_capacity_bytes(self) -> int:
        """The byte-addressable space presented to the MMU."""
        return self.storage_capacity_bytes

    @property
    def mos_pages(self) -> int:
        return self.mos_capacity_bytes // self.mos_page_bytes

    def validate(self, address: int, size_bytes: int = 1) -> None:
        if address < 0 or size_bytes <= 0:
            raise ValueError("address must be non-negative and size positive")
        if address + size_bytes > self.mos_capacity_bytes:
            raise ValueError(
                f"access [{address}, {address + size_bytes}) exceeds the MoS "
                f"space of {self.mos_capacity_bytes} bytes")

    def decompose(self, address: int) -> DecomposedAddress:
        """Split *address* into MoS page, tag, index and in-page offset."""
        self.validate(address)
        mos_page = address // self.mos_page_bytes
        offset = address % self.mos_page_bytes
        return DecomposedAddress(mos_page=mos_page,
                                 tag=self.tag_array.tag_of(mos_page),
                                 index=self.tag_array.index_of(mos_page),
                                 offset=offset)

    # -- storage addressing ---------------------------------------------------------

    def lba_of(self, mos_page: int) -> int:
        """Starting LBA (512 B sectors) of a MoS page on the ULL-Flash."""
        if mos_page < 0 or mos_page >= self.mos_pages:
            raise ValueError(f"MoS page {mos_page} out of range")
        return mos_page * (self.mos_page_bytes // LBA_BYTES)

    def mos_page_of_lba(self, lba: int) -> int:
        """Inverse of :meth:`lba_of`."""
        return lba // (self.mos_page_bytes // LBA_BYTES)

    # -- NVDIMM layout ---------------------------------------------------------------

    @property
    def pinned_region_base(self) -> int:
        return self.nvdimm.capacity_bytes - self.nvdimm.pinned_region_bytes

    def is_pinned(self, nvdimm_offset: int) -> bool:
        """True when the offset falls in the MMU-invisible pinned region."""
        if nvdimm_offset < 0 or nvdimm_offset >= self.nvdimm.capacity_bytes:
            raise ValueError("offset outside the NVDIMM")
        return nvdimm_offset >= self.pinned_region_base

    def cache_slot_offset(self, index: int) -> int:
        """NVDIMM byte offset of cache entry *index*."""
        offset = index * self.mos_page_bytes
        if offset >= self.pinned_region_base:
            raise ValueError("cache slot overlaps the pinned region")
        return offset

    # -- reporting -------------------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        stats = {f"tag_array.{key}": value
                 for key, value in self.tag_array.statistics().items()}
        stats.update({
            "mos_capacity_bytes": float(self.mos_capacity_bytes),
            "mos_pages": float(self.mos_pages),
            "pinned_region_bytes": float(self.nvdimm.pinned_region_bytes),
        })
        return stats
