"""Register-based interface between advanced HAMS and the unboxed ULL-Flash.

The aggressive integration (Section IV-C / V-A, Figure 12) removes the PCIe
hop: the ULL-Flash NVMe controller gets a small set of command/address/data
registers and sits directly on a DDR4 channel shared with the NVDIMM.
Sending an I/O request becomes a DDR write burst of the 64 B NVMe command
into those registers; the subsequent flash<->NVDIMM DMA is arbitrated by the
*lock register* so the HAMS cache logic and the NVMe controller never drive
the bus simultaneously.

This class adapts a :class:`~repro.interconnect.ddr_bus.DDR4Bus` to the
:class:`~repro.interconnect.link.Link` interface used by the NVMe controller
model, so the same controller code serves both integrations and only the
datapath object changes.
"""

from __future__ import annotations

from typing import Dict

from ..interconnect.ddr_bus import DDR4Bus
from ..interconnect.link import Link, TransferRecord


class RegisterInterface(Link):
    """DDR4-attached command/data path of the advanced HAMS design."""

    def __init__(self, ddr_bus: DDR4Bus) -> None:
        super().__init__()
        self.ddr_bus = ddr_bus
        self.commands_delivered = 0

    # -- Link interface -------------------------------------------------------------

    def raw_transfer_time(self, size_bytes: int) -> float:
        return self.ddr_bus.raw_transfer_time(size_bytes)

    def per_transfer_overhead(self, size_bytes: int) -> float:
        """DDR activation plus the lock-register handshake, no packetisation."""
        return (self.ddr_bus.per_transfer_overhead(size_bytes)
                + 2 * self.ddr_bus.lock.toggle_ns)

    def transfer(self, size_bytes: int, at_ns: float) -> TransferRecord:
        """A flash<->NVDIMM DMA through the shared DDR4 channel.

        The transfer holds the lock register for its duration; contention
        with the HAMS cache logic shows up as a delayed start.
        """
        if size_bytes <= 0:
            raise ValueError("transfer size must be positive")
        record = self.ddr_bus.dma_transfer(size_bytes, at_ns)
        self.bytes_transferred += size_bytes
        self.transfers += 1
        self._busy_until_ns = record.finish_ns
        return record

    # -- command delivery -------------------------------------------------------------

    def deliver_command(self, at_ns: float) -> TransferRecord:
        """Write one 64 B NVMe command into the device's data-buffer registers."""
        self.commands_delivered += 1
        return self.ddr_bus.send_register_command(at_ns)

    # -- reporting -------------------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        stats = super().statistics()
        stats["commands_delivered"] = float(self.commands_delivered)
        stats.update({f"lock.{key}": value
                      for key, value in self.ddr_bus.lock.statistics().items()})
        return stats
