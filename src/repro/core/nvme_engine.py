"""The HAMS hardware NVMe queue engine (Section V-B).

In the MMF baseline, composing NVMe commands, ringing doorbells and reaping
completions is the OS's job.  HAMS moves all of it into a small hardware
engine inside the MCH: the engine fills in the opcode / PRP / LBA / length
fields of a 64 B command, enqueues it in the SQ held in pinned NVDIMM
memory, rings the doorbell, and on the completion interrupt synchronises the
CQ and clears the SQ/CQ entries — with no software on the path.

The engine also owns the two mode policies:

* **persist mode** — every eviction is tagged FUA and at most one I/O is in
  flight, serialising misses but guaranteeing that data reaches the flash
  media before the instruction retires,
* **extend mode** — evictions and fills ride the NVMe queue in parallel and
  persistency is provided by the journal-tag recovery protocol instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import HAMSConfig, NVMeConfig
from ..nvme.commands import NVMeCommand, NVMeCompletion, NVMeOpcode
from ..nvme.controller import CommandResult, NVMeController
from ..nvme.queues import QueuePair
from .register_interface import RegisterInterface


@dataclass
class EngineIOResult:
    """Timing of one engine-issued I/O (a fill read or an evict write)."""

    command: NVMeCommand
    submit_ns: float
    finish_ns: float
    protocol_ns: float
    transfer_ns: float
    device_ns: float
    flash_reads: int
    flash_programs: int

    @property
    def latency_ns(self) -> float:
        return self.finish_ns - self.submit_ns


class HardwareNVMeEngine:
    """Composes and executes NVMe commands entirely in hardware."""

    def __init__(self, controller: NVMeController, queue_pair: QueuePair,
                 hams_config: HAMSConfig, nvme_config: NVMeConfig,
                 register_interface: Optional[RegisterInterface] = None) -> None:
        self.controller = controller
        self.queue_pair = queue_pair
        self.hams_config = hams_config
        self.nvme_config = nvme_config
        self.register_interface = register_interface
        self.commands_issued = 0
        self.fills_issued = 0
        self.evictions_issued = 0
        self._busy_until_ns = 0.0

    # -- availability -------------------------------------------------------------

    def next_available(self, at_ns: float) -> float:
        """Earliest time the engine can issue a new command.

        Persist mode allows only one outstanding I/O, so a new command waits
        for the previous one; extend mode issues immediately (up to the
        device queue, which the SSD model bounds itself).
        """
        if self.hams_config.is_persist:
            return max(at_ns, self._busy_until_ns)
        return at_ns

    # -- command construction ---------------------------------------------------------

    def build_fill(self, lba: int, length_bytes: int, prp: int) -> NVMeCommand:
        """A read command that fills a MoS page from ULL-Flash into NVDIMM."""
        return NVMeCommand(opcode=NVMeOpcode.READ, lba=lba,
                           length_bytes=length_bytes, prp=prp)

    def build_evict(self, lba: int, length_bytes: int, prp: int) -> NVMeCommand:
        """A write command that evicts a dirty MoS page from NVDIMM to flash."""
        return NVMeCommand(opcode=NVMeOpcode.WRITE, lba=lba,
                           length_bytes=length_bytes, prp=prp,
                           fua=self.hams_config.is_persist)

    # -- execution -------------------------------------------------------------------

    def issue(self, command: NVMeCommand, at_ns: float) -> EngineIOResult:
        """Enqueue, execute and complete one command.

        The submission-queue append and doorbell (or, for the advanced
        design, the register-interface command burst) happen at *at_ns*; the
        returned result reflects the full round trip including the MSI and
        the CQ clean-up the engine performs.
        """
        start = self.next_available(at_ns)
        if self.register_interface is not None:
            delivery = self.register_interface.deliver_command(start)
            start = delivery.finish_ns
        self.queue_pair.sq.submit(command)
        self.queue_pair.sq.ring_doorbell()
        result = self.controller.execute(command, start)
        completion = NVMeCompletion(command_id=command.command_id,
                                    sq_head=self.queue_pair.sq.head,
                                    posted_ns=result.finish_ns)
        self.queue_pair.cq.post(completion)
        # The engine immediately synchronises the CQ and clears both entries.
        self.queue_pair.sq.fetch()
        self.queue_pair.cq.reap()
        self.commands_issued += 1
        if command.is_write:
            self.evictions_issued += 1
        else:
            self.fills_issued += 1
        self._busy_until_ns = max(self._busy_until_ns, result.finish_ns)
        return EngineIOResult(command=command, submit_ns=at_ns,
                              finish_ns=result.finish_ns,
                              protocol_ns=result.protocol_ns,
                              transfer_ns=result.transfer_ns,
                              device_ns=result.device_ns,
                              flash_reads=result.flash_reads,
                              flash_programs=result.flash_programs)

    def issue_miss(self, fill: NVMeCommand, evict: Optional[NVMeCommand],
                   at_ns: float) -> Dict[str, Optional[EngineIOResult]]:
        """Issue the command(s) for one cache miss.

        Persist mode serialises the eviction (FUA) before the fill; extend
        mode issues both and only the fill sits on the access's critical
        path — the eviction drains in the background, which is where the
        ~34 % memory-delay gap between the two modes comes from (Figure 18).
        """
        results: Dict[str, Optional[EngineIOResult]] = {"evict": None, "fill": None}
        if self.hams_config.is_persist:
            cursor = at_ns
            if evict is not None:
                evict_result = self.issue(evict, cursor)
                results["evict"] = evict_result
                cursor = evict_result.finish_ns
            results["fill"] = self.issue(fill, cursor)
            return results
        if evict is not None:
            results["evict"] = self.issue(evict, at_ns)
        results["fill"] = self.issue(fill, at_ns)
        return results

    # -- reporting -------------------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        return {
            "commands_issued": float(self.commands_issued),
            "fills_issued": float(self.fills_issued),
            "evictions_issued": float(self.evictions_issued),
        }
