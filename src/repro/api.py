"""The stable public facade of the reproduction.

Everything a library user — the CLI, the figure benchmarks, the examples,
out-of-tree scripts — needs to replay (platform x workload) experiments
lives behind this one module:

* :class:`Session` — owns the experiment scale, the scaled Table II system
  configuration, the worker pool and the content-addressed run cache, and
  exposes the replay verbs,
* :func:`simulate` / :func:`compare` / :func:`sweep` — one-shot conveniences
  that build a throwaway session,
* :func:`run_sharded` — plan/execute/merge an experiment through the
  :mod:`repro.distrib` sharding tier (bit-identical to the unsharded run),
* :func:`platforms` / :func:`workloads` — the valid axis names.

The facade is a thin, stable skin over the runner subsystem: a
:class:`Session` fans work out over a process pool exactly like
``python -m repro run`` does, every run is described by a picklable
:class:`~repro.runner.specs.RunSpec`, and results come back as
:class:`~repro.platforms.base.RunResult` records or
:class:`~repro.analysis.experiments.ExperimentResult` matrices.  Reaching
below it (``Platform``, ``WorkloadTrace``, the device models) remains
supported for platform authors, but the names here are the ones the
project promises to keep.

Quick start::

    from repro import Session

    session = Session()
    result = session.simulate("hams-TE", "seqRd")
    print(result.operations_per_second)

    experiment = session.compare(["mmap", "hams-TE", "oracle"], ["seqRd"])
    print(experiment.mean_speedup("hams-TE", "mmap"))
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, List, Mapping, Optional, Sequence, Union

from .analysis.experiments import ExperimentResult
from .config import SystemConfig
from .distrib import run_sharded_specs
from .platforms.base import RunResult
from .platforms.registry import PLATFORM_NAMES, available_platforms
from .runner.parallel import ParallelExperimentRunner
from .runner.specs import RunSpec, matrix_specs
from .workloads.registry import ExperimentScale, all_workload_names
from .workloads.trace import WorkloadTrace

__all__ = [
    "Session",
    "simulate",
    "compare",
    "sweep",
    "run_sharded",
    "platforms",
    "workloads",
]


def platforms(figure_order: bool = False) -> List[str]:
    """Valid platform names: the full registry, or Figure 16 legend order."""
    return list(PLATFORM_NAMES) if figure_order else available_platforms()


def workloads() -> List[str]:
    """Valid workload names, in Table III order."""
    return all_workload_names()


class Session:
    """One configured experiment context: scale, config, pool, cache.

    Parameters mirror the underlying
    :class:`~repro.runner.parallel.ParallelExperimentRunner`: *scale*
    shrinks instruction streams and capacities together (defaults to the
    library scale), *base_config* is the unscaled Table II system,
    *workers* sizes the process pool (``None``: ``$REPRO_WORKERS`` or the
    CPU count), and *cache_dir* enables the content-addressed run cache.

    *shards* routes every matrix verb (:meth:`collect`, :meth:`compare`,
    :meth:`sweep`) through the :mod:`repro.distrib` sharding tier by
    default: the spec list is planned into that many shard manifests,
    executed (in this process, shard by shard) and provenance-checked
    merged — bit-identical to the unsharded path, and leaving reusable
    shard artifacts behind under *spool_dir* when one is given.
    """

    def __init__(self, scale: Optional[ExperimentScale] = None,
                 base_config: Optional[SystemConfig] = None, *,
                 workers: Optional[int] = None,
                 cache_dir: Optional[Path] = None,
                 force: bool = False,
                 shards: Optional[int] = None,
                 spool_dir: Optional[Path] = None,
                 wait_timeout: Optional[float] = None) -> None:
        self._runner = ParallelExperimentRunner(
            scale=scale, base_config=base_config, workers=workers,
            cache_dir=cache_dir, force=force)
        self._shards = shards
        self._spool_dir = spool_dir
        # Bounds how long a sharded run waits on shards claimed by workers
        # on other hosts (None: wait indefinitely, with stderr notices).
        self._wait_timeout = wait_timeout

    # -- context accessors ----------------------------------------------------------

    @property
    def runner(self) -> ParallelExperimentRunner:
        """The underlying pool runner (cache statistics, advanced use)."""
        return self._runner

    @property
    def scale(self) -> ExperimentScale:
        return self._runner.scale

    @property
    def config(self) -> SystemConfig:
        """The scaled system configuration every run of this session uses."""
        return self._runner.config

    @property
    def workers(self) -> int:
        return self._runner.workers

    def trace(self, workload: str,
              dataset_bytes_override: Optional[int] = None) -> WorkloadTrace:
        """Build (and memoise) the columnar trace for one workload."""
        return self._runner.trace(workload, dataset_bytes_override)

    # -- replay verbs ---------------------------------------------------------------

    def simulate(self, platform: str, workload: str, *,
                 dataset_bytes_override: Optional[int] = None,
                 config_overrides: Optional[Mapping[str, Mapping[str, Any]]]
                 = None,
                 platform_kwargs: Optional[Mapping[str, Any]] = None
                 ) -> RunResult:
        """Replay one workload on one platform and return its RunResult."""
        return self._runner.run_spec(RunSpec(
            platform=platform, workload=workload,
            dataset_bytes_override=dataset_bytes_override,
            config_overrides=dict(config_overrides or {}),
            platform_kwargs=dict(platform_kwargs or {})))

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute explicit run specs, preserving input order."""
        return self._runner.run_specs(specs)

    def _effective_shards(self, shards: Optional[int]) -> Optional[int]:
        value = shards if shards is not None else self._shards
        # 0 (or anything non-positive) is the natural "off" value when the
        # count is plumbed from an env var or config: treat it as unsharded
        # rather than failing deep inside the planner.
        if value is None or value <= 0:
            return None
        return value

    def collect(self, specs: Sequence[RunSpec], *,
                shards: Optional[int] = None,
                name: str = "session") -> ExperimentResult:
        """Execute specs and merge the runs into one ExperimentResult.

        With *shards* (or a session-level default), execution goes through
        the plan/work/merge pipeline of :mod:`repro.distrib` instead of one
        pool call — same results, shard artifacts on the side.
        """
        shards = self._effective_shards(shards)
        if shards is None:
            return self._runner.collect(specs)
        return run_sharded_specs(
            name, list(specs), self.config, self.scale, shards,
            spool_dir=self._spool_dir, workers=self.workers,
            force=self._runner.force,
            # The session's own content-addressed cache keeps serving (and
            # absorbing) runs when execution is sharded.
            cache_dir=self._runner.cache.root,
            wait_timeout=self._wait_timeout)

    def compare(self, platforms: Iterable[str], workloads: Iterable[str], *,
                shards: Optional[int] = None) -> ExperimentResult:
        """Replay the full (platform x workload) matrix."""
        shards = self._effective_shards(shards)
        if shards is None:
            return self._runner.run_matrix(platforms, workloads)
        return self.collect(matrix_specs(list(platforms), list(workloads)),
                            shards=shards)

    def sweep(self, platform: str, workloads: Iterable[str],
              section: str, field: str, values: Sequence[Any], *,
              labels: Optional[Sequence[str]] = None,
              shards: Optional[int] = None) -> ExperimentResult:
        """Sweep one config field of one platform across *values*.

        Each value becomes one labelled run per workload (default label:
        ``str(value)``), so the result is keyed ``(label, workload)`` —
        the shape the Figure 20a page-size study plots.  *shards* splits
        the sweep across the distributed tier.
        """
        values = list(values)
        if labels is None:
            labels = [str(value) for value in values]
        labels = list(labels)
        if len(labels) != len(values):
            raise ValueError("labels must match values")
        return self.collect([
            RunSpec(platform=platform, workload=workload,
                    config_overrides={section: {field: value}},
                    label=label)
            for workload in workloads
            for value, label in zip(values, labels)
        ], shards=shards, name=f"sweep-{platform}-{section}.{field}")


def _session(scale: Optional[ExperimentScale],
             workers: Optional[int]) -> Session:
    return Session(scale=scale, workers=workers)


def simulate(platform: str, workload: str, *,
             scale: Optional[ExperimentScale] = None,
             workers: Optional[int] = None, **kwargs) -> RunResult:
    """One-shot :meth:`Session.simulate` with a throwaway session."""
    return _session(scale, workers).simulate(platform, workload, **kwargs)


def compare(platforms: Iterable[str], workloads: Iterable[str], *,
            scale: Optional[ExperimentScale] = None,
            workers: Optional[int] = None) -> ExperimentResult:
    """One-shot :meth:`Session.compare` with a throwaway session."""
    return _session(scale, workers).compare(platforms, workloads)


def sweep(platform: str, workloads: Iterable[str], section: str, field: str,
          values: Sequence[Any], *, labels: Optional[Sequence[str]] = None,
          scale: Optional[ExperimentScale] = None,
          workers: Optional[int] = None,
          shards: Optional[int] = None) -> ExperimentResult:
    """One-shot :meth:`Session.sweep` with a throwaway session."""
    return _session(scale, workers).sweep(platform, workloads, section,
                                          field, values, labels=labels,
                                          shards=shards)


def run_sharded(platforms: Iterable[str], workloads: Iterable[str], *,
                shards: int = 2,
                name: str = "sharded",
                scale: Optional[ExperimentScale] = None,
                base_config: Optional[SystemConfig] = None,
                workers: Optional[int] = None,
                spool_dir: Optional[Path] = None,
                wait_timeout: Optional[float] = None) -> ExperimentResult:
    """Replay a matrix through the distributed tier: plan, work, merge.

    The "cluster of one" convenience: shards are planned, executed in this
    process and provenance-check merged, producing an
    :class:`~repro.analysis.experiments.ExperimentResult` bit-identical to
    :func:`compare` on the same matrix.  Give *spool_dir* to keep the shard
    manifests/artifacts (or to let workers on other hosts pick shards up
    from a shared filesystem instead — see ``python -m repro shard``).
    """
    session = Session(scale=scale, base_config=base_config, workers=workers,
                      shards=shards, spool_dir=spool_dir,
                      wait_timeout=wait_timeout)
    return session.collect(
        matrix_specs(list(platforms), list(workloads)), name=name)
