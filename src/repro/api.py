"""The stable public facade of the reproduction.

Everything a library user — the CLI, the figure benchmarks, the examples,
out-of-tree scripts — needs to replay (platform x workload) experiments
lives behind this one module:

* :class:`Session` — owns the experiment scale, the scaled Table II system
  configuration, the worker pool, the content-addressed run cache and the
  execution tier, and exposes the replay verbs,
* :meth:`Session.submit` — the unified entry point: hand specs to an
  :class:`~repro.exec.Executor` (serial, pool or sharded) and get a
  streaming :class:`~repro.exec.ExperimentHandle` back immediately,
* :func:`simulate` / :func:`compare` / :func:`sweep` — one-shot conveniences
  that build a throwaway session,
* :func:`run_sharded` — plan/execute/merge an experiment through the
  :mod:`repro.distrib` sharding tier (bit-identical to the unsharded run),
* :func:`platforms` / :func:`workloads` — the valid axis names.

The facade is a thin, stable skin over the execution layer: a
:class:`Session` submits picklable :class:`~repro.runner.specs.RunSpec`
records to an executor, and results come back as
:class:`~repro.platforms.base.RunResult` records or
:class:`~repro.analysis.experiments.ExperimentResult` matrices.  The
blocking verbs (:meth:`Session.collect` / :meth:`Session.compare` /
:meth:`Session.sweep`) are consumers of :meth:`Session.submit` — they
simply drain the handle — and stay supported indefinitely; out-of-tree
callers migrate to ``submit()`` only when they want streaming results,
progress or cancellation.  Reaching below the facade (``Platform``,
``WorkloadTrace``, the device models) remains supported for platform
authors, but the names here are the ones the project promises to keep.

Quick start::

    from repro import Session

    session = Session()
    result = session.simulate("hams-TE", "seqRd")
    print(result.operations_per_second)

    experiment = session.compare(["mmap", "hams-TE", "oracle"], ["seqRd"])
    print(experiment.mean_speedup("hams-TE", "mmap"))

Streaming::

    handle = session.submit(specs, name="sweep")
    for run in handle.iter_results():      # as each run completes
        print(run.spec.platform, run.result.operations_per_second,
              "cached" if run.cache_hit else "", handle.progress().format())
    experiment = handle.result()           # == session.collect(specs)
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, List, Mapping, Optional, Sequence, Union

from .analysis.experiments import ExperimentResult
from .config import SystemConfig
from .exec import (
    ExecutionContext,
    Executor,
    ExperimentHandle,
    ShardedExecutor,
    resolve_executor,
)
from .platforms.base import RunResult
from .platforms.registry import PLATFORM_NAMES, available_platforms
from .runner.parallel import ParallelExperimentRunner
from .runner.specs import RunSpec, matrix_specs
from .sweep.driver import AdaptiveSweepResult, sweep_labels
from .workloads.registry import ExperimentScale, all_workload_names
from .workloads.trace import WorkloadTrace

__all__ = [
    "Session",
    "ServeClient",
    "simulate",
    "compare",
    "sweep",
    "adaptive_sweep",
    "AdaptiveSweepResult",
    "run_sharded",
    "platforms",
    "workloads",
]


def platforms(figure_order: bool = False) -> List[str]:
    """Valid platform names: the full registry, or Figure 16 legend order."""
    return list(PLATFORM_NAMES) if figure_order else available_platforms()


def workloads() -> List[str]:
    """Valid workload names, in Table III order."""
    return all_workload_names()


class Session:
    """One configured experiment context: scale, config, pool, cache.

    Parameters mirror the underlying
    :class:`~repro.runner.parallel.ParallelExperimentRunner`: *scale*
    shrinks instruction streams and capacities together (defaults to the
    library scale), *base_config* is the unscaled Table II system,
    *workers* sizes the process pool (``None``: ``$REPRO_WORKERS`` or the
    CPU count), and *cache_dir* enables the content-addressed run cache.

    *executor* selects the execution tier every verb goes through:
    ``"serial"`` (inline, no pool), ``"pool"`` (the default process-pool
    tier), ``"sharded"`` (the :mod:`repro.distrib` plan/claim/merge
    protocol), or any object implementing the
    :class:`~repro.exec.Executor` protocol.  All tiers produce
    bit-identical results — the knob trades mechanism, not answers.

    *shards* routes every matrix verb (:meth:`collect`, :meth:`compare`,
    :meth:`sweep`) through the :mod:`repro.distrib` sharding tier by
    default: the spec list is planned into that many shard manifests,
    executed (in this process, shard by shard) and provenance-checked
    merged — bit-identical to the unsharded path, and leaving reusable
    shard artifacts behind under *spool_dir* when one is given.
    """

    def __init__(self, scale: Optional[ExperimentScale] = None,
                 base_config: Optional[SystemConfig] = None, *,
                 workers: Optional[int] = None,
                 cache_dir: Optional[Path] = None,
                 force: bool = False,
                 executor: Union[str, Executor, None] = None,
                 shards: Optional[int] = None,
                 spool_dir: Optional[Path] = None,
                 wait_timeout: Optional[float] = None) -> None:
        self._runner = ParallelExperimentRunner(
            scale=scale, base_config=base_config, workers=workers,
            cache_dir=cache_dir, force=force)
        self._executor = executor
        self._shards = shards
        self._spool_dir = spool_dir
        # Bounds how long a sharded run waits on shards claimed by workers
        # on other hosts (None: wait indefinitely, with stderr notices).
        self._wait_timeout = wait_timeout

    # -- context accessors ----------------------------------------------------------

    @property
    def runner(self) -> ParallelExperimentRunner:
        """The underlying pool runner (cache statistics, advanced use)."""
        return self._runner

    @property
    def scale(self) -> ExperimentScale:
        return self._runner.scale

    @property
    def config(self) -> SystemConfig:
        """The scaled system configuration every run of this session uses."""
        return self._runner.config

    @property
    def workers(self) -> int:
        return self._runner.workers

    def trace(self, workload: str,
              dataset_bytes_override: Optional[int] = None) -> WorkloadTrace:
        """Build (and memoise) the columnar trace for one workload."""
        return self._runner.trace(workload, dataset_bytes_override)

    # -- replay verbs ---------------------------------------------------------------

    def simulate(self, platform: str, workload: str, *,
                 dataset_bytes_override: Optional[int] = None,
                 config_overrides: Optional[Mapping[str, Mapping[str, Any]]]
                 = None,
                 platform_kwargs: Optional[Mapping[str, Any]] = None
                 ) -> RunResult:
        """Replay one workload on one platform and return its RunResult."""
        return self._runner.run_spec(RunSpec(
            platform=platform, workload=workload,
            dataset_bytes_override=dataset_bytes_override,
            config_overrides=dict(config_overrides or {}),
            platform_kwargs=dict(platform_kwargs or {})))

    def scenario(self, scenario: "ScenarioSpec", platform: str, *,
                 label: Optional[str] = None,
                 config_overrides: Optional[Mapping[str, Mapping[str, Any]]]
                 = None,
                 platform_kwargs: Optional[Mapping[str, Any]] = None
                 ) -> RunResult:
        """Replay a multi-tenant scenario on one platform.

        *scenario* is a :class:`~repro.scenario.spec.ScenarioSpec` (or a
        plain dict in its ``from_dict`` shape): N tenants whose access
        streams are deterministically interleaved into one shared-system
        trace, replayed under the spec's QoS policy.  The returned
        :class:`~repro.platforms.base.RunResult` carries per-tenant
        statistics in ``result.tenants`` (one entry per tenant plus the
        ``"aggregate"`` merge); every other field describes the mixed run
        exactly as :meth:`simulate` would.  Scenario runs flow through the
        same executor tiers and content-addressed run cache as plain specs.
        """
        from .scenario.engine import scenario_run_spec
        from .scenario.spec import ScenarioSpec

        if isinstance(scenario, Mapping):
            scenario = ScenarioSpec.from_dict(scenario)
        return self._runner.run_spec(scenario_run_spec(
            scenario, platform, label=label,
            config_overrides=config_overrides,
            platform_kwargs=platform_kwargs))

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute explicit run specs, preserving input order."""
        return self._runner.run_specs(specs)

    def _effective_shards(self, shards: Optional[int]) -> Optional[int]:
        value = shards if shards is not None else self._shards
        # 0 (or anything non-positive) is the natural "off" value when the
        # count is plumbed from an env var or config: treat it as unsharded
        # rather than failing deep inside the planner.
        if value is None or value <= 0:
            return None
        return value

    def submit(self, specs: Sequence[RunSpec], *,
               name: str = "session",
               executor: Union[str, Executor, None] = None,
               shards: Optional[int] = None,
               events_path: Optional[Path] = None) -> ExperimentHandle:
        """Hand *specs* to an executor; returns a streaming handle at once.

        The unified entry point every blocking verb consumes.  *executor*
        overrides the session's tier for this submission; with neither, the
        pool tier runs (or the sharded tier when *shards* — per-call or
        session-level — is in play).  *events_path* additionally dumps the
        typed event stream as a ``repro.events/1`` JSONL artifact.

        The handle's :meth:`~repro.exec.ExperimentHandle.result` is
        bit-identical to :meth:`collect` on the same specs, on every tier.
        """
        shards = self._effective_shards(shards)
        chosen = resolve_executor(
            executor if executor is not None else self._executor,
            shards=shards)
        ctx = ExecutionContext(
            runner=self._runner, name=name, shards=shards,
            spool_dir=self._spool_dir, wait_timeout=self._wait_timeout,
            events_path=events_path)
        return chosen.submit(specs, ctx)

    def collect(self, specs: Sequence[RunSpec], *,
                shards: Optional[int] = None,
                name: str = "session") -> ExperimentResult:
        """Execute specs and merge the runs into one ExperimentResult.

        A blocking consumer of :meth:`submit` (it drains the handle).  With
        *shards* (or a session-level default), execution goes through the
        plan/claim/merge protocol of :mod:`repro.distrib` instead of one
        pool call — same results, shard artifacts on the side.
        """
        return self.submit(specs, name=name, shards=shards).result()

    def compare(self, platforms: Iterable[str], workloads: Iterable[str], *,
                shards: Optional[int] = None) -> ExperimentResult:
        """Replay the full (platform x workload) matrix."""
        return self.collect(matrix_specs(list(platforms), list(workloads)),
                            shards=shards, name="compare")

    def sweep(self, platform: str, workloads: Iterable[str],
              section: str, field: str, values: Sequence[Any], *,
              labels: Optional[Sequence[str]] = None,
              shards: Optional[int] = None) -> ExperimentResult:
        """Sweep one config field of one platform across *values*.

        Each value becomes one labelled run per workload (default label:
        ``str(value)``), so the result is keyed ``(label, workload)`` —
        the shape the Figure 20a page-size study plots.  *shards* splits
        the sweep across the distributed tier.

        Labels must be unique: two values that stringify identically
        (``4096`` and ``"4096"``) or user-passed duplicate labels would
        silently overwrite each other's result keys, so they raise
        ``ValueError`` instead.
        """
        values = list(values)
        labels = sweep_labels(values, labels)
        return self.collect([
            RunSpec(platform=platform, workload=workload,
                    config_overrides={section: {field: value}},
                    label=label)
            for workload in workloads
            for value, label in zip(values, labels)
        ], shards=shards, name=f"sweep-{platform}-{section}.{field}")

    def adaptive_sweep(self, platform: str, workloads: Iterable[str],
                       section: str, field: str, values: Sequence[Any], *,
                       labels: Optional[Sequence[str]] = None,
                       metric: Any = "operations_per_second",
                       tolerance: float = 0.05,
                       budget: Optional[int] = None,
                       seed_points: int = 5,
                       max_rounds: int = 12,
                       settle_rounds: Optional[int] = 3,
                       name: Optional[str] = None,
                       executor: Union[str, Executor, None] = None,
                       shards: Optional[int] = None,
                       observer: Any = None) -> AdaptiveSweepResult:
        """Sweep one config field adaptively: refine where the curve bends.

        *values* is the **grid** a fixed-grid :meth:`sweep` would
        enumerate, as a strictly increasing numeric sequence.  Instead of
        evaluating every cell, the driver seeds *seed_points* of them per
        workload, then per round bisects the grid intervals around any
        evaluated point whose discrete-curvature score of *metric* (a
        ``RunResult`` attribute name or a callable) exceeds *tolerance* —
        knee finding.  Candidates whose content-addressed run-cache key is
        already resolved cost nothing; *budget* (estimated simulated
        accesses, via :func:`~repro.distrib.manifest.estimate_spec_cost`)
        caps the spend and records what it pruned; a workload whose knee
        estimate holds still for *settle_rounds* rounds stops refining.

        Every evaluated cell is submitted as exactly the spec the
        fixed-grid sweep would build, so the cells both run are
        bit-identical and share cache entries.  Returns an
        :class:`~repro.sweep.AdaptiveSweepResult`: the experiment (same
        ``(label, workload)`` keys as :meth:`sweep`), the per-round
        refinement trace, per-workload knees and the cost accounting.
        """
        from .sweep.driver import AdaptiveSweepDriver
        return AdaptiveSweepDriver(
            self, platform, list(workloads), section, field, values,
            labels=labels, metric=metric, tolerance=tolerance,
            budget=budget, seed_points=seed_points, max_rounds=max_rounds,
            settle_rounds=settle_rounds, name=name, executor=executor,
            shards=shards, observer=observer).run()


def _validate_execution_knobs(executor: Union[str, Executor, None],
                              shards: Optional[int],
                              spool_dir: Optional[Path],
                              wait_timeout: Optional[float]) -> None:
    """Reject conflicting one-shot execution knobs up front.

    The sharded tier is the only consumer of *spool_dir*/*wait_timeout*,
    and an :class:`Executor` instance carries its own configuration — so a
    combination that would silently drop (or half-apply) a knob is an
    error here, not a surprise later.
    """
    effective = shards if shards is not None and shards > 0 else None
    if isinstance(executor, str):
        sharded = executor == "sharded"
        if not sharded and effective is not None:
            raise ValueError(
                f"executor={executor!r} conflicts with shards={shards}: "
                f"the {executor!r} tier does not shard; pass "
                f"executor='sharded' (or drop shards=)")
    elif executor is None:
        sharded = effective is not None
    else:
        if effective is not None:
            raise ValueError(
                f"shards={shards} conflicts with an Executor instance: "
                f"configure the instance instead (e.g. "
                f"ShardedExecutor(shards={shards}))")
        sharded = isinstance(executor, ShardedExecutor)
    if not sharded:
        dead = [knob for knob, value in (("spool_dir", spool_dir),
                                         ("wait_timeout", wait_timeout))
                if value is not None]
        if dead:
            raise ValueError(
                f"{' and '.join(dead)} only apply to the sharded tier; "
                f"pass shards=N or executor='sharded' (or a "
                f"ShardedExecutor instance) to use "
                f"{'them' if len(dead) > 1 else 'it'}")


def _session(scale: Optional[ExperimentScale],
             workers: Optional[int], *,
             executor: Union[str, Executor, None] = None,
             shards: Optional[int] = None,
             spool_dir: Optional[Path] = None,
             wait_timeout: Optional[float] = None) -> Session:
    _validate_execution_knobs(executor, shards, spool_dir, wait_timeout)
    return Session(scale=scale, workers=workers, executor=executor,
                   shards=shards, spool_dir=spool_dir,
                   wait_timeout=wait_timeout)


def simulate(platform: str, workload: str, *,
             scale: Optional[ExperimentScale] = None,
             workers: Optional[int] = None, **kwargs) -> RunResult:
    """One-shot :meth:`Session.simulate` with a throwaway session."""
    return _session(scale, workers).simulate(platform, workload, **kwargs)


def compare(platforms: Iterable[str], workloads: Iterable[str], *,
            scale: Optional[ExperimentScale] = None,
            workers: Optional[int] = None,
            executor: Union[str, Executor, None] = None,
            shards: Optional[int] = None,
            spool_dir: Optional[Path] = None,
            wait_timeout: Optional[float] = None) -> ExperimentResult:
    """One-shot :meth:`Session.compare` with a throwaway session.

    Accepts the same execution knobs as :func:`sweep` — the two one-shot
    matrix helpers are deliberately symmetric: *executor* picks the tier,
    *shards* routes through the distributed tier, *spool_dir* keeps the
    shard artifacts, *wait_timeout* bounds waiting on foreign workers.
    Conflicting combinations (a non-sharded tier with sharded-only knobs,
    or *shards* alongside an :class:`Executor` instance) raise
    ``ValueError`` instead of half-applying.
    """
    return _session(scale, workers, executor=executor, shards=shards,
                    spool_dir=spool_dir,
                    wait_timeout=wait_timeout).compare(platforms, workloads)


def sweep(platform: str, workloads: Iterable[str], section: str, field: str,
          values: Sequence[Any], *, labels: Optional[Sequence[str]] = None,
          scale: Optional[ExperimentScale] = None,
          workers: Optional[int] = None,
          executor: Union[str, Executor, None] = None,
          shards: Optional[int] = None,
          spool_dir: Optional[Path] = None,
          wait_timeout: Optional[float] = None) -> ExperimentResult:
    """One-shot :meth:`Session.sweep` with a throwaway session."""
    return _session(scale, workers, executor=executor, shards=shards,
                    spool_dir=spool_dir, wait_timeout=wait_timeout).sweep(
        platform, workloads, section, field, values, labels=labels)


def adaptive_sweep(platform: str, workloads: Iterable[str], section: str,
                   field: str, values: Sequence[Any], *,
                   labels: Optional[Sequence[str]] = None,
                   metric: Any = "operations_per_second",
                   tolerance: float = 0.05,
                   budget: Optional[int] = None,
                   seed_points: int = 5,
                   max_rounds: int = 12,
                   settle_rounds: Optional[int] = 3,
                   name: Optional[str] = None,
                   scale: Optional[ExperimentScale] = None,
                   workers: Optional[int] = None,
                   cache_dir: Optional[Path] = None,
                   executor: Union[str, Executor, None] = None,
                   shards: Optional[int] = None,
                   spool_dir: Optional[Path] = None,
                   wait_timeout: Optional[float] = None
                   ) -> AdaptiveSweepResult:
    """One-shot :meth:`Session.adaptive_sweep` with a throwaway session.

    *cache_dir* matters more here than for the other one-shots: pointing
    it at a persistent directory is what lets a re-run (or a sweep that
    shares cells with an earlier fixed-grid study) resolve those cells as
    zero-cost cache skips.
    """
    _validate_execution_knobs(executor, shards, spool_dir, wait_timeout)
    session = Session(scale=scale, workers=workers, cache_dir=cache_dir,
                      executor=executor, shards=shards, spool_dir=spool_dir,
                      wait_timeout=wait_timeout)
    return session.adaptive_sweep(
        platform, workloads, section, field, values, labels=labels,
        metric=metric, tolerance=tolerance, budget=budget,
        seed_points=seed_points, max_rounds=max_rounds,
        settle_rounds=settle_rounds, name=name)


def run_sharded(platforms: Iterable[str], workloads: Iterable[str], *,
                shards: int = 2,
                name: str = "sharded",
                scale: Optional[ExperimentScale] = None,
                base_config: Optional[SystemConfig] = None,
                workers: Optional[int] = None,
                spool_dir: Optional[Path] = None,
                wait_timeout: Optional[float] = None) -> ExperimentResult:
    """Replay a matrix through the distributed tier: plan, work, merge.

    .. deprecated:: PR 4
        A working shim kept for out-of-tree callers;
        ``Session(shards=N).compare(...)`` — or ``Session(executor=
        "sharded").submit(...)`` for streaming results — is the same thing
        through the unified executor layer.

    The "cluster of one" convenience: shards are planned, executed in this
    process and provenance-check merged, producing an
    :class:`~repro.analysis.experiments.ExperimentResult` bit-identical to
    :func:`compare` on the same matrix.  Give *spool_dir* to keep the shard
    manifests/artifacts (or to let workers on other hosts pick shards up
    from a shared filesystem instead — see ``python -m repro shard``).
    """
    session = Session(scale=scale, base_config=base_config, workers=workers,
                      shards=shards, spool_dir=spool_dir,
                      wait_timeout=wait_timeout)
    return session.collect(
        matrix_specs(list(platforms), list(workloads)), name=name)


# The serve tier's client is part of the stable facade (submit experiments
# to a running ``repro serve`` daemon).  Imported last: the serve daemon
# itself builds Sessions, so this module must be fully defined first.
from .serve.client import ServeClient  # noqa: E402
