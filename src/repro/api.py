"""The stable public facade of the reproduction.

Everything a library user — the CLI, the figure benchmarks, the examples,
out-of-tree scripts — needs to replay (platform x workload) experiments
lives behind this one module:

* :class:`Session` — owns the experiment scale, the scaled Table II system
  configuration, the worker pool and the content-addressed run cache, and
  exposes the replay verbs,
* :func:`simulate` / :func:`compare` / :func:`sweep` — one-shot conveniences
  that build a throwaway session,
* :func:`platforms` / :func:`workloads` — the valid axis names.

The facade is a thin, stable skin over the runner subsystem: a
:class:`Session` fans work out over a process pool exactly like
``python -m repro run`` does, every run is described by a picklable
:class:`~repro.runner.specs.RunSpec`, and results come back as
:class:`~repro.platforms.base.RunResult` records or
:class:`~repro.analysis.experiments.ExperimentResult` matrices.  Reaching
below it (``Platform``, ``WorkloadTrace``, the device models) remains
supported for platform authors, but the names here are the ones the
project promises to keep.

Quick start::

    from repro import Session

    session = Session()
    result = session.simulate("hams-TE", "seqRd")
    print(result.operations_per_second)

    experiment = session.compare(["mmap", "hams-TE", "oracle"], ["seqRd"])
    print(experiment.mean_speedup("hams-TE", "mmap"))
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, List, Mapping, Optional, Sequence, Union

from .analysis.experiments import ExperimentResult
from .config import SystemConfig
from .platforms.base import RunResult
from .platforms.registry import PLATFORM_NAMES, available_platforms
from .runner.parallel import ParallelExperimentRunner
from .runner.specs import RunSpec
from .workloads.registry import ExperimentScale, all_workload_names
from .workloads.trace import WorkloadTrace

__all__ = [
    "Session",
    "simulate",
    "compare",
    "sweep",
    "platforms",
    "workloads",
]


def platforms(figure_order: bool = False) -> List[str]:
    """Valid platform names: the full registry, or Figure 16 legend order."""
    return list(PLATFORM_NAMES) if figure_order else available_platforms()


def workloads() -> List[str]:
    """Valid workload names, in Table III order."""
    return all_workload_names()


class Session:
    """One configured experiment context: scale, config, pool, cache.

    Parameters mirror the underlying
    :class:`~repro.runner.parallel.ParallelExperimentRunner`: *scale*
    shrinks instruction streams and capacities together (defaults to the
    library scale), *base_config* is the unscaled Table II system,
    *workers* sizes the process pool (``None``: ``$REPRO_WORKERS`` or the
    CPU count), and *cache_dir* enables the content-addressed run cache.
    """

    def __init__(self, scale: Optional[ExperimentScale] = None,
                 base_config: Optional[SystemConfig] = None, *,
                 workers: Optional[int] = None,
                 cache_dir: Optional[Path] = None,
                 force: bool = False) -> None:
        self._runner = ParallelExperimentRunner(
            scale=scale, base_config=base_config, workers=workers,
            cache_dir=cache_dir, force=force)

    # -- context accessors ----------------------------------------------------------

    @property
    def runner(self) -> ParallelExperimentRunner:
        """The underlying pool runner (cache statistics, advanced use)."""
        return self._runner

    @property
    def scale(self) -> ExperimentScale:
        return self._runner.scale

    @property
    def config(self) -> SystemConfig:
        """The scaled system configuration every run of this session uses."""
        return self._runner.config

    @property
    def workers(self) -> int:
        return self._runner.workers

    def trace(self, workload: str,
              dataset_bytes_override: Optional[int] = None) -> WorkloadTrace:
        """Build (and memoise) the columnar trace for one workload."""
        return self._runner.trace(workload, dataset_bytes_override)

    # -- replay verbs ---------------------------------------------------------------

    def simulate(self, platform: str, workload: str, *,
                 dataset_bytes_override: Optional[int] = None,
                 config_overrides: Optional[Mapping[str, Mapping[str, Any]]]
                 = None,
                 platform_kwargs: Optional[Mapping[str, Any]] = None
                 ) -> RunResult:
        """Replay one workload on one platform and return its RunResult."""
        return self._runner.run_spec(RunSpec(
            platform=platform, workload=workload,
            dataset_bytes_override=dataset_bytes_override,
            config_overrides=dict(config_overrides or {}),
            platform_kwargs=dict(platform_kwargs or {})))

    def run(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute explicit run specs, preserving input order."""
        return self._runner.run_specs(specs)

    def collect(self, specs: Sequence[RunSpec]) -> ExperimentResult:
        """Execute specs and merge the runs into one ExperimentResult."""
        return self._runner.collect(specs)

    def compare(self, platforms: Iterable[str],
                workloads: Iterable[str]) -> ExperimentResult:
        """Replay the full (platform x workload) matrix."""
        return self._runner.run_matrix(platforms, workloads)

    def sweep(self, platform: str, workloads: Iterable[str],
              section: str, field: str, values: Sequence[Any], *,
              labels: Optional[Sequence[str]] = None) -> ExperimentResult:
        """Sweep one config field of one platform across *values*.

        Each value becomes one labelled run per workload (default label:
        ``str(value)``), so the result is keyed ``(label, workload)`` —
        the shape the Figure 20a page-size study plots.
        """
        values = list(values)
        if labels is None:
            labels = [str(value) for value in values]
        labels = list(labels)
        if len(labels) != len(values):
            raise ValueError("labels must match values")
        return self.collect([
            RunSpec(platform=platform, workload=workload,
                    config_overrides={section: {field: value}},
                    label=label)
            for workload in workloads
            for value, label in zip(values, labels)
        ])


def _session(scale: Optional[ExperimentScale],
             workers: Optional[int]) -> Session:
    return Session(scale=scale, workers=workers)


def simulate(platform: str, workload: str, *,
             scale: Optional[ExperimentScale] = None,
             workers: Optional[int] = None, **kwargs) -> RunResult:
    """One-shot :meth:`Session.simulate` with a throwaway session."""
    return _session(scale, workers).simulate(platform, workload, **kwargs)


def compare(platforms: Iterable[str], workloads: Iterable[str], *,
            scale: Optional[ExperimentScale] = None,
            workers: Optional[int] = None) -> ExperimentResult:
    """One-shot :meth:`Session.compare` with a throwaway session."""
    return _session(scale, workers).compare(platforms, workloads)


def sweep(platform: str, workloads: Iterable[str], section: str, field: str,
          values: Sequence[Any], *, labels: Optional[Sequence[str]] = None,
          scale: Optional[ExperimentScale] = None,
          workers: Optional[int] = None) -> ExperimentResult:
    """One-shot :meth:`Session.sweep` with a throwaway session."""
    return _session(scale, workers).sweep(platform, workloads, section,
                                          field, values, labels=labels)
