"""SATA 3.0 link model (used only for the SATA SSD comparison in Figure 6)."""

from __future__ import annotations

from ..config import SATAConfig
from .link import Link


class SATALink(Link):
    """SATA 3.0 host link: ~550 MB/s with a heavy per-command AHCI overhead."""

    def __init__(self, config: SATAConfig) -> None:
        super().__init__()
        self.config = config

    def raw_transfer_time(self, size_bytes: int) -> float:
        return size_bytes / self.config.bandwidth_bytes_per_ns

    def per_transfer_overhead(self, size_bytes: int) -> float:
        return self.config.command_overhead_ns
