"""Common interface for point-to-point data links.

Both HAMS integrations move pages between the NVDIMM and the ULL-Flash: the
baseline crosses a PCIe link (with packet encapsulation), the advanced design
crosses the DDR4 bus directly.  The two are interchangeable behind this
small :class:`Link` interface so the HAMS controller code is identical for
both and only the datapath object differs — exactly the architectural point
of Section IV-C.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class TransferRecord:
    """Timing of one data movement over a link."""

    start_ns: float
    finish_ns: float
    size_bytes: int
    overhead_ns: float

    @property
    def latency_ns(self) -> float:
        return self.finish_ns - self.start_ns


class Link(abc.ABC):
    """A shared, serialising data link with a fixed bandwidth and overhead."""

    def __init__(self) -> None:
        self.bytes_transferred = 0
        self.transfers = 0
        self._busy_until_ns = 0.0

    @abc.abstractmethod
    def raw_transfer_time(self, size_bytes: int) -> float:
        """Bus occupancy time for *size_bytes*, excluding queueing."""

    @abc.abstractmethod
    def per_transfer_overhead(self, size_bytes: int) -> float:
        """Protocol overhead added once per transfer (packetisation etc.)."""

    def transfer(self, size_bytes: int, at_ns: float) -> TransferRecord:
        """Move *size_bytes* starting no earlier than *at_ns*.

        Transfers serialize on the link: a new transfer waits for the
        previous one to drain.
        """
        if size_bytes <= 0:
            raise ValueError("transfer size must be positive")
        overhead = self.per_transfer_overhead(size_bytes)
        start = max(at_ns, self._busy_until_ns)
        finish = start + overhead + self.raw_transfer_time(size_bytes)
        self._busy_until_ns = finish
        self.bytes_transferred += size_bytes
        self.transfers += 1
        return TransferRecord(start_ns=start, finish_ns=finish,
                              size_bytes=size_bytes, overhead_ns=overhead)

    def next_free(self, at_ns: float) -> float:
        return max(at_ns, self._busy_until_ns)

    @property
    def busy_until_ns(self) -> float:
        """Current reservation horizon (when the link next goes idle)."""
        return self._busy_until_ns

    def commit_transfers(self, count: int, bytes_moved: int,
                         busy_until_ns: float) -> None:
        """Fold the accounting of *count* externally-computed transfers.

        The chained mode of :meth:`repro.flash.ssd.SSD.submit_batch` inlines
        the exact :meth:`transfer` recurrence (``start = max(at, busy);
        finish = (start + overhead) + raw``) into its submission loop and
        commits the side effects here in one call.  ``busy_until_ns`` must
        be the horizon after the last inlined transfer.
        """
        if count < 0 or bytes_moved < 0:
            raise ValueError("transfer accounting cannot decrease")
        if busy_until_ns < self._busy_until_ns:
            raise ValueError("link reservation horizon cannot move backwards")
        self.bytes_transferred += bytes_moved
        self.transfers += count
        self._busy_until_ns = busy_until_ns

    def statistics(self) -> Dict[str, float]:
        return {
            "bytes_transferred": float(self.bytes_transferred),
            "transfers": float(self.transfers),
            "busy_until_ns": self._busy_until_ns,
        }

    def reset(self) -> None:
        self.bytes_transferred = 0
        self.transfers = 0
        self._busy_until_ns = 0.0
