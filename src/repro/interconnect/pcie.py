"""PCIe link model.

The loosely-coupled HAMS (and every conventional NVMe SSD) reaches the
ULL-Flash through a PCIe 3.0 x4 link: ~4 GB/s of raw bandwidth, far below
the ~20 GB/s of a DDR4 channel, plus per-packet encapsulation of the raw
NVDIMM data into transaction-layer packets (Section IV-C).  Both effects —
the bandwidth cap and the packetisation overhead — are what make the DMA
portion contribute up to ~39-47 % of the average memory access time in the
baseline design (Figure 10a).
"""

from __future__ import annotations

import math

from ..config import PCIeConfig
from .link import Link


class PCIeLink(Link):
    """PCIe 3.0 point-to-point link between the root complex and an SSD."""

    def __init__(self, config: PCIeConfig) -> None:
        super().__init__()
        self.config = config

    def raw_transfer_time(self, size_bytes: int) -> float:
        return size_bytes / self.config.bandwidth_bytes_per_ns

    def per_transfer_overhead(self, size_bytes: int) -> float:
        """Packetisation cost: one TLP per ``max_payload_bytes`` chunk.

        The first packet pays the full framing latency; subsequent packets of
        the same transfer pipeline behind it and only add a small header
        serialisation cost.
        """
        packets = max(1, math.ceil(size_bytes / self.config.max_payload_bytes))
        header_time = (packets - 1) * (
            24 / self.config.bandwidth_bytes_per_ns)  # 24 B TLP header/CRC
        return self.config.packet_overhead_ns + header_time

    @property
    def bandwidth_bytes_per_ns(self) -> float:
        return self.config.bandwidth_bytes_per_ns
