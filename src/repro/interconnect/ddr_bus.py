"""DDR4 bus shared by NVDIMM(s) and, in advanced HAMS, the unboxed ULL-Flash.

The aggressive integration of Section IV-C puts the ULL-Flash NVMe controller
directly on a DDR4 channel next to the NVDIMM.  Two consequences are
modelled here:

* **Bandwidth** — page movements between flash and NVDIMM now ride the
  ~20 GB/s DDR4 channel instead of the ~4 GB/s PCIe link, and the data no
  longer needs PCIe packet encapsulation.
* **Arbitration** — because both the HAMS cache logic (serving MMU requests)
  and the NVMe controller (doing DMA) can touch the NVDIMM, a *lock
  register* hands the bus to the NVMe controller for the duration of a DMA
  and back (Section V-A, Figure 12).
"""

from __future__ import annotations

from typing import Dict

from ..config import DDRConfig
from .link import Link, TransferRecord


class LockRegister:
    """The single-bit lock that arbitrates NVDIMM access on the shared bus.

    ``acquire`` models HAMS setting the register to 1 (NVMe controller
    becomes bus master); ``release`` models the controller resetting it to 0
    when its DMA finishes.  Acquisition attempts while the lock is held are
    recorded so experiments can observe contention.
    """

    def __init__(self, toggle_ns: float) -> None:
        self.toggle_ns = toggle_ns
        self.held = False
        self.held_since_ns = 0.0
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self.total_held_ns = 0.0
        self._release_at_ns = 0.0

    def acquire(self, at_ns: float) -> float:
        """Acquire the lock at or after *at_ns*; returns the grant time.

        The lock is considered busy until the previous holder's release has
        landed, regardless of when (in wall-clock order) that release was
        recorded — acquisitions arriving before that point are contended and
        wait for it.
        """
        grant = at_ns
        if self.held or self._release_at_ns > at_ns:
            self.contended_acquisitions += 1
            grant = max(at_ns, self._release_at_ns)
        self.held = True
        self.held_since_ns = grant
        self.acquisitions += 1
        return grant + self.toggle_ns

    def release(self, at_ns: float) -> float:
        """Release the lock at *at_ns*; returns the time the release lands."""
        if not self.held:
            return at_ns
        self.held = False
        self._release_at_ns = at_ns + self.toggle_ns
        self.total_held_ns += max(0.0, at_ns - self.held_since_ns)
        return self._release_at_ns

    def statistics(self) -> Dict[str, float]:
        return {
            "acquisitions": float(self.acquisitions),
            "contended_acquisitions": float(self.contended_acquisitions),
            "total_held_ns": self.total_held_ns,
        }


class DDR4Bus(Link):
    """One DDR4 channel used as the HAMS <-> ULL-Flash datapath."""

    def __init__(self, config: DDRConfig) -> None:
        super().__init__()
        self.config = config
        self.lock = LockRegister(config.lock_register_ns)
        self.register_commands_sent = 0

    def raw_transfer_time(self, size_bytes: int) -> float:
        return size_bytes / self.config.channel_bw_bytes_per_ns

    def per_transfer_overhead(self, size_bytes: int) -> float:
        """Row activation plus CAS latency for the first burst of a transfer."""
        return self.config.tRCD_ns + self.config.tCL_ns

    def send_register_command(self, at_ns: float) -> TransferRecord:
        """Write one 64 B NVMe command into the ULL-Flash data-buffer registers.

        Models the Figure 12 sequence: CS# deselect, a WRITE command on the
        channel, then an 8-beat burst of the 64 B command over D[63:0].
        """
        self.register_commands_sent += 1
        start = self.next_free(at_ns)
        finish = (start + self.config.register_command_ns
                  + self.raw_transfer_time(64))
        self._busy_until_ns = finish
        self.bytes_transferred += 64
        self.transfers += 1
        return TransferRecord(start_ns=start, finish_ns=finish, size_bytes=64,
                              overhead_ns=self.config.register_command_ns)

    def dma_transfer(self, size_bytes: int, at_ns: float) -> TransferRecord:
        """A flash<->NVDIMM DMA holding the lock register for its duration."""
        granted = self.lock.acquire(at_ns)
        record = self.transfer(size_bytes, granted)
        self.lock.release(record.finish_ns)
        return record
