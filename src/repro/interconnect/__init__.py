"""Interconnect models: PCIe, SATA, and the DDR4 bus with lock-register arbitration."""

from .link import Link, TransferRecord
from .pcie import PCIeLink
from .sata import SATALink
from .ddr_bus import DDR4Bus, LockRegister

__all__ = [
    "Link",
    "TransferRecord",
    "PCIeLink",
    "SATALink",
    "DDR4Bus",
    "LockRegister",
]
