"""Unit helpers shared across the simulation library.

All simulated *time* is expressed in **nanoseconds** (floats), all *sizes*
in **bytes** (ints), all *energy* in **nanojoules** and all *power* in
**watts**.  Keeping a single canonical unit per dimension avoids the classic
simulator bug of silently mixing microseconds and nanoseconds; the helpers
below exist so call-sites can still be written in the unit the datasheet or
the paper uses (``us(3)`` for the 3 microsecond Z-NAND read, ``GB(800)`` for
the 800 GB ULL-Flash capacity) while the stored value stays canonical.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Time (canonical unit: nanoseconds)
# --------------------------------------------------------------------------

NS_PER_US = 1_000.0
NS_PER_MS = 1_000_000.0
NS_PER_S = 1_000_000_000.0


def ns(value: float) -> float:
    """Return *value* nanoseconds (identity, for symmetry/readability)."""
    return float(value)


def us(value: float) -> float:
    """Convert microseconds to nanoseconds."""
    return float(value) * NS_PER_US


def ms(value: float) -> float:
    """Convert milliseconds to nanoseconds."""
    return float(value) * NS_PER_MS


def seconds(value: float) -> float:
    """Convert seconds to nanoseconds."""
    return float(value) * NS_PER_S


def to_us(value_ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return value_ns / NS_PER_US


def to_ms(value_ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return value_ns / NS_PER_MS


def to_seconds(value_ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return value_ns / NS_PER_S


# --------------------------------------------------------------------------
# Size (canonical unit: bytes)
# --------------------------------------------------------------------------

BYTES_PER_KB = 1024
BYTES_PER_MB = 1024 ** 2
BYTES_PER_GB = 1024 ** 3
BYTES_PER_TB = 1024 ** 4


def KB(value: float) -> int:
    """Convert kibibytes to bytes."""
    return int(value * BYTES_PER_KB)


def MB(value: float) -> int:
    """Convert mebibytes to bytes."""
    return int(value * BYTES_PER_MB)


def GB(value: float) -> int:
    """Convert gibibytes to bytes."""
    return int(value * BYTES_PER_GB)


def TB(value: float) -> int:
    """Convert tebibytes to bytes."""
    return int(value * BYTES_PER_TB)


def to_GB(value_bytes: int) -> float:
    """Convert bytes to gibibytes."""
    return value_bytes / BYTES_PER_GB


def to_MB(value_bytes: int) -> float:
    """Convert bytes to mebibytes."""
    return value_bytes / BYTES_PER_MB


# --------------------------------------------------------------------------
# Bandwidth helpers
# --------------------------------------------------------------------------


def gb_per_s(value: float) -> float:
    """Convert GB/s into bytes per nanosecond."""
    return value * BYTES_PER_GB / NS_PER_S


def mb_per_s(value: float) -> float:
    """Convert MB/s into bytes per nanosecond."""
    return value * BYTES_PER_MB / NS_PER_S


def transfer_time_ns(size_bytes: int, bandwidth_bytes_per_ns: float) -> float:
    """Time to move *size_bytes* over a link of the given bandwidth.

    A zero or negative bandwidth is treated as "infinitely fast" which is
    convenient for disabling a link stage in experiments.
    """
    if bandwidth_bytes_per_ns <= 0:
        return 0.0
    return size_bytes / bandwidth_bytes_per_ns


def bandwidth_gbps(size_bytes: int, elapsed_ns: float) -> float:
    """Achieved bandwidth in GB/s for *size_bytes* moved in *elapsed_ns*."""
    if elapsed_ns <= 0:
        return 0.0
    return (size_bytes / BYTES_PER_GB) / (elapsed_ns / NS_PER_S)


# --------------------------------------------------------------------------
# Energy (canonical unit: nanojoules)
# --------------------------------------------------------------------------


def energy_nj(power_watts: float, duration_ns: float) -> float:
    """Energy in nanojoules for *power_watts* sustained over *duration_ns*.

    1 W * 1 ns = 1 nJ, so this is a plain multiplication; the function exists
    to make energy-accounting call sites self-describing.
    """
    return power_watts * duration_ns


def to_millijoules(value_nj: float) -> float:
    """Convert nanojoules to millijoules."""
    return value_nj / 1e6


def to_joules(value_nj: float) -> float:
    """Convert nanojoules to joules."""
    return value_nj / 1e9
