"""Flash channel (bus) scheduler.

Each channel is a shared bus between the SSD controller and the flash
packages hanging off it.  Data transfers (DMA of page data to or from a die)
serialize on the channel even when the array operations themselves overlap
on different dies.  ULL-Flash additionally *splits* a 4 KB host request into
two half-page transfers on two channels, halving the DMA portion of the
latency (Section II-C) — that policy lives in the FIL; this module only
answers "when can channel C move N bytes starting at time T?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..config import FlashGeometry
from ..units import transfer_time_ns


@dataclass
class _ChannelState:
    busy_until_ns: float = 0.0
    bytes_moved: int = 0
    transfers: int = 0


class ChannelScheduler:
    """Tracks occupancy of every flash channel of one SSD."""

    def __init__(self, geometry: FlashGeometry,
                 bandwidth_bytes_per_ns: float) -> None:
        if geometry.channels <= 0:
            raise ValueError("SSD needs at least one channel")
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("channel bandwidth must be positive")
        self.geometry = geometry
        self.bandwidth = bandwidth_bytes_per_ns
        self._channels: Dict[int, _ChannelState] = {
            index: _ChannelState() for index in range(geometry.channels)
        }

    def transfer_time(self, size_bytes: int) -> float:
        """Raw bus time to move *size_bytes*, ignoring occupancy."""
        return transfer_time_ns(size_bytes, self.bandwidth)

    def reserve(self, channel: int, size_bytes: int,
                at_ns: float) -> Tuple[float, float]:
        """Reserve the channel for a transfer of *size_bytes* at *at_ns*.

        Returns ``(start_ns, finish_ns)``: the transfer starts when the
        channel frees up and occupies it for the raw bus time.
        """
        state = self._channel(channel)
        start = max(at_ns, state.busy_until_ns)
        finish = start + self.transfer_time(size_bytes)
        state.busy_until_ns = finish
        state.bytes_moved += size_bytes
        state.transfers += 1
        return start, finish

    def next_free(self, channel: int, at_ns: float) -> float:
        """Earliest time the channel could start a new transfer."""
        return max(at_ns, self._channel(channel).busy_until_ns)

    def least_loaded(self, at_ns: float, count: int = 1) -> List[int]:
        """Return the *count* channels that free up earliest at *at_ns*.

        Used by the ULL-Flash split policy to pick the pair of channels for
        the two half-page transfers.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        ranked = sorted(self._channels.items(),
                        key=lambda item: (max(at_ns, item[1].busy_until_ns),
                                          item[0]))
        return [index for index, _ in ranked[:count]]

    def utilisation_summary(self) -> Dict[str, float]:
        bytes_total = sum(state.bytes_moved for state in self._channels.values())
        transfers = sum(state.transfers for state in self._channels.values())
        busiest = max((state.busy_until_ns for state in self._channels.values()),
                      default=0.0)
        return {
            "bytes_moved": float(bytes_total),
            "transfers": float(transfers),
            "busiest_channel_until_ns": busiest,
        }

    def reset(self) -> None:
        for state in self._channels.values():
            state.busy_until_ns = 0.0
            state.bytes_moved = 0
            state.transfers = 0

    def _channel(self, channel: int) -> _ChannelState:
        try:
            return self._channels[channel]
        except KeyError:
            raise ValueError(f"channel index out of range: {channel}") from None
