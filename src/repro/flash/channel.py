"""Flash channel (bus) scheduler.

Each channel is a shared bus between the SSD controller and the flash
packages hanging off it.  Data transfers (DMA of page data to or from a die)
serialize on the channel even when the array operations themselves overlap
on different dies.  ULL-Flash additionally *splits* a 4 KB host request into
two half-page transfers on two channels, halving the DMA portion of the
latency (Section II-C) — that policy lives in the FIL; this module only
answers "when can channel C move N bytes starting at time T?".

Channel occupancy is kept as flat parallel arrays (``busy_until_ns``,
``bytes_moved``, ``transfers`` indexed by channel) rather than per-channel
objects, so the batched submission walk of :meth:`repro.flash.ssd.SSD.
submit_batch` can reserve long schedules against the shared state without a
per-command attribute chase.  A reservation is the exact recurrence
``start = max(at, busy); busy = start + t`` — :meth:`reserve_schedule`
computes it for a whole vector of transfers, using a closed-form prefix-max
fast path when every channel appears at most once (the per-element results
are then independent, so vectorizing is bitwise exact) and the sequential
walk otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from ..config import FlashGeometry
from ..units import transfer_time_ns


class ChannelScheduler:
    """Tracks occupancy of every flash channel of one SSD.

    State is a structure of arrays: ``busy_until_ns[c]`` is the reservation
    horizon of channel *c*; ``bytes_moved``/``transfers`` are its traffic
    counters.  The arrays are the authoritative state (there is no
    per-channel object), which is what lets the batched flash walk share
    them as plain Python lists.
    """

    def __init__(self, geometry: FlashGeometry,
                 bandwidth_bytes_per_ns: float) -> None:
        if geometry.channels <= 0:
            raise ValueError("SSD needs at least one channel")
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("channel bandwidth must be positive")
        self.geometry = geometry
        self.bandwidth = bandwidth_bytes_per_ns
        self.channel_count = geometry.channels
        self.busy_until_ns: List[float] = [0.0] * self.channel_count
        self.bytes_moved: List[int] = [0] * self.channel_count
        self.transfers: List[int] = [0] * self.channel_count

    def transfer_time(self, size_bytes: int) -> float:
        """Raw bus time to move *size_bytes*, ignoring occupancy."""
        return transfer_time_ns(size_bytes, self.bandwidth)

    def reserve(self, channel: int, size_bytes: int,
                at_ns: float) -> Tuple[float, float]:
        """Reserve the channel for a transfer of *size_bytes* at *at_ns*.

        Returns ``(start_ns, finish_ns)``: the transfer starts when the
        channel frees up and occupies it for the raw bus time.
        """
        self._check(channel)
        busy = self.busy_until_ns
        start = max(at_ns, busy[channel])
        finish = start + self.transfer_time(size_bytes)
        busy[channel] = finish
        self.bytes_moved[channel] += size_bytes
        self.transfers[channel] += 1
        return start, finish

    def reserve_schedule(
            self, channels: Sequence[int],
            sizes: Union[int, Sequence[int]],
            at_ns: Union[float, Sequence[float]],
    ) -> Tuple[List[float], List[float]]:
        """Reserve a vector of transfers in order; returns start/finish lists.

        Equivalent to calling :meth:`reserve` once per element, in order.
        When no channel repeats within the schedule the reservations are
        independent, so ``start = max(at, busy)`` resolves element-wise —
        the prefix-max collapses — and the loop body carries no recurrence;
        with repeats the exact sequential walk runs.  Either way the result
        is bit-identical to the scalar call sequence.
        """
        count = len(channels)
        size_list = [sizes] * count if isinstance(sizes, int) else sizes
        at_list = ([at_ns] * count if isinstance(at_ns, (int, float))
                   else at_ns)
        busy = self.busy_until_ns
        bytes_moved = self.bytes_moved
        transfers = self.transfers
        limit = self.channel_count
        times: Dict[int, float] = {}
        starts: List[float] = []
        finishes: List[float] = []
        for index in range(count):
            channel = channels[index]
            if channel < 0 or channel >= limit:
                raise ValueError(f"channel index out of range: {channel}")
            size = size_list[index]
            time = times.get(size)
            if time is None:
                time = times[size] = transfer_time_ns(size, self.bandwidth)
            at = at_list[index]
            horizon = busy[channel]
            start = at if at >= horizon else horizon
            finish = start + time
            busy[channel] = finish
            bytes_moved[channel] += size
            transfers[channel] += 1
            starts.append(start)
            finishes.append(finish)
        return starts, finishes

    def next_free(self, channel: int, at_ns: float) -> float:
        """Earliest time the channel could start a new transfer."""
        self._check(channel)
        return max(at_ns, self.busy_until_ns[channel])

    def least_loaded(self, at_ns: float, count: int = 1) -> List[int]:
        """Return the *count* channels that free up earliest at *at_ns*.

        Used by the ULL-Flash split policy to pick the pair of channels for
        the two half-page transfers.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        ranked = sorted(range(self.channel_count),
                        key=lambda index: (max(at_ns,
                                               self.busy_until_ns[index]),
                                           index))
        return ranked[:count]

    def utilisation_summary(self) -> Dict[str, float]:
        return {
            "bytes_moved": float(sum(self.bytes_moved)),
            "transfers": float(sum(self.transfers)),
            "busiest_channel_until_ns": max(self.busy_until_ns, default=0.0),
        }

    def statistics(self) -> Dict[str, float]:
        """Counters for the unified ``flash_*`` statistics fold."""
        return {
            "channel_bytes_moved": float(sum(self.bytes_moved)),
            "channel_transfers": float(sum(self.transfers)),
        }

    def reset(self) -> None:
        self.busy_until_ns = [0.0] * self.channel_count
        self.bytes_moved = [0] * self.channel_count
        self.transfers = [0] * self.channel_count

    def _check(self, channel: int) -> None:
        if channel < 0 or channel >= self.channel_count:
            raise ValueError(f"channel index out of range: {channel}")
