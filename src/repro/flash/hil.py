"""Host interface layer: NVMe command parsing and request splitting.

The HIL sits at the top of the SSD firmware stack (Figure 4c).  It parses an
incoming host request of arbitrary length and splits it into sub-requests
whose size matches the unit the FTL manages (one flash page, 4 KB).  The
parsed sub-requests are then handed to the FTL/FIL for translation and
scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class SubRequest:
    """One page-sized piece of a host I/O request."""

    lpn: int
    is_write: bool
    offset_in_request: int
    size_bytes: int


class HostInterfaceLayer:
    """Splits host byte-ranged requests into page-aligned sub-requests."""

    def __init__(self, page_size: int, firmware_latency_ns: float) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        if firmware_latency_ns < 0:
            raise ValueError("firmware latency cannot be negative")
        self.page_size = page_size
        self.firmware_latency_ns = firmware_latency_ns
        self.requests_parsed = 0
        self.subrequests_created = 0

    def split(self, byte_offset: int, size_bytes: int,
              is_write: bool) -> List[SubRequest]:
        """Split ``[byte_offset, byte_offset + size_bytes)`` into page pieces.

        Partial first/last pages are preserved with their actual byte counts
        so read-modify-write behaviour can be modelled by callers if needed.
        """
        if byte_offset < 0:
            raise ValueError(f"negative byte offset: {byte_offset}")
        if size_bytes <= 0:
            raise ValueError(f"request size must be positive: {size_bytes}")
        self.requests_parsed += 1
        pieces: List[SubRequest] = []
        cursor = byte_offset
        remaining = size_bytes
        position = 0
        while remaining > 0:
            lpn = cursor // self.page_size
            offset_in_page = cursor % self.page_size
            chunk = min(remaining, self.page_size - offset_in_page)
            pieces.append(SubRequest(lpn=lpn, is_write=is_write,
                                     offset_in_request=position,
                                     size_bytes=chunk))
            cursor += chunk
            remaining -= chunk
            position += chunk
        self.subrequests_created += len(pieces)
        return pieces

    def parse_latency(self, subrequest_count: int) -> float:
        """Firmware time to parse a command and fan out its sub-requests.

        Parsing is dominated by the fixed command-decode cost; fan-out adds a
        small per-sub-request increment.
        """
        if subrequest_count <= 0:
            raise ValueError("subrequest_count must be positive")
        return self.firmware_latency_ns * (1.0 + 0.05 * (subrequest_count - 1))
