"""Flash translation layer: page-level mapping, allocation, garbage collection.

The FTL maps logical page numbers (LPNs) to physical flash addresses and
implements the two mechanisms that shape SSD write behaviour:

* **Write allocation / striping** — new physical pages are allocated
  round-robin across channels and dies so that sequential writes exploit the
  full internal parallelism (Section II-C, "FTL/FIL can stripe the requests
  across multiple internal resources").
* **Garbage collection** — blocks are append-only; overwrites invalidate the
  old physical page.  When the pool of free blocks in a plane falls below a
  threshold, a greedy collector picks the block with the fewest valid pages,
  relocates those pages and erases the block.  The relocation work is
  returned to the caller so the device model can charge its time.

The mapping table is lazy (a dictionary) so an 800 GB device can be modelled
without allocating 200 M entries up front; only pages actually touched by a
workload consume memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..config import FlashGeometry


@dataclass(frozen=True)
class PhysicalAddress:
    """A physical flash page address."""

    channel: int
    package: int
    die: int
    plane: int
    block: int
    page: int

    def block_id(self) -> Tuple[int, int, int, int, int]:
        return (self.channel, self.package, self.die, self.plane, self.block)


@dataclass
class GCResult:
    """Work performed by one garbage-collection invocation."""

    page_moves: List[Tuple[PhysicalAddress, PhysicalAddress]] = field(
        default_factory=list)
    blocks_erased: int = 0

    @property
    def pages_moved(self) -> int:
        return len(self.page_moves)


class _Plane:
    """Allocation state of one flash plane (a set of blocks)."""

    __slots__ = ("channel", "package", "die", "plane", "blocks_per_plane",
                 "pages_per_block", "free_blocks", "open_block", "next_page",
                 "valid_pages", "erase_count", "gc_pressed")

    def __init__(self, channel: int, package: int, die: int, plane: int,
                 blocks_per_plane: int, pages_per_block: int) -> None:
        self.channel = channel
        self.package = package
        self.die = die
        self.plane = plane
        self.blocks_per_plane = blocks_per_plane
        self.pages_per_block = pages_per_block
        self.free_blocks: List[int] = list(range(blocks_per_plane))
        self.open_block: Optional[int] = None
        self.next_page = 0
        # block index -> set of page indices currently holding valid data
        self.valid_pages: Dict[int, Set[int]] = {}
        self.erase_count = 0
        #: Maintained by the FTL: ``len(free_blocks) < gc_threshold_blocks``.
        self.gc_pressed = False

    def has_space(self) -> bool:
        return bool(self.free_blocks) or (
            self.open_block is not None and self.next_page < self.pages_per_block)

    def allocate_page(self) -> Optional[PhysicalAddress]:
        """Return the next append point in this plane, or ``None`` if full."""
        if self.open_block is None or self.next_page >= self.pages_per_block:
            if not self.free_blocks:
                return None
            self.open_block = self.free_blocks.pop(0)
            self.next_page = 0
            self.valid_pages.setdefault(self.open_block, set())
        address = PhysicalAddress(self.channel, self.package, self.die,
                                  self.plane, self.open_block, self.next_page)
        self.valid_pages[self.open_block].add(self.next_page)
        self.next_page += 1
        return address

    def invalidate(self, address: PhysicalAddress) -> None:
        pages = self.valid_pages.get(address.block)
        if pages is not None:
            pages.discard(address.page)

    def victim_block(self) -> Optional[int]:
        """Block with the fewest valid pages, excluding the open block."""
        candidates = [
            (len(pages), block)
            for block, pages in self.valid_pages.items()
            if block != self.open_block
        ]
        if not candidates:
            return None
        candidates.sort()
        return candidates[0][1]

    def erase_block(self, block: int) -> None:
        self.valid_pages.pop(block, None)
        self.free_blocks.append(block)
        self.erase_count += 1


class FlashTranslationLayer:
    """Page-mapping FTL with greedy garbage collection."""

    def __init__(self, geometry: FlashGeometry,
                 gc_threshold_blocks: int = 2) -> None:
        self.geometry = geometry
        self.gc_threshold_blocks = gc_threshold_blocks
        # The geometry is a frozen dataclass whose derived quantities are
        # recomputed property chains; the LPN bound is checked on every
        # translation, so hoist it once.
        self._logical_pages = geometry.logical_pages
        #: Every LPN in ``[0, mapped_floor)`` is known to be mapped.  Writes
        #: never unmap, so the floor only drops when :meth:`trim` punches a
        #: hole below it; :meth:`SSD.precondition` uses it to skip re-scans.
        self.mapped_floor = 0
        self._mapping: Dict[int, PhysicalAddress] = {}
        self._reverse: Dict[PhysicalAddress, int] = {}
        self._planes: List[_Plane] = []
        for channel in range(geometry.channels):
            for package in range(geometry.packages_per_channel):
                for die in range(geometry.dies_per_package):
                    for plane in range(geometry.planes_per_die):
                        self._planes.append(
                            _Plane(channel, package, die, plane,
                                   geometry.blocks_per_plane,
                                   geometry.pages_per_block))
        self._allocation_cursor = 0
        self.gc_invocations = 0
        self.gc_pages_moved = 0
        self.host_writes = 0
        #: Number of planes currently under GC pressure (fewer free blocks
        #: than the threshold).  When it is zero the per-write GC scan is
        #: provably a no-op — every plane's ``while`` loop would fall
        #: through — so :meth:`_maybe_collect` returns immediately with the
        #: same empty :class:`GCResult` the scan would have produced.
        self._gc_pressure_planes = 0
        for plane in self._planes:
            self._note_free_blocks(plane)

    # -- lookup ---------------------------------------------------------------

    def lookup(self, lpn: int) -> Optional[PhysicalAddress]:
        """Translate a logical page number; ``None`` if never written."""
        self._check_lpn(lpn)
        return self._mapping.get(lpn)

    def lookup_batch(self, lpns) -> List[Optional[PhysicalAddress]]:
        """Translate a vector of LPNs (any int sequence, e.g. int64 arrays).

        Pure: no state changes, so the batch is trivially order-exact.
        Range validation happens once over the whole vector.
        """
        lpn_list = [int(lpn) for lpn in lpns]
        if lpn_list:
            low, high = min(lpn_list), max(lpn_list)
            if low < 0 or high >= self._logical_pages:
                bad = low if low < 0 else high
                raise ValueError(
                    f"LPN {bad} out of range [0, {self._logical_pages})")
        get = self._mapping.get
        return [get(lpn) for lpn in lpn_list]

    def is_mapped(self, lpn: int) -> bool:
        return lpn in self._mapping

    @property
    def mapped_pages(self) -> int:
        return len(self._mapping)

    # -- writes ----------------------------------------------------------------

    def write(self, lpn: int) -> Tuple[PhysicalAddress, GCResult]:
        """Map *lpn* to a fresh physical page.

        Any previous mapping is invalidated.  Returns the new physical
        address together with the garbage-collection work (possibly empty)
        triggered by this allocation.
        """
        self._check_lpn(lpn)
        self.host_writes += 1
        gc_result = self._maybe_collect()
        old = self._mapping.get(lpn)
        if old is not None:
            self._plane_for(old).invalidate(old)
            self._reverse.pop(old, None)
        address = self._allocate()
        self._mapping[lpn] = address
        self._reverse[address] = lpn
        return address, gc_result

    def write_batch(self, lpns) -> List[Tuple[PhysicalAddress, GCResult]]:
        """Map a vector of LPNs in order (int sequence or int64 array).

        Exactly equivalent to calling :meth:`write` per element: allocation
        striping advances in order, and garbage collection triggers at the
        same scalar points — each element's GC scan sees the mapping state
        left by every earlier element.  ``tests/test_flash_ftl_batch.py``
        pins the equivalence property-style.
        """
        write = self.write
        return [write(int(lpn)) for lpn in lpns]

    def trim(self, lpn: int) -> None:
        """Drop the mapping for *lpn* (discard / TRIM)."""
        self._check_lpn(lpn)
        if lpn < self.mapped_floor:
            self.mapped_floor = lpn
        old = self._mapping.pop(lpn, None)
        if old is not None:
            self._plane_for(old).invalidate(old)
            self._reverse.pop(old, None)

    # -- garbage collection -----------------------------------------------------

    def _maybe_collect(self) -> GCResult:
        result = GCResult()
        if not self._gc_pressure_planes:
            # No plane is below the free-block threshold, so the full scan
            # would do no work; skip it (the dominant cost of buffered
            # writes on a preconditioned device).
            return result
        for plane in self._planes:
            while len(plane.free_blocks) < self.gc_threshold_blocks:
                victim = plane.victim_block()
                if victim is None:
                    break
                moved = self._collect_block(plane, victim, result)
                if not moved and not plane.free_blocks:
                    # Nothing reclaimable: the plane is genuinely full of
                    # valid data; stop rather than loop forever.
                    break
        if result.pages_moved or result.blocks_erased:
            self.gc_invocations += 1
            self.gc_pages_moved += result.pages_moved
        return result

    def _collect_block(self, plane: _Plane, block: int,
                       result: GCResult) -> bool:
        valid = sorted(plane.valid_pages.get(block, set()))
        moved_any = False
        for page in valid:
            old = PhysicalAddress(plane.channel, plane.package, plane.die,
                                  plane.plane, block, page)
            lpn = self._reverse.get(old)
            if lpn is None:
                plane.invalidate(old)
                continue
            new = self._allocate(exclude_plane=plane)
            plane.invalidate(old)
            self._reverse.pop(old, None)
            self._mapping[lpn] = new
            self._reverse[new] = lpn
            result.page_moves.append((old, new))
            moved_any = True
        plane.erase_block(block)
        self._note_free_blocks(plane)
        result.blocks_erased += 1
        return moved_any or not valid

    # -- allocation ---------------------------------------------------------------

    def _allocate(self, exclude_plane: Optional[_Plane] = None) -> PhysicalAddress:
        """Round-robin allocation across planes (channel/die striping)."""
        total = len(self._planes)
        for offset in range(total):
            plane = self._planes[(self._allocation_cursor + offset) % total]
            if exclude_plane is not None and plane is exclude_plane:
                continue
            address = plane.allocate_page()
            if address is not None:
                self._note_free_blocks(plane)
                self._allocation_cursor = (
                    self._allocation_cursor + offset + 1) % total
                return address
        # Fall back to the excluded plane before declaring the device full.
        if exclude_plane is not None:
            address = exclude_plane.allocate_page()
            if address is not None:
                self._note_free_blocks(exclude_plane)
                return address
        raise RuntimeError("flash device is full: no free pages in any plane")

    def _note_free_blocks(self, plane: _Plane) -> None:
        """Re-derive *plane*'s GC-pressure flag after a free-list change."""
        pressed = len(plane.free_blocks) < self.gc_threshold_blocks
        if pressed != plane.gc_pressed:
            plane.gc_pressed = pressed
            self._gc_pressure_planes += 1 if pressed else -1

    # -- helpers ---------------------------------------------------------------

    def _plane_for(self, address: PhysicalAddress) -> _Plane:
        index = (((address.channel * self.geometry.packages_per_channel
                   + address.package) * self.geometry.dies_per_package
                  + address.die) * self.geometry.planes_per_die + address.plane)
        return self._planes[index]

    def _check_lpn(self, lpn: int) -> None:
        if lpn < 0 or lpn >= self._logical_pages:
            raise ValueError(
                f"LPN {lpn} out of range [0, {self._logical_pages})")

    def erase_counts(self) -> List[int]:
        """Per-plane erase counts (wear indicator)."""
        return [plane.erase_count for plane in self._planes]

    def statistics(self) -> Dict[str, float]:
        return {
            "mapped_pages": float(self.mapped_pages),
            "host_writes": float(self.host_writes),
            "gc_invocations": float(self.gc_invocations),
            "gc_pages_moved": float(self.gc_pages_moved),
            "write_amplification": (
                (self.host_writes + self.gc_pages_moved) / self.host_writes
                if self.host_writes else 1.0),
        }
