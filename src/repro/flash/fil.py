"""Flash interface layer: schedules raw flash operations onto channels/dies.

The FIL is the firmware layer that turns a translated sub-request into flash
transactions (row/column addresses, DMA transfers) and places them on the
internal resources (Figure 4c).  It owns the two structural latency effects
the paper leans on:

* **Die/channel parallelism** — array operations overlap across dies while
  data transfers serialize per channel.
* **ULL-Flash channel splitting** — a 4 KB request is split into two
  half-page operations issued to two channels simultaneously, which roughly
  halves the DMA component of the access latency (Section II-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .channel import ChannelScheduler
from .ftl import PhysicalAddress
from .znand import FlashOperation, ZNANDArray


@dataclass(frozen=True)
class FlashAccessResult:
    """Timing of one page-level flash access."""

    start_ns: float
    finish_ns: float
    array_time_ns: float
    transfer_time_ns: float

    @property
    def latency_ns(self) -> float:
        return self.finish_ns - self.start_ns


class FlashInterfaceLayer:
    """Places page reads/programs and block erases onto the flash complex."""

    def __init__(self, array: ZNANDArray, channels: ChannelScheduler,
                 page_size: int, split_channels: bool = True) -> None:
        self.array = array
        self.channels = channels
        self.page_size = page_size
        self.split_channels = split_channels and channels.geometry.channels >= 2
        self.page_reads = 0
        self.page_programs = 0
        self.block_erases = 0

    # -- page reads -------------------------------------------------------------

    def read_page(self, address: PhysicalAddress, at_ns: float) -> FlashAccessResult:
        """Read one flash page: array sensing, then DMA over the channel(s)."""
        self.page_reads += 1
        start, array_finish = self.array.issue(
            address.channel, address.package, address.die,
            FlashOperation.READ, at_ns)
        transfer_finish, transfer_time = self._transfer_out(
            address, array_finish)
        return FlashAccessResult(start_ns=start, finish_ns=transfer_finish,
                                 array_time_ns=array_finish - start,
                                 transfer_time_ns=transfer_time)

    def read_pages(self, addresses: List[PhysicalAddress],
                   at_ns: float) -> List[float]:
        """Read a vector of pages all issued at *at_ns*; returns finish times.

        Bit-identical to calling :meth:`read_page` per address in order, but
        serviced as two reservation schedules instead of per-command walks:
        every array sensing is issued first (die occupancy is independent of
        channel state, so hoisting the issues out of the interleaved scalar
        order is exact), then the channel DMA schedule runs in page order at
        each page's array-finish time.  This is the migration-chunk path —
        a 16-page chunk read becomes two schedule calls.
        """
        count = len(addresses)
        if not count:
            return []
        self.page_reads += count
        array = self.array
        flat_index = array.flat_index
        indices = [flat_index(address.channel, address.package, address.die)
                   for address in addresses]
        _, array_finishes = array.issue_schedule(indices, FlashOperation.READ,
                                                 at_ns)
        channels = self.channels
        if not self.split_channels:
            _, finishes = channels.reserve_schedule(
                [address.channel for address in addresses], self.page_size,
                array_finishes)
            return finishes
        half = self.page_size // 2
        rest = self.page_size - half
        channel_count = channels.channel_count
        sched_channels: List[int] = []
        sched_sizes: List[int] = []
        sched_at: List[float] = []
        for index in range(count):
            channel = addresses[index].channel
            partner = (channel + 1) % channel_count
            finish = array_finishes[index]
            sched_channels.append(channel)
            sched_sizes.append(half)
            sched_at.append(finish)
            sched_channels.append(partner)
            sched_sizes.append(rest)
            sched_at.append(finish)
        _, pair_finishes = channels.reserve_schedule(sched_channels,
                                                     sched_sizes, sched_at)
        return [pair_finishes[2 * index]
                if pair_finishes[2 * index] >= pair_finishes[2 * index + 1]
                else pair_finishes[2 * index + 1]
                for index in range(count)]

    # -- page programs -------------------------------------------------------------

    def write_page(self, address: PhysicalAddress, at_ns: float) -> FlashAccessResult:
        """Program one flash page: DMA data in, then the array program."""
        self.page_programs += 1
        transfer_finish, transfer_time = self._transfer_in(address, at_ns)
        start, array_finish = self.array.issue(
            address.channel, address.package, address.die,
            FlashOperation.PROGRAM, transfer_finish)
        return FlashAccessResult(start_ns=at_ns, finish_ns=array_finish,
                                 array_time_ns=array_finish - start,
                                 transfer_time_ns=transfer_time)

    # -- erases -------------------------------------------------------------------

    def erase_block(self, address: PhysicalAddress, at_ns: float) -> FlashAccessResult:
        """Erase the block containing *address* (no data transfer involved)."""
        self.block_erases += 1
        start, finish = self.array.issue(
            address.channel, address.package, address.die,
            FlashOperation.ERASE, at_ns)
        return FlashAccessResult(start_ns=start, finish_ns=finish,
                                 array_time_ns=finish - start,
                                 transfer_time_ns=0.0)

    # -- internals -------------------------------------------------------------------

    def _transfer_out(self, address: PhysicalAddress,
                      at_ns: float) -> Tuple[float, float]:
        """DMA page data from the die to the controller."""
        return self._transfer(address, at_ns)

    def _transfer_in(self, address: PhysicalAddress,
                     at_ns: float) -> Tuple[float, float]:
        """DMA page data from the controller to the die."""
        return self._transfer(address, at_ns)

    def _transfer(self, address: PhysicalAddress,
                  at_ns: float) -> Tuple[float, float]:
        """Move one page over the channel bus, optionally split across two.

        With splitting enabled the page is striped as two half-page bursts on
        the page's home channel and its neighbour; the transfer completes
        when the slower half finishes.  Returns ``(finish_ns, busy_time)``
        where *busy_time* is the per-request serial transfer cost (the
        latency contribution, not the sum of both halves).
        """
        if not self.split_channels:
            _, finish = self.channels.reserve(address.channel, self.page_size,
                                              at_ns)
            return finish, self.channels.transfer_time(self.page_size)
        half = self.page_size // 2
        partner = (address.channel + 1) % self.channels.geometry.channels
        _, finish_a = self.channels.reserve(address.channel, half, at_ns)
        _, finish_b = self.channels.reserve(partner, self.page_size - half,
                                            at_ns)
        finish = max(finish_a, finish_b)
        return finish, self.channels.transfer_time(half)

    def statistics(self) -> dict:
        return {
            "page_reads": self.page_reads,
            "page_programs": self.page_programs,
            "block_erases": self.block_erases,
        }
