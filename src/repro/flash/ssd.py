"""The full SSD device model: firmware stack + internal DRAM + flash complex.

An :class:`SSD` accepts byte-ranged I/O requests at arbitrary submission
times and returns completion times computed from the state of its internal
resources (DRAM buffer, channels, dies, mapping table).  It composes the
lower layers of this package:

``HostInterfaceLayer`` -> ``InternalDRAMBuffer`` -> ``FlashTranslationLayer``
-> ``FlashInterfaceLayer`` -> ``ZNANDArray`` / ``ChannelScheduler``.

Submission is batch-first: :meth:`SSD.submit_batch` services an
:class:`IORequestBatch` with one amortised walk over the flash stack —
array-based FTL translation (:meth:`~repro.flash.ftl.FlashTranslationLayer.
lookup_batch`), the DRAM-buffer hit/dirty-evict folds, and channel/die
occupancy reserved against the schedulers' flat occupancy arrays.  The
scalar :meth:`SSD.submit` is a batch-of-one wrapper around it, so there is
exactly one service path; ``tests/test_flash_batch.py`` pins the
equivalence and the platform golden-parity suite
(``tests/test_batched_replay.py``) gates every consumer.

Three factory presets mirror the devices used in the paper's evaluation:
ULL-Flash (Z-NAND), a conventional NVMe SSD and a SATA SSD.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..config import SSDConfig
from ..sim.stats import StatRegistry
from .channel import ChannelScheduler
from .dram_buffer import InternalDRAMBuffer
from .fil import FlashInterfaceLayer
from .ftl import FlashTranslationLayer, GCResult
from .hil import HostInterfaceLayer
from .znand import ZNANDArray


@dataclass(frozen=True)
class IORequest:
    """One host-visible I/O request."""

    is_write: bool
    byte_offset: int
    size_bytes: int
    submit_ns: float
    fua: bool = False

    def __post_init__(self) -> None:
        if self.byte_offset < 0:
            raise ValueError("byte_offset must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.submit_ns < 0:
            raise ValueError("submit_ns must be non-negative")


@dataclass
class IOResult:
    """Completion record for one :class:`IORequest`."""

    request: IORequest
    start_ns: float
    finish_ns: float
    buffer_hits: int = 0
    buffer_misses: int = 0
    flash_reads: int = 0
    flash_programs: int = 0
    gc_pages_moved: int = 0

    @property
    def latency_ns(self) -> float:
        return self.finish_ns - self.request.submit_ns

    @property
    def device_time_ns(self) -> float:
        return self.finish_ns - self.start_ns


def _column(values, count: Optional[int] = None) -> list:
    """Normalise a per-request column to a plain Python list.

    Accepts numpy arrays (converted once via ``tolist``), sequences, or a
    scalar to broadcast over *count* requests.
    """
    tolist = getattr(values, "tolist", None)
    if tolist is not None:
        values = tolist()
    if isinstance(values, (bool, int, float)):
        if count is None:
            raise ValueError("cannot broadcast a scalar column without a "
                             "request count")
        return [values] * count
    return list(values)


class IORequestBatch:
    """A columnar vector of I/O requests serviced in one submission call.

    Columns (``is_write`` / ``byte_offset`` / ``size_bytes`` / ``fua``)
    accept numpy arrays, sequences, or scalars to broadcast.  Two submission
    modes exist:

    * **Open-loop** (default): ``submit_ns`` gives every request's
      submission clock up front (must be non-decreasing, as for scalar
      :meth:`SSD.submit`).  This is the migration-writeback shape: the
      caller knows each request's issue time before any of them completes.
    * **Chained** (``chained=True``): the submitter is a synchronous agent
      (a load/store miss path) whose next submission clock depends on the
      previous completion.  The clock starts at ``start_ns``; before
      request *j* it advances by ``pre_gap_ns[j]`` (e.g. a compute phase),
      the request submits, and afterwards the clock advances by
      ``post_gap_ns[j] + service_latency_ns[j]`` — where the service
      latency is ``(finish - submit)`` plus, when ``link`` is given, one
      ``link_bytes`` transfer over the link issued at the finish time
      (the exact :meth:`repro.interconnect.link.Link.transfer` recurrence,
      inlined).  This runs the whole closed-loop recurrence inside one
      batch call while remaining bit-identical to the scalar loop.

    ``record_details=False`` skips the per-request counter columns of the
    result (start/finish/latency are always recorded) for hot paths that
    only consume latencies.
    """

    __slots__ = ("is_write", "byte_offset", "size_bytes", "submit_ns", "fua",
                 "chained", "start_ns", "pre_gap_ns", "post_gap_ns", "link",
                 "link_bytes", "record_details")

    def __init__(self, is_write, byte_offset, size_bytes,
                 submit_ns=None, fua=None, *, chained: bool = False,
                 start_ns: float = 0.0, pre_gap_ns=None, post_gap_ns=None,
                 link=None, link_bytes: int = 0,
                 record_details: bool = True) -> None:
        self.byte_offset = _column(byte_offset)
        count = len(self.byte_offset)
        self.size_bytes = _column(size_bytes, count)
        self.is_write = _column(is_write, count)
        self.fua = _column(False if fua is None else fua, count)
        self.chained = bool(chained)
        self.record_details = bool(record_details)
        if not (len(self.size_bytes) == len(self.is_write)
                == len(self.fua) == count):
            raise ValueError("batch columns must be equal-length")
        if count and min(self.byte_offset) < 0:
            raise ValueError("byte_offset must be non-negative")
        if count and min(self.size_bytes) <= 0:
            raise ValueError("size_bytes must be positive")
        if self.chained:
            self.submit_ns = None
            self.start_ns = float(start_ns)
            if self.start_ns < 0:
                raise ValueError("start_ns must be non-negative")
            self.pre_gap_ns = (None if pre_gap_ns is None
                               else _column(pre_gap_ns, count))
            self.post_gap_ns = (None if post_gap_ns is None
                                else _column(post_gap_ns, count))
            for gaps in (self.pre_gap_ns, self.post_gap_ns):
                if gaps is not None:
                    if len(gaps) != count:
                        raise ValueError("gap columns must be equal-length")
                    if count and min(gaps) < 0:
                        raise ValueError("gaps must be non-negative")
            self.link = link
            self.link_bytes = int(link_bytes)
            if self.link is not None and self.link_bytes <= 0:
                raise ValueError("link transfers need a positive link_bytes")
        else:
            if submit_ns is None:
                raise ValueError("open-loop batches need a submit_ns column")
            self.submit_ns = _column(submit_ns, count)
            if len(self.submit_ns) != count:
                raise ValueError("batch columns must be equal-length")
            if count and min(self.submit_ns) < 0:
                raise ValueError("submit_ns must be non-negative")
            self.start_ns = 0.0
            self.pre_gap_ns = None
            self.post_gap_ns = None
            self.link = None
            self.link_bytes = 0

    @classmethod
    def of_request(cls, request: IORequest) -> "IORequestBatch":
        """Batch-of-one view of an already-validated :class:`IORequest`."""
        batch = cls.__new__(cls)
        batch.is_write = [request.is_write]
        batch.byte_offset = [request.byte_offset]
        batch.size_bytes = [request.size_bytes]
        batch.submit_ns = [request.submit_ns]
        batch.fua = [request.fua]
        batch.chained = False
        batch.start_ns = 0.0
        batch.pre_gap_ns = None
        batch.post_gap_ns = None
        batch.link = None
        batch.link_bytes = 0
        batch.record_details = True
        return batch

    def __len__(self) -> int:
        return len(self.byte_offset)

    def request(self, index: int) -> IORequest:
        """Scalar view of one batch row (open-loop batches only)."""
        if self.submit_ns is None:
            raise ValueError("chained batches have no per-request submit_ns")
        return IORequest(is_write=bool(self.is_write[index]),
                         byte_offset=int(self.byte_offset[index]),
                         size_bytes=int(self.size_bytes[index]),
                         submit_ns=float(self.submit_ns[index]),
                         fua=bool(self.fua[index]))


@dataclass
class IOBatchResult:
    """Columnar completion record of one :class:`IORequestBatch`.

    ``start_ns`` / ``finish_ns`` / ``latency_ns`` are always present; the
    per-request counter columns are ``None`` when the batch was built with
    ``record_details=False``.  For chained batches, ``service_latency_ns``
    holds the closed-loop service latency (device + link) per request and
    ``end_ns`` the clock after the last post-gap.
    """

    start_ns: List[float]
    finish_ns: List[float]
    latency_ns: List[float]
    buffer_hits: Optional[List[int]] = None
    buffer_misses: Optional[List[int]] = None
    flash_reads: Optional[List[int]] = None
    flash_programs: Optional[List[int]] = None
    gc_pages_moved: Optional[List[int]] = None
    service_latency_ns: Optional[List[float]] = None
    end_ns: float = 0.0

    def __len__(self) -> int:
        return len(self.finish_ns)

    def result(self, index: int, request: IORequest) -> IOResult:
        """Materialise the scalar :class:`IOResult` view of one row."""
        detail = self.buffer_hits is not None
        return IOResult(
            request=request,
            start_ns=self.start_ns[index],
            finish_ns=self.finish_ns[index],
            buffer_hits=self.buffer_hits[index] if detail else 0,
            buffer_misses=self.buffer_misses[index] if detail else 0,
            flash_reads=self.flash_reads[index] if detail else 0,
            flash_programs=self.flash_programs[index] if detail else 0,
            gc_pages_moved=self.gc_pages_moved[index] if detail else 0)


class SSD:
    """A simulated NVMe/SATA solid-state drive."""

    def __init__(self, config: SSDConfig) -> None:
        self.config = config
        geometry = config.geometry
        self.page_size = geometry.page_size
        self.array = ZNANDArray(geometry, config.timing)
        self.channels = ChannelScheduler(geometry,
                                         config.channel_bw_bytes_per_ns)
        self.ftl = FlashTranslationLayer(geometry)
        self.fil = FlashInterfaceLayer(self.array, self.channels,
                                       self.page_size,
                                       split_channels=config.split_channels)
        self.hil = HostInterfaceLayer(self.page_size, config.firmware_latency_ns)
        self.buffer = InternalDRAMBuffer(
            config.dram_buffer_bytes, self.page_size,
            enabled=config.dram_buffer_enabled,
            mapping_table_fraction=config.mapping_table_fraction)
        self.stats = StatRegistry(prefix=config.name)
        # Hoisted from the frozen geometry's property chain: recomputing it
        # per sub-request dominates profiles of migration-heavy replays.
        self._logical_pages = config.geometry.logical_pages
        # Outstanding request completion times, used to model the device's
        # bounded queue (ULL-Flash sustains ~16 outstanding random reads).
        self._outstanding: List[float] = []
        self.requests_served = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- capacity ------------------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.config.geometry.usable_capacity_bytes

    @property
    def logical_pages(self) -> int:
        return self._logical_pages

    # -- preconditioning -------------------------------------------------------------

    def precondition(self, start_lpn: int, page_count: int) -> None:
        """Pre-map a logical range without charging simulation time.

        The paper's experiments write every data block to the flash media in
        a warm-up phase before measuring (Section VI-A); preconditioning
        reproduces that state so reads hit mapped pages.
        """
        if page_count < 0:
            raise ValueError("page_count must be non-negative")
        end = start_lpn + page_count
        if end > self.logical_pages:
            raise ValueError("precondition range exceeds device capacity")
        if end > self.ftl.mapped_floor:
            # Below the floor every LPN is already mapped (the common case
            # when a platform's replay re-prepares an already warmed
            # device), so only the unproven tail needs the scan.
            for lpn in range(max(start_lpn, self.ftl.mapped_floor), end):
                if not self.ftl.is_mapped(lpn):
                    self.ftl.write(lpn)
            if start_lpn <= self.ftl.mapped_floor:
                self.ftl.mapped_floor = end
        self.buffer.clear()

    # -- request servicing -------------------------------------------------------------

    def submit(self, request: IORequest) -> IOResult:
        """Service one request: the batch-of-one wrapper over the batch path.

        Requests must be submitted in non-decreasing ``submit_ns`` order (the
        callers — NVMe controller, OS stack, HAMS engine — all do this).
        """
        batch_result = self.submit_batch(IORequestBatch.of_request(request))
        return batch_result.result(0, request)

    def read(self, byte_offset: int, size_bytes: int, at_ns: float) -> IOResult:
        """Convenience wrapper for a read request."""
        return self.submit(IORequest(is_write=False, byte_offset=byte_offset,
                                     size_bytes=size_bytes, submit_ns=at_ns))

    def write(self, byte_offset: int, size_bytes: int, at_ns: float,
              fua: bool = False) -> IOResult:
        """Convenience wrapper for a write request."""
        return self.submit(IORequest(is_write=True, byte_offset=byte_offset,
                                     size_bytes=size_bytes, submit_ns=at_ns,
                                     fua=fua))

    def submit_batch(self, batch: IORequestBatch) -> IOBatchResult:
        """Service a whole request vector with one walk over the flash stack.

        Bit-identical to submitting each request through the historical
        scalar path in order: the DRAM-buffer folds, the batched FTL
        translation and the flat channel/die reservation schedules replay
        exactly the scalar call sequence per layer (per-resource state is
        only ever advanced in request order), and garbage collection
        triggers at the same scalar points.  Requests must be ordered by
        non-decreasing submission clock, like :meth:`submit` callers.
        """
        count = len(batch)
        config = self.config
        # -- hoisted layer state (shared mutable structures, loop locals) --
        page_size = self.page_size
        logical_pages = self._logical_pages
        buffer = self.buffer
        buffer_enabled = buffer.enabled
        # The buffer/FTL per-page operations are inlined below against these
        # shared structures (the batch walk IS the one service path, so the
        # inlining is the method bodies of InternalDRAMBuffer.read/write/
        # fill and FlashTranslationLayer.lookup, loop-hoisted).
        buffer_pages = buffer._pages
        buffer_move = buffer_pages.move_to_end
        buffer_insert = buffer._insert
        ftl = self.ftl
        mapping_get = ftl._mapping.get
        ftl_write = ftl.write
        fil = self.fil
        hil = self.hil
        outstanding = self._outstanding
        max_outstanding = config.max_outstanding
        hit_ns = config.dram_buffer_hit_ns
        firmware_ns = hil.firmware_latency_ns
        heappush = heapq.heappush
        heappop = heapq.heappop
        # Flat die/channel occupancy shared with the layer objects.
        array = self.array
        die_states = array._states
        geometry = config.geometry
        packages_per_channel = geometry.packages_per_channel
        dies_per_package = geometry.dies_per_package
        read_ns = array.timing.read_ns
        program_ns = array.timing.program_ns
        channels = self.channels
        chan_busy = channels.busy_until_ns
        chan_bytes = channels.bytes_moved
        chan_transfers = channels.transfers
        channel_count = channels.channel_count
        split = fil.split_channels
        if split:
            half = page_size // 2
            rest = page_size - half
            t_half = channels.transfer_time(half)
            t_rest = channels.transfer_time(rest)
        else:
            t_full = channels.transfer_time(page_size)
        # -- lifted per-request statistics (written back in ``finally``) --
        stat = self.stats.latency("request_latency")
        s_count = stat.count
        s_total = stat.total
        s_min = stat.min
        s_max = stat.max
        s_mean = stat._mean
        s_m2 = stat._m2
        page_reads_local = 0
        page_programs_local = 0
        buffer_stats = buffer.stats
        buf_read_hits = 0
        buf_read_misses = 0
        buf_write_hits = 0
        buf_write_misses = 0
        parsed_local = 0
        subs_local = 0
        served_local = 0
        bytes_read_local = 0
        bytes_written_local = 0
        # -- batch columns -------------------------------------------------
        write_col = batch.is_write
        offset_col = batch.byte_offset
        size_col = batch.size_bytes
        fua_col = batch.fua
        chained = batch.chained
        detail = batch.record_details
        if chained:
            now = batch.start_ns
            pre_gaps = batch.pre_gap_ns
            post_gaps = batch.post_gap_ns
            link = batch.link
            service_latencies: List[float] = []
            if link is not None:
                link_bytes = batch.link_bytes
                link_busy = link.busy_until_ns
                link_overhead = link.per_transfer_overhead(link_bytes)
                link_raw = link.raw_transfer_time(link_bytes)
                link_count = 0
        else:
            submit_col = batch.submit_ns
        starts: List[float] = []
        finishes: List[float] = []
        latencies: List[float] = []
        if detail:
            col_bh: List[int] = []
            col_bm: List[int] = []
            col_fr: List[int] = []
            col_fp: List[int] = []
            col_gc: List[int] = []

        try:
            for j in range(count):
                if chained:
                    if pre_gaps is not None:
                        now += pre_gaps[j]
                    submit = now
                else:
                    submit = submit_col[j]
                # Admission: drain completions, then gate on the queue bound.
                while outstanding and outstanding[0] <= submit:
                    heappop(outstanding)
                if len(outstanding) < max_outstanding:
                    start = submit
                else:
                    earliest = heappop(outstanding)
                    start = submit if submit >= earliest else earliest
                # HIL parse/split.  The single-whole-page fast path covers
                # every hot caller; the general splitter mirrors
                # HostInterfaceLayer.split's page walk.
                offset = offset_col[j]
                size = size_col[j]
                is_write = write_col[j]
                parsed_local += 1
                in_page = offset % page_size
                if size <= page_size - in_page:
                    n_sub = 1
                    lpns = None
                else:
                    lpns = []
                    cursor = offset
                    remaining = size
                    while remaining > 0:
                        lpns.append(cursor // page_size)
                        chunk = page_size - cursor % page_size
                        if chunk > remaining:
                            chunk = remaining
                        cursor += chunk
                        remaining -= chunk
                    n_sub = len(lpns)
                subs_local += n_sub
                if n_sub == 1:
                    # firmware_ns * (1.0 + 0.05 * 0) == firmware_ns exactly.
                    firmware_done = start + firmware_ns
                else:
                    firmware_done = start + firmware_ns * (1.0
                                                          + 0.05 * (n_sub - 1))
                finish = firmware_done
                r_bh = 0
                r_bm = 0
                r_fr = 0
                r_fp = 0
                r_gc = 0

                if n_sub == 1 and not is_write:
                    # -- single-page read (the dominant shape) ------------
                    lpn = (offset // page_size) % logical_pages
                    if buffer_enabled and lpn in buffer_pages:
                        buffer_move(lpn)
                        buf_read_hits += 1
                        r_bh = 1
                        sub_finish = firmware_done + hit_ns
                    else:
                        buf_read_misses += 1
                        r_bm = 1
                        address = mapping_get(lpn)
                        if address is None:
                            # Never-written page: zeroes from the controller.
                            sub_finish = firmware_done + hit_ns
                        else:
                            # Inlined FlashInterfaceLayer.read_page against
                            # the flat occupancy arrays: array sensing, then
                            # the (optionally split) channel DMA.
                            state = die_states[
                                (address.channel * packages_per_channel
                                 + address.package) * dies_per_package
                                + address.die]
                            busy = state.busy_until_ns
                            array_start = (firmware_done
                                           if firmware_done >= busy else busy)
                            array_finish = array_start + read_ns
                            state.busy_until_ns = array_finish
                            state.reads += 1
                            channel = address.channel
                            if split:
                                partner = channel + 1
                                if partner == channel_count:
                                    partner = 0
                                busy = chan_busy[channel]
                                t_start = (array_finish
                                           if array_finish >= busy else busy)
                                finish_a = t_start + t_half
                                chan_busy[channel] = finish_a
                                chan_bytes[channel] += half
                                chan_transfers[channel] += 1
                                busy = chan_busy[partner]
                                t_start = (array_finish
                                           if array_finish >= busy else busy)
                                finish_b = t_start + t_rest
                                chan_busy[partner] = finish_b
                                chan_bytes[partner] += rest
                                chan_transfers[partner] += 1
                                sub_finish = (finish_a if finish_a >= finish_b
                                              else finish_b)
                            else:
                                busy = chan_busy[channel]
                                t_start = (array_finish
                                           if array_finish >= busy else busy)
                                sub_finish = t_start + t_full
                                chan_busy[channel] = sub_finish
                                chan_bytes[channel] += page_size
                                chan_transfers[channel] += 1
                            page_reads_local += 1
                            r_fr = 1
                            # Read-miss fill (the page is known absent, so
                            # this is InternalDRAMBuffer.fill's insert arm).
                            if buffer_enabled:
                                buffer_insert(lpn, False)
                    if sub_finish > finish:
                        finish = sub_finish
                elif not is_write:
                    # -- multi-page read (the migration-chunk shape) ------
                    # One fused pass in piece order: buffer classification,
                    # translation and the die/channel reservations are the
                    # same per-page sequence as above, so a 16-page chunk
                    # read is one tight loop instead of 16 scalar walks.
                    zero_finish = firmware_done + hit_ns
                    for raw_lpn in lpns:
                        lpn = raw_lpn % logical_pages
                        if buffer_enabled and lpn in buffer_pages:
                            buffer_move(lpn)
                            buf_read_hits += 1
                            r_bh += 1
                            sub_finish = zero_finish
                        else:
                            buf_read_misses += 1
                            r_bm += 1
                            address = mapping_get(lpn)
                            if address is None:
                                sub_finish = zero_finish
                            else:
                                state = die_states[
                                    (address.channel * packages_per_channel
                                     + address.package) * dies_per_package
                                    + address.die]
                                busy = state.busy_until_ns
                                array_start = (firmware_done
                                               if firmware_done >= busy
                                               else busy)
                                array_finish = array_start + read_ns
                                state.busy_until_ns = array_finish
                                state.reads += 1
                                channel = address.channel
                                if split:
                                    partner = channel + 1
                                    if partner == channel_count:
                                        partner = 0
                                    busy = chan_busy[channel]
                                    t_start = (array_finish
                                               if array_finish >= busy
                                               else busy)
                                    finish_a = t_start + t_half
                                    chan_busy[channel] = finish_a
                                    chan_bytes[channel] += half
                                    chan_transfers[channel] += 1
                                    busy = chan_busy[partner]
                                    t_start = (array_finish
                                               if array_finish >= busy
                                               else busy)
                                    finish_b = t_start + t_rest
                                    chan_busy[partner] = finish_b
                                    chan_bytes[partner] += rest
                                    chan_transfers[partner] += 1
                                    sub_finish = (finish_a
                                                  if finish_a >= finish_b
                                                  else finish_b)
                                else:
                                    busy = chan_busy[channel]
                                    t_start = (array_finish
                                               if array_finish >= busy
                                               else busy)
                                    sub_finish = t_start + t_full
                                    chan_busy[channel] = sub_finish
                                    chan_bytes[channel] += page_size
                                    chan_transfers[channel] += 1
                                page_reads_local += 1
                                r_fr += 1
                                if buffer_enabled:
                                    buffer_insert(lpn, False)
                        if sub_finish > finish:
                            finish = sub_finish
                else:
                    # -- writes (single- or multi-page) -------------------
                    fua = fua_col[j]
                    if lpns is None:
                        write_lpns = ((offset // page_size) % logical_pages,)
                    else:
                        write_lpns = [lpn % logical_pages for lpn in lpns]
                    for lpn in write_lpns:
                        if not fua and buffer_enabled:
                            # InternalDRAMBuffer.write, inlined: hits mark
                            # dirty in place, misses insert (possibly
                            # evicting the LRU victim).
                            if lpn in buffer_pages:
                                buffer_move(lpn)
                                buffer_pages[lpn] = True
                                buf_write_hits += 1
                                r_bh += 1
                                evicted = None
                            else:
                                buf_write_misses += 1
                                r_bm += 1
                                evicted = buffer_insert(lpn, True)
                            sub_finish = firmware_done + hit_ns
                            if evicted is not None and evicted[1]:
                                program_lpn = evicted[0]
                            else:
                                program_lpn = None
                        else:
                            # FUA (or no buffer): data must reach the media.
                            r_bm += 1
                            sub_finish = firmware_done
                            program_lpn = lpn
                        if program_lpn is not None:
                            address, gc_result = ftl_write(program_lpn)
                            # Inlined FlashInterfaceLayer.write_page: the
                            # (optionally split) DMA in, then the program.
                            channel = address.channel
                            if split:
                                partner = channel + 1
                                if partner == channel_count:
                                    partner = 0
                                busy = chan_busy[channel]
                                t_start = (sub_finish if sub_finish >= busy
                                           else busy)
                                finish_a = t_start + t_half
                                chan_busy[channel] = finish_a
                                chan_bytes[channel] += half
                                chan_transfers[channel] += 1
                                busy = chan_busy[partner]
                                t_start = (sub_finish if sub_finish >= busy
                                           else busy)
                                finish_b = t_start + t_rest
                                chan_busy[partner] = finish_b
                                chan_bytes[partner] += rest
                                chan_transfers[partner] += 1
                                transfer_finish = (finish_a
                                                   if finish_a >= finish_b
                                                   else finish_b)
                            else:
                                busy = chan_busy[channel]
                                t_start = (sub_finish if sub_finish >= busy
                                           else busy)
                                transfer_finish = t_start + t_full
                                chan_busy[channel] = transfer_finish
                                chan_bytes[channel] += page_size
                                chan_transfers[channel] += 1
                            state = die_states[
                                (channel * packages_per_channel
                                 + address.package) * dies_per_package
                                + address.die]
                            busy = state.busy_until_ns
                            array_start = (transfer_finish
                                           if transfer_finish >= busy
                                           else busy)
                            sub_finish = array_start + program_ns
                            state.busy_until_ns = sub_finish
                            state.programs += 1
                            page_programs_local += 1
                            r_fp += 1
                            # GC relocations charged serially after the
                            # triggering program (rare; layer calls are
                            # fine here).
                            for old, new in gc_result.page_moves:
                                read_access = fil.read_page(old, sub_finish)
                                write_access = fil.write_page(
                                    new, read_access.finish_ns)
                                sub_finish = write_access.finish_ns
                            r_gc += gc_result.pages_moved
                        if sub_finish > finish:
                            finish = sub_finish

                # -- completion ---------------------------------------
                heappush(outstanding, finish)
                served_local += 1
                if is_write:
                    bytes_written_local += size
                else:
                    bytes_read_local += size
                latency = finish - submit
                # Inlined LatencyStat.record (Welford, exact update order).
                s_count += 1
                s_total += latency
                if latency < s_min:
                    s_min = latency
                if latency > s_max:
                    s_max = latency
                delta = latency - s_mean
                s_mean += delta / s_count
                s_m2 += delta * (latency - s_mean)
                starts.append(start)
                finishes.append(finish)
                latencies.append(latency)
                if detail:
                    col_bh.append(r_bh)
                    col_bm.append(r_bm)
                    col_fr.append(r_fr)
                    col_fp.append(r_fp)
                    col_gc.append(r_gc)
                if chained:
                    service_latency = latency
                    if link is not None:
                        # Inlined Link.transfer recurrence at finish time.
                        t_start = (finish if finish >= link_busy
                                   else link_busy)
                        link_finish = (t_start + link_overhead) + link_raw
                        link_busy = link_finish
                        link_count += 1
                        service_latency = latency + (link_finish - t_start)
                    service_latencies.append(service_latency)
                    if post_gaps is not None:
                        now += post_gaps[j] + service_latency
                    else:
                        now += service_latency
        finally:
            # Fold the lifted statistics back even if a layer raised
            # mid-batch (partial state then matches the scalar sequence up
            # to the failing request).
            stat.count = s_count
            stat.total = s_total
            stat.min = s_min
            stat.max = s_max
            stat._mean = s_mean
            stat._m2 = s_m2
            if served_local:
                self.stats.counter("requests").value += float(served_local)
            fil.page_reads += page_reads_local
            fil.page_programs += page_programs_local
            buffer_stats.read_hits += buf_read_hits
            buffer_stats.read_misses += buf_read_misses
            buffer_stats.write_hits += buf_write_hits
            buffer_stats.write_misses += buf_write_misses
            hil.requests_parsed += parsed_local
            hil.subrequests_created += subs_local
            self.requests_served += served_local
            self.bytes_read += bytes_read_local
            self.bytes_written += bytes_written_local
            if chained and link is not None and link_count:
                link.commit_transfers(link_count, link_count * link_bytes,
                                      link_busy)

        return IOBatchResult(
            start_ns=starts, finish_ns=finishes, latency_ns=latencies,
            buffer_hits=col_bh if detail else None,
            buffer_misses=col_bm if detail else None,
            flash_reads=col_fr if detail else None,
            flash_programs=col_fp if detail else None,
            gc_pages_moved=col_gc if detail else None,
            service_latency_ns=service_latencies if chained else None,
            end_ns=now if chained else 0.0)

    # -- power failure -------------------------------------------------------------------

    def supercap_flush(self, at_ns: float) -> float:
        """Flush every dirty buffered page to flash (supercap-backed).

        Returns the time at which the flush completes.  Used by the HAMS
        persistency design, which adds super-capacitors to ULL-Flash so the
        volatile internal buffer survives power loss (Section IV-B).
        """
        finish = at_ns
        for lpn in self.buffer.flush_all():
            address, gc_result = self.ftl.write(lpn)
            access = self.fil.write_page(address, finish)
            finish = max(finish, access.finish_ns)
            finish = self._charge_gc(gc_result, finish)
        return finish

    # -- internals -------------------------------------------------------------------

    def _charge_gc(self, gc_result: GCResult, at_ns: float) -> float:
        """Charge garbage-collection relocations triggered by an allocation."""
        finish = at_ns
        for old, new in gc_result.page_moves:
            read_access = self.fil.read_page(old, finish)
            write_access = self.fil.write_page(new, read_access.finish_ns)
            finish = write_access.finish_ns
        return finish

    def _clamp_lpn(self, lpn: int) -> int:
        """Wrap out-of-range LPNs into the device (callers address modulo capacity)."""
        return lpn % self.logical_pages

    # -- reporting -------------------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        """Unified ``flash_*`` counter fold over every layer of the stack.

        One stable namespace replaces the historical ad-hoc per-layer
        dictionaries: host-interface service counters, the DRAM buffer's
        hit/eviction counters, FTL mapping/GC counters and the FIL/channel
        traffic counters all appear under ``flash_`` keys.
        """
        buffer_stats = self.buffer.stats
        summary: Dict[str, float] = {
            "flash_requests_served": float(self.requests_served),
            "flash_bytes_read": float(self.bytes_read),
            "flash_bytes_written": float(self.bytes_written),
            "flash_buffer_hit_rate": buffer_stats.hit_rate,
            "flash_buffer_read_hits": float(buffer_stats.read_hits),
            "flash_buffer_read_misses": float(buffer_stats.read_misses),
            "flash_buffer_write_hits": float(buffer_stats.write_hits),
            "flash_buffer_write_misses": float(buffer_stats.write_misses),
            "flash_buffer_dirty_evictions": float(
                buffer_stats.dirty_evictions),
            "flash_buffer_clean_evictions": float(
                buffer_stats.clean_evictions),
            "flash_page_reads": float(self.fil.page_reads),
            "flash_page_programs": float(self.fil.page_programs),
            "flash_block_erases": float(self.fil.block_erases),
        }
        summary.update({f"flash_{key}": value
                        for key, value in self.channels.statistics().items()})
        summary.update({f"flash_ftl_{key}": float(value)
                        for key, value in self.ftl.statistics().items()})
        return summary


def make_ssd(kind: str, capacity_bytes: Optional[int] = None) -> SSD:
    """Build one of the paper's three SSD presets.

    ``kind`` is one of ``"ull-flash"``, ``"nvme-ssd"`` or ``"sata-ssd"``.
    """
    builders = {
        "ull-flash": SSDConfig.ull_flash,
        "nvme-ssd": SSDConfig.nvme_ssd,
        "sata-ssd": SSDConfig.sata_ssd,
    }
    try:
        builder = builders[kind]
    except KeyError:
        raise ValueError(
            f"unknown SSD kind {kind!r}; expected one of {sorted(builders)}"
        ) from None
    config = builder(capacity_bytes) if capacity_bytes else builder()
    return SSD(config)
