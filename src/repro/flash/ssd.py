"""The full SSD device model: firmware stack + internal DRAM + flash complex.

An :class:`SSD` accepts byte-ranged I/O requests at arbitrary submission
times and returns completion times computed from the state of its internal
resources (DRAM buffer, channels, dies, mapping table).  It composes the
lower layers of this package:

``HostInterfaceLayer`` -> ``InternalDRAMBuffer`` -> ``FlashTranslationLayer``
-> ``FlashInterfaceLayer`` -> ``ZNANDArray`` / ``ChannelScheduler``.

Three factory presets mirror the devices used in the paper's evaluation:
ULL-Flash (Z-NAND), a conventional NVMe SSD and a SATA SSD.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import SSDConfig
from ..sim.stats import StatRegistry
from .channel import ChannelScheduler
from .dram_buffer import InternalDRAMBuffer
from .fil import FlashInterfaceLayer
from .ftl import FlashTranslationLayer, GCResult
from .hil import HostInterfaceLayer
from .znand import ZNANDArray


@dataclass(frozen=True)
class IORequest:
    """One host-visible I/O request."""

    is_write: bool
    byte_offset: int
    size_bytes: int
    submit_ns: float
    fua: bool = False

    def __post_init__(self) -> None:
        if self.byte_offset < 0:
            raise ValueError("byte_offset must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.submit_ns < 0:
            raise ValueError("submit_ns must be non-negative")


@dataclass
class IOResult:
    """Completion record for one :class:`IORequest`."""

    request: IORequest
    start_ns: float
    finish_ns: float
    buffer_hits: int = 0
    buffer_misses: int = 0
    flash_reads: int = 0
    flash_programs: int = 0
    gc_pages_moved: int = 0

    @property
    def latency_ns(self) -> float:
        return self.finish_ns - self.request.submit_ns

    @property
    def device_time_ns(self) -> float:
        return self.finish_ns - self.start_ns


class SSD:
    """A simulated NVMe/SATA solid-state drive."""

    def __init__(self, config: SSDConfig) -> None:
        self.config = config
        geometry = config.geometry
        self.page_size = geometry.page_size
        self.array = ZNANDArray(geometry, config.timing)
        self.channels = ChannelScheduler(geometry,
                                         config.channel_bw_bytes_per_ns)
        self.ftl = FlashTranslationLayer(geometry)
        self.fil = FlashInterfaceLayer(self.array, self.channels,
                                       self.page_size,
                                       split_channels=config.split_channels)
        self.hil = HostInterfaceLayer(self.page_size, config.firmware_latency_ns)
        self.buffer = InternalDRAMBuffer(
            config.dram_buffer_bytes, self.page_size,
            enabled=config.dram_buffer_enabled,
            mapping_table_fraction=config.mapping_table_fraction)
        self.stats = StatRegistry(prefix=config.name)
        # Hoisted from the frozen geometry's property chain: recomputing it
        # per sub-request dominates profiles of migration-heavy replays.
        self._logical_pages = config.geometry.logical_pages
        # Outstanding request completion times, used to model the device's
        # bounded queue (ULL-Flash sustains ~16 outstanding random reads).
        self._outstanding: List[float] = []
        self.requests_served = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- capacity ------------------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.config.geometry.usable_capacity_bytes

    @property
    def logical_pages(self) -> int:
        return self._logical_pages

    # -- preconditioning -------------------------------------------------------------

    def precondition(self, start_lpn: int, page_count: int) -> None:
        """Pre-map a logical range without charging simulation time.

        The paper's experiments write every data block to the flash media in
        a warm-up phase before measuring (Section VI-A); preconditioning
        reproduces that state so reads hit mapped pages.
        """
        if page_count < 0:
            raise ValueError("page_count must be non-negative")
        end = start_lpn + page_count
        if end > self.logical_pages:
            raise ValueError("precondition range exceeds device capacity")
        if end > self.ftl.mapped_floor:
            # Below the floor every LPN is already mapped (the common case
            # when a platform's replay re-prepares an already warmed
            # device), so only the unproven tail needs the scan.
            for lpn in range(max(start_lpn, self.ftl.mapped_floor), end):
                if not self.ftl.is_mapped(lpn):
                    self.ftl.write(lpn)
            if start_lpn <= self.ftl.mapped_floor:
                self.ftl.mapped_floor = end
        self.buffer.clear()

    # -- request servicing -------------------------------------------------------------

    def submit(self, request: IORequest) -> IOResult:
        """Service one request and return its completion record.

        Requests must be submitted in non-decreasing ``submit_ns`` order (the
        callers — NVMe controller, OS stack, HAMS engine — all do this).
        """
        start = self._admission_time(request.submit_ns)
        subrequests = self.hil.split(request.byte_offset, request.size_bytes,
                                     request.is_write)
        firmware_done = start + self.hil.parse_latency(len(subrequests))
        result = IOResult(request=request, start_ns=start, finish_ns=firmware_done)

        finish = firmware_done
        for sub in subrequests:
            if sub.is_write:
                sub_finish = self._service_write(sub.lpn, firmware_done,
                                                 request.fua, result)
            else:
                sub_finish = self._service_read(sub.lpn, firmware_done, result)
            finish = max(finish, sub_finish)

        result.finish_ns = finish
        self._complete(finish)
        self.requests_served += 1
        if request.is_write:
            self.bytes_written += request.size_bytes
        else:
            self.bytes_read += request.size_bytes
        self.stats.latency("request_latency").record(result.latency_ns)
        self.stats.counter("requests").add()
        return result

    def read(self, byte_offset: int, size_bytes: int, at_ns: float) -> IOResult:
        """Convenience wrapper for a read request."""
        return self.submit(IORequest(is_write=False, byte_offset=byte_offset,
                                     size_bytes=size_bytes, submit_ns=at_ns))

    def write(self, byte_offset: int, size_bytes: int, at_ns: float,
              fua: bool = False) -> IOResult:
        """Convenience wrapper for a write request."""
        return self.submit(IORequest(is_write=True, byte_offset=byte_offset,
                                     size_bytes=size_bytes, submit_ns=at_ns,
                                     fua=fua))

    # -- power failure -------------------------------------------------------------------

    def supercap_flush(self, at_ns: float) -> float:
        """Flush every dirty buffered page to flash (supercap-backed).

        Returns the time at which the flush completes.  Used by the HAMS
        persistency design, which adds super-capacitors to ULL-Flash so the
        volatile internal buffer survives power loss (Section IV-B).
        """
        finish = at_ns
        for lpn in self.buffer.flush_all():
            address, gc_result = self.ftl.write(lpn)
            access = self.fil.write_page(address, finish)
            finish = max(finish, access.finish_ns)
            finish = self._charge_gc(gc_result, finish, None)
        return finish

    # -- internals -------------------------------------------------------------------

    def _service_read(self, lpn: int, at_ns: float, result: IOResult) -> float:
        lpn = self._clamp_lpn(lpn)
        if self.buffer.read(lpn):
            result.buffer_hits += 1
            return at_ns + self.config.dram_buffer_hit_ns
        result.buffer_misses += 1
        address = self.ftl.lookup(lpn)
        if address is None:
            # Reading a never-written page returns zeroes from the controller
            # without touching the flash array.
            return at_ns + self.config.dram_buffer_hit_ns
        access = self.fil.read_page(address, at_ns)
        result.flash_reads += 1
        self.buffer.fill(lpn)
        return access.finish_ns

    def _service_write(self, lpn: int, at_ns: float, fua: bool,
                       result: IOResult) -> float:
        lpn = self._clamp_lpn(lpn)
        if not fua and self.buffer.enabled:
            hit, evicted = self.buffer.write(lpn)
            if hit:
                result.buffer_hits += 1
            else:
                result.buffer_misses += 1
            finish = at_ns + self.config.dram_buffer_hit_ns
            if evicted is not None:
                victim_lpn, dirty = evicted
                if dirty:
                    finish = self._program(victim_lpn, finish, result)
            return finish
        # FUA (or no buffer): the data must reach the flash media before the
        # request completes.
        result.buffer_misses += 1
        return self._program(lpn, at_ns, result)

    def _program(self, lpn: int, at_ns: float, result: Optional[IOResult]) -> float:
        address, gc_result = self.ftl.write(lpn)
        access = self.fil.write_page(address, at_ns)
        if result is not None:
            result.flash_programs += 1
        finish = access.finish_ns
        return self._charge_gc(gc_result, finish, result)

    def _charge_gc(self, gc_result: GCResult, at_ns: float,
                   result: Optional[IOResult]) -> float:
        """Charge garbage-collection relocations triggered by an allocation."""
        finish = at_ns
        for old, new in gc_result.page_moves:
            read_access = self.fil.read_page(old, finish)
            write_access = self.fil.write_page(new, read_access.finish_ns)
            finish = write_access.finish_ns
        if result is not None:
            result.gc_pages_moved += gc_result.pages_moved
        return finish

    def _admission_time(self, submit_ns: float) -> float:
        """Delay admission while the device queue is saturated."""
        while self._outstanding and self._outstanding[0] <= submit_ns:
            heapq.heappop(self._outstanding)
        if len(self._outstanding) < self.config.max_outstanding:
            return submit_ns
        earliest = heapq.heappop(self._outstanding)
        return max(submit_ns, earliest)

    def _complete(self, finish_ns: float) -> None:
        heapq.heappush(self._outstanding, finish_ns)

    def _clamp_lpn(self, lpn: int) -> int:
        """Wrap out-of-range LPNs into the device (callers address modulo capacity)."""
        return lpn % self.logical_pages

    # -- reporting -------------------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        summary: Dict[str, float] = {
            "requests_served": float(self.requests_served),
            "bytes_read": float(self.bytes_read),
            "bytes_written": float(self.bytes_written),
            "buffer_hit_rate": self.buffer.stats.hit_rate,
            "flash_page_reads": float(self.fil.page_reads),
            "flash_page_programs": float(self.fil.page_programs),
        }
        summary.update({f"ftl_{k}": v for k, v in self.ftl.statistics().items()})
        return summary


def make_ssd(kind: str, capacity_bytes: Optional[int] = None) -> SSD:
    """Build one of the paper's three SSD presets.

    ``kind`` is one of ``"ull-flash"``, ``"nvme-ssd"`` or ``"sata-ssd"``.
    """
    builders = {
        "ull-flash": SSDConfig.ull_flash,
        "nvme-ssd": SSDConfig.nvme_ssd,
        "sata-ssd": SSDConfig.sata_ssd,
    }
    try:
        builder = builders[kind]
    except KeyError:
        raise ValueError(
            f"unknown SSD kind {kind!r}; expected one of {sorted(builders)}"
        ) from None
    config = builder(capacity_bytes) if capacity_bytes else builder()
    return SSD(config)
