"""SSD-internal DRAM buffer (write-back page cache with LRU eviction).

All high-performance SSDs, including ULL-Flash, put a large DRAM in front of
the flash channels to hide the array latency (Section II-C).  The buffer is a
page-granular write-back cache: reads that hit are served at DRAM speed,
writes are absorbed and marked dirty, and evictions of dirty pages have to be
programmed into flash.

The *advanced* HAMS design removes this buffer entirely (the NVDIMM becomes
the only buffer), which is modelled by constructing the SSD with
``dram_buffer_enabled=False`` — the buffer then reports every access as a
miss and absorbs nothing, and its energy contribution drops out of
Figure 19.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass
class BufferStats:
    """Hit/miss and eviction counters for the internal buffer."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    dirty_evictions: int = 0
    clean_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = (self.read_hits + self.read_misses
                 + self.write_hits + self.write_misses)
        if total == 0:
            return 0.0
        return (self.read_hits + self.write_hits) / total


class InternalDRAMBuffer:
    """LRU write-back cache of flash pages held in the SSD's DRAM."""

    def __init__(self, capacity_bytes: int, page_size: int,
                 enabled: bool = True,
                 mapping_table_fraction: float = 0.0) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        if not 0.0 <= mapping_table_fraction < 1.0:
            raise ValueError("mapping_table_fraction must be in [0, 1)")
        self.page_size = page_size
        self.enabled = enabled and capacity_bytes >= page_size
        data_bytes = int(capacity_bytes * (1.0 - mapping_table_fraction))
        self.capacity_pages = max(0, data_bytes // page_size) if self.enabled else 0
        # OrderedDict keyed by LPN; value is the dirty flag.  Most recently
        # used entries live at the end.
        self._pages: "OrderedDict[int, bool]" = OrderedDict()
        self.stats = BufferStats()

    # -- queries ----------------------------------------------------------------

    def __contains__(self, lpn: int) -> bool:
        return lpn in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def dirty_pages(self) -> int:
        return sum(1 for dirty in self._pages.values() if dirty)

    # -- accesses ---------------------------------------------------------------

    def read(self, lpn: int) -> bool:
        """Record a read access; returns ``True`` on a buffer hit."""
        if not self.enabled:
            self.stats.read_misses += 1
            return False
        if lpn in self._pages:
            self._pages.move_to_end(lpn)
            self.stats.read_hits += 1
            return True
        self.stats.read_misses += 1
        return False

    def write(self, lpn: int) -> Tuple[bool, Optional[Tuple[int, bool]]]:
        """Record a write access.

        Returns ``(hit, evicted)`` where *evicted* is ``(lpn, dirty)`` for
        the page pushed out to make room, or ``None`` when nothing was
        evicted.  With the buffer disabled every write is a miss and nothing
        is cached.
        """
        if not self.enabled:
            self.stats.write_misses += 1
            return False, None
        if lpn in self._pages:
            self._pages.move_to_end(lpn)
            self._pages[lpn] = True
            self.stats.write_hits += 1
            return True, None
        self.stats.write_misses += 1
        evicted = self._insert(lpn, dirty=True)
        return False, evicted

    def read_fill_batch(self, lpns: List[int],
                        mapped: List[bool]) -> List[bool]:
        """Classify a read vector and install the miss fills, in order.

        The batched-submission fold of the scalar per-page sequence
        ``read(lpn)`` then — on a miss whose LPN is mapped — ``fill(lpn)``.
        Returns the per-page hit flags.  Buffer state and counters end up
        exactly as the scalar calls would leave them (duplicate LPNs inside
        the vector hit the fill installed by the earlier element, matching
        the scalar walk).  Fill evictions are clean-or-dirty *counted* but
        not returned: the read path never programs them, exactly like
        :meth:`repro.flash.ssd.SSD` ignoring :meth:`fill`'s return value.
        """
        count = len(lpns)
        stats = self.stats
        if not self.enabled:
            stats.read_misses += count
            return [False] * count
        pages = self._pages
        move_to_end = pages.move_to_end
        insert = self._insert
        hits = []
        append = hits.append
        read_hits = 0
        read_misses = 0
        for index in range(count):
            lpn = lpns[index]
            if lpn in pages:
                move_to_end(lpn)
                read_hits += 1
                append(True)
            else:
                read_misses += 1
                append(False)
                if mapped[index]:
                    insert(lpn, dirty=False)
        stats.read_hits += read_hits
        stats.read_misses += read_misses
        return hits

    def write_batch(
            self, lpns: List[int],
    ) -> Tuple[List[bool], List[Optional[Tuple[int, bool]]]]:
        """Classify a write vector; the batched hit/dirty-evict fold.

        Equivalent to calling :meth:`write` once per LPN in order: returns
        the per-page hit flags and the per-page eviction (``(lpn, dirty)``
        or ``None``).  Dirty victims must then be programmed by the caller
        in the same order, exactly as the scalar walk does.
        """
        count = len(lpns)
        stats = self.stats
        if not self.enabled:
            stats.write_misses += count
            return [False] * count, [None] * count
        pages = self._pages
        move_to_end = pages.move_to_end
        insert = self._insert
        hits: List[bool] = []
        evictions: List[Optional[Tuple[int, bool]]] = []
        write_hits = 0
        write_misses = 0
        for lpn in lpns:
            if lpn in pages:
                move_to_end(lpn)
                pages[lpn] = True
                write_hits += 1
                hits.append(True)
                evictions.append(None)
            else:
                write_misses += 1
                hits.append(False)
                evictions.append(insert(lpn, dirty=True))
        stats.write_hits += write_hits
        stats.write_misses += write_misses
        return hits, evictions

    def fill(self, lpn: int) -> Optional[Tuple[int, bool]]:
        """Install a clean copy of *lpn* after a flash read (read miss fill)."""
        if not self.enabled:
            return None
        if lpn in self._pages:
            self._pages.move_to_end(lpn)
            return None
        return self._insert(lpn, dirty=False)

    def invalidate(self, lpn: int) -> None:
        """Drop *lpn* from the buffer (e.g. after a TRIM)."""
        self._pages.pop(lpn, None)

    def flush_all(self) -> List[int]:
        """Return and clean every dirty page (power-failure supercap flush)."""
        dirty = [lpn for lpn, is_dirty in self._pages.items() if is_dirty]
        for lpn in dirty:
            self._pages[lpn] = False
        return dirty

    def clear(self) -> None:
        self._pages.clear()

    # -- internals ----------------------------------------------------------------

    def _insert(self, lpn: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        evicted: Optional[Tuple[int, bool]] = None
        if self.capacity_pages == 0:
            return None
        if len(self._pages) >= self.capacity_pages:
            victim_lpn, victim_dirty = self._pages.popitem(last=False)
            if victim_dirty:
                self.stats.dirty_evictions += 1
            else:
                self.stats.clean_evictions += 1
            evicted = (victim_lpn, victim_dirty)
        self._pages[lpn] = dirty
        return evicted
