"""Z-NAND flash array model: dies, planes, and raw operation timing.

The array tracks per-die occupancy ("busy until" timestamps) so concurrent
operations on different dies proceed in parallel while operations targeting
the same die serialize — the behaviour that gives SSDs their internal
parallelism (Figure 4a).  Plane-level parallelism is modelled as multi-plane
operations: a die can start one array operation at a time, but an operation
may cover several planes of that die with a single array time.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

from ..config import FlashGeometry, FlashTiming


class FlashOperation(Enum):
    """Raw NAND array operations."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


@dataclass
class DieState:
    """Occupancy bookkeeping for one flash die."""

    channel: int
    package: int
    die: int
    busy_until_ns: float = 0.0
    reads: int = 0
    programs: int = 0
    erases: int = 0

    def operations_total(self) -> int:
        return self.reads + self.programs + self.erases


class ZNANDArray:
    """All flash dies of one SSD, addressed as (channel, package, die).

    The array does not know about logical addresses or wear levelling — it
    only answers "when would an operation issued at time T on die D finish?"
    and records per-die utilisation statistics.
    """

    def __init__(self, geometry: FlashGeometry, timing: FlashTiming) -> None:
        self.geometry = geometry
        self.timing = timing
        self._dies: Dict[Tuple[int, int, int], DieState] = {}
        for channel in range(geometry.channels):
            for package in range(geometry.packages_per_channel):
                for die in range(geometry.dies_per_package):
                    key = (channel, package, die)
                    self._dies[key] = DieState(channel=channel, package=package,
                                               die=die)

    # -- addressing helpers -------------------------------------------------

    def die_state(self, channel: int, package: int, die: int) -> DieState:
        try:
            return self._dies[(channel, package, die)]
        except KeyError:
            raise ValueError(
                f"die address out of range: ({channel}, {package}, {die})"
            ) from None

    def dies(self) -> List[DieState]:
        return list(self._dies.values())

    def dies_on_channel(self, channel: int) -> List[DieState]:
        return [die for key, die in self._dies.items() if key[0] == channel]

    # -- timing -------------------------------------------------------------

    def operation_time_ns(self, operation: FlashOperation) -> float:
        """Raw array time for one operation, independent of occupancy."""
        if operation is FlashOperation.READ:
            return self.timing.read_ns
        if operation is FlashOperation.PROGRAM:
            return self.timing.program_ns
        if operation is FlashOperation.ERASE:
            return self.timing.erase_ns
        raise ValueError(f"unknown flash operation: {operation}")

    def issue(self, channel: int, package: int, die: int,
              operation: FlashOperation, at_ns: float) -> Tuple[float, float]:
        """Issue *operation* to a die at time *at_ns*.

        Returns ``(start_ns, finish_ns)``.  The operation starts when the die
        becomes free (or immediately if it is idle) and occupies the die for
        the raw array time.
        """
        state = self.die_state(channel, package, die)
        start = max(at_ns, state.busy_until_ns)
        finish = start + self.operation_time_ns(operation)
        state.busy_until_ns = finish
        if operation is FlashOperation.READ:
            state.reads += 1
        elif operation is FlashOperation.PROGRAM:
            state.programs += 1
        else:
            state.erases += 1
        return start, finish

    def earliest_available(self, at_ns: float) -> Tuple[int, int, int]:
        """Address of the die that frees up first at or after *at_ns*.

        Used by the write allocator to stripe programs across idle dies.
        """
        best_key = None
        best_free = None
        for key, state in self._dies.items():
            free = max(at_ns, state.busy_until_ns)
            if best_free is None or free < best_free:
                best_free = free
                best_key = key
        assert best_key is not None
        return best_key

    # -- statistics ----------------------------------------------------------

    def utilisation_summary(self) -> Dict[str, float]:
        """Aggregate operation counts and the maximum busy-until time."""
        reads = sum(d.reads for d in self._dies.values())
        programs = sum(d.programs for d in self._dies.values())
        erases = sum(d.erases for d in self._dies.values())
        busiest = max((d.busy_until_ns for d in self._dies.values()), default=0.0)
        return {
            "reads": float(reads),
            "programs": float(programs),
            "erases": float(erases),
            "busiest_die_until_ns": busiest,
        }

    def reset(self) -> None:
        for state in self._dies.values():
            state.busy_until_ns = 0.0
            state.reads = 0
            state.programs = 0
            state.erases = 0
