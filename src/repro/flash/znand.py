"""Z-NAND flash array model: dies, planes, and raw operation timing.

The array tracks per-die occupancy ("busy until" timestamps) so concurrent
operations on different dies proceed in parallel while operations targeting
the same die serialize — the behaviour that gives SSDs their internal
parallelism (Figure 4a).  Plane-level parallelism is modelled as multi-plane
operations: a die can start one array operation at a time, but an operation
may cover several planes of that die with a single array time.

Die state lives in one flat list indexed by
``(channel * packages_per_channel + package) * dies_per_package + die`` so
the batched submission walk (:meth:`repro.flash.ssd.SSD.submit_batch`) can
index occupancy directly; :meth:`issue_schedule` issues a whole vector of
operations against that shared state with the exact per-die
``start = max(at, busy); busy = start + t`` recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence, Tuple, Union

from ..config import FlashGeometry, FlashTiming


class FlashOperation(Enum):
    """Raw NAND array operations."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


@dataclass
class DieState:
    """Occupancy bookkeeping for one flash die."""

    channel: int
    package: int
    die: int
    busy_until_ns: float = 0.0
    reads: int = 0
    programs: int = 0
    erases: int = 0

    def operations_total(self) -> int:
        return self.reads + self.programs + self.erases


class ZNANDArray:
    """All flash dies of one SSD, addressed as (channel, package, die).

    The array does not know about logical addresses or wear levelling — it
    only answers "when would an operation issued at time T on die D finish?"
    and records per-die utilisation statistics.  The authoritative state is
    the flat ``_states`` list (see :meth:`flat_index`); the dict-of-dies of
    earlier revisions is gone so batch walks can share it by index.
    """

    def __init__(self, geometry: FlashGeometry, timing: FlashTiming) -> None:
        self.geometry = geometry
        self.timing = timing
        self.dies_per_channel = (geometry.packages_per_channel
                                 * geometry.dies_per_package)
        self.die_count = geometry.channels * self.dies_per_channel
        self._states: List[DieState] = []
        for channel in range(geometry.channels):
            for package in range(geometry.packages_per_channel):
                for die in range(geometry.dies_per_package):
                    self._states.append(DieState(channel=channel,
                                                 package=package, die=die))

    # -- addressing helpers -------------------------------------------------

    def flat_index(self, channel: int, package: int, die: int) -> int:
        """Flat die index used by the occupancy arrays and batch walks."""
        geometry = self.geometry
        if (0 <= channel < geometry.channels
                and 0 <= package < geometry.packages_per_channel
                and 0 <= die < geometry.dies_per_package):
            return ((channel * geometry.packages_per_channel + package)
                    * geometry.dies_per_package + die)
        raise ValueError(
            f"die address out of range: ({channel}, {package}, {die})")

    def die_state(self, channel: int, package: int, die: int) -> DieState:
        return self._states[self.flat_index(channel, package, die)]

    def dies(self) -> List[DieState]:
        return list(self._states)

    def dies_on_channel(self, channel: int) -> List[DieState]:
        base = channel * self.dies_per_channel
        if channel < 0 or base >= self.die_count:
            return []
        return self._states[base:base + self.dies_per_channel]

    # -- timing -------------------------------------------------------------

    def operation_time_ns(self, operation: FlashOperation) -> float:
        """Raw array time for one operation, independent of occupancy."""
        if operation is FlashOperation.READ:
            return self.timing.read_ns
        if operation is FlashOperation.PROGRAM:
            return self.timing.program_ns
        if operation is FlashOperation.ERASE:
            return self.timing.erase_ns
        raise ValueError(f"unknown flash operation: {operation}")

    def issue(self, channel: int, package: int, die: int,
              operation: FlashOperation, at_ns: float) -> Tuple[float, float]:
        """Issue *operation* to a die at time *at_ns*.

        Returns ``(start_ns, finish_ns)``.  The operation starts when the die
        becomes free (or immediately if it is idle) and occupies the die for
        the raw array time.
        """
        state = self._states[self.flat_index(channel, package, die)]
        start = max(at_ns, state.busy_until_ns)
        finish = start + self.operation_time_ns(operation)
        state.busy_until_ns = finish
        if operation is FlashOperation.READ:
            state.reads += 1
        elif operation is FlashOperation.PROGRAM:
            state.programs += 1
        else:
            state.erases += 1
        return start, finish

    def issue_schedule(
            self, flat_indices: Sequence[int], operation: FlashOperation,
            at_ns: Union[float, Sequence[float]],
    ) -> Tuple[List[float], List[float]]:
        """Issue a vector of same-type operations in order.

        Equivalent to calling :meth:`issue` once per element.  Dies that
        appear once in the schedule resolve element-wise (their ``max(at,
        busy)`` is independent of the rest of the vector); repeated dies
        carry the exact sequential recurrence.  Returns start/finish lists
        bit-identical to the scalar call sequence.
        """
        count = len(flat_indices)
        at_list = ([at_ns] * count if isinstance(at_ns, (int, float))
                   else at_ns)
        time = self.operation_time_ns(operation)
        states = self._states
        counter = operation.value + "s"
        starts: List[float] = []
        finishes: List[float] = []
        for index in range(count):
            state = states[flat_indices[index]]
            at = at_list[index]
            horizon = state.busy_until_ns
            start = at if at >= horizon else horizon
            finish = start + time
            state.busy_until_ns = finish
            setattr(state, counter, getattr(state, counter) + 1)
            starts.append(start)
            finishes.append(finish)
        return starts, finishes

    def earliest_available(self, at_ns: float) -> Tuple[int, int, int]:
        """Address of the die that frees up first at or after *at_ns*.

        Used by the write allocator to stripe programs across idle dies.
        """
        best_state = None
        best_free = None
        for state in self._states:
            free = max(at_ns, state.busy_until_ns)
            if best_free is None or free < best_free:
                best_free = free
                best_state = state
        assert best_state is not None
        return best_state.channel, best_state.package, best_state.die

    # -- statistics ----------------------------------------------------------

    def utilisation_summary(self) -> Dict[str, float]:
        """Aggregate operation counts and the maximum busy-until time."""
        reads = sum(d.reads for d in self._states)
        programs = sum(d.programs for d in self._states)
        erases = sum(d.erases for d in self._states)
        busiest = max((d.busy_until_ns for d in self._states), default=0.0)
        return {
            "reads": float(reads),
            "programs": float(programs),
            "erases": float(erases),
            "busiest_die_until_ns": busiest,
        }

    def reset(self) -> None:
        for state in self._states:
            state.busy_until_ns = 0.0
            state.reads = 0
            state.programs = 0
            state.erases = 0
