"""ULL-Flash / SSD simulation substrate.

This package models the full SSD datapath the paper relies on (Section II-C
and the Amber simulator): Z-NAND dies and planes, channel DMA scheduling, a
page-mapping flash translation layer with garbage collection, the flash
interface layer, the host interface layer that splits requests, and the
SSD-internal DRAM write-back buffer.  Three device presets are provided —
ULL-Flash (Z-NAND), a conventional NVMe SSD (V-NAND TLC) and a SATA SSD —
matching the comparison points of Figures 5 and 6.
"""

from .znand import DieState, FlashOperation, ZNANDArray
from .channel import ChannelScheduler
from .ftl import FlashTranslationLayer, PhysicalAddress
from .dram_buffer import InternalDRAMBuffer
from .hil import HostInterfaceLayer, SubRequest
from .fil import FlashInterfaceLayer
from .ssd import (SSD, IOBatchResult, IORequest, IORequestBatch, IOResult,
                  make_ssd)

__all__ = [
    "DieState",
    "FlashOperation",
    "ZNANDArray",
    "ChannelScheduler",
    "FlashTranslationLayer",
    "PhysicalAddress",
    "InternalDRAMBuffer",
    "HostInterfaceLayer",
    "SubRequest",
    "FlashInterfaceLayer",
    "SSD",
    "IORequest",
    "IORequestBatch",
    "IOResult",
    "IOBatchResult",
    "make_ssd",
]
