"""repro: a functional reproduction of HAMS (ISCA 2021).

HAMS — the Hardware Automated Memory-over-Storage solution — aggregates the
capacity of an NVDIMM-N and an ultra-low-latency flash SSD into one flat,
OS-transparent, persistent memory space managed entirely by hardware inside
the memory controller hub.  This library rebuilds the full system described
in the paper as a trace-driven Python simulation: the Z-NAND SSD substrate,
the NVMe protocol, the DDR4/PCIe interconnects, the NVDIMM, the host/OS
model, the HAMS controller itself (baseline and advanced integrations,
persist and extend modes), every baseline platform of the evaluation, and
the twelve workloads of Table III.

Quick start (see :mod:`repro.api` for the full facade)::

    from repro import Session

    session = Session()
    result = session.simulate("hams-TE", "seqRd")
    print(result.operations_per_second)
"""

from .api import (
    AdaptiveSweepResult,
    ServeClient,
    Session,
    adaptive_sweep,
    compare,
    run_sharded,
    simulate,
    sweep,
)
from .exec import (
    Event,
    Executor,
    ExperimentCancelled,
    ExperimentHandle,
    PoolExecutor,
    ProgressSnapshot,
    SerialExecutor,
    ShardedExecutor,
    StreamedRun,
)
from .config import (
    CPUConfig,
    DDRConfig,
    EnergyConfig,
    HAMSConfig,
    NVDIMMConfig,
    NVMeConfig,
    OptaneConfig,
    PCIeConfig,
    SSDConfig,
    SystemConfig,
    default_config,
)
from .analysis.experiments import ExperimentResult, ExperimentRunner
from .core.hams_controller import HAMSAccessResult, HAMSController
from .platforms.base import (
    MemoryRequest,
    MemoryRequestBatch,
    MemoryServiceBatch,
    MemoryServiceResult,
    Platform,
    RunResult,
)
from .platforms.registry import PLATFORM_NAMES, create_platform
from .runner import ParallelExperimentRunner, RunSpec
from .workloads.registry import (
    ExperimentScale,
    all_workload_names,
    build_trace,
    get_workload,
    scale_system_config,
)
from .workloads.trace import AccessStream, MemoryAccess, WorkloadTrace
from .trace import (
    FileAccessStream,
    TraceReader,
    TraceWriter,
    build_trace_file,
    import_binary,
    import_csv,
    load_trace_file,
)
from .scenario import (
    ScenarioSpec,
    TenantSpec,
    build_mixed_trace,
    run_scenario,
    scenario_run_spec,
)

__version__ = "1.0.0"

__all__ = [
    "Session",
    "ServeClient",
    "simulate",
    "compare",
    "sweep",
    "adaptive_sweep",
    "AdaptiveSweepResult",
    "run_sharded",
    "Event",
    "Executor",
    "ExperimentCancelled",
    "ExperimentHandle",
    "PoolExecutor",
    "ProgressSnapshot",
    "SerialExecutor",
    "ShardedExecutor",
    "StreamedRun",
    "AccessStream",
    "MemoryAccess",
    "WorkloadTrace",
    "FileAccessStream",
    "TraceReader",
    "TraceWriter",
    "build_trace_file",
    "import_binary",
    "import_csv",
    "load_trace_file",
    "ScenarioSpec",
    "TenantSpec",
    "build_mixed_trace",
    "run_scenario",
    "scenario_run_spec",
    "MemoryRequest",
    "MemoryRequestBatch",
    "MemoryServiceBatch",
    "MemoryServiceResult",
    "CPUConfig",
    "DDRConfig",
    "EnergyConfig",
    "HAMSConfig",
    "NVDIMMConfig",
    "NVMeConfig",
    "OptaneConfig",
    "PCIeConfig",
    "SSDConfig",
    "SystemConfig",
    "default_config",
    "ExperimentResult",
    "ExperimentRunner",
    "HAMSAccessResult",
    "HAMSController",
    "Platform",
    "RunResult",
    "PLATFORM_NAMES",
    "create_platform",
    "ParallelExperimentRunner",
    "RunSpec",
    "ExperimentScale",
    "all_workload_names",
    "build_trace",
    "get_workload",
    "scale_system_config",
    "__version__",
]
