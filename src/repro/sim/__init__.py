"""Discrete-event simulation primitives and statistics collection."""

from .engine import Event, EventQueue, SimClock, Simulator
from .stats import Counter, Histogram, LatencyStat, StatRegistry

__all__ = [
    "Event",
    "EventQueue",
    "SimClock",
    "Simulator",
    "Counter",
    "Histogram",
    "LatencyStat",
    "StatRegistry",
]
