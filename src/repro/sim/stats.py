"""Statistics collection: counters, latency aggregates, and histograms.

Every device model owns a :class:`StatRegistry` so experiments can pull a
flat name -> value mapping after a run.  The classes are intentionally plain
Python (no numpy dependency) because they sit on hot paths of the trace loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        """Fold another counter into this one (parallel-run merge)."""
        self.value += other.value
        return self

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Counter({self.name}={self.value})"


class LatencyStat:
    """Streaming aggregate of latency samples (count/sum/min/max/mean/std).

    Uses Welford's online algorithm so the variance is numerically stable
    without retaining every sample.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_mean", "_m2")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def record(self, sample: float) -> None:
        if sample < 0:
            raise ValueError(f"negative latency sample for {self.name!r}: {sample}")
        self.count += 1
        self.total += sample
        self.min = min(self.min, sample)
        self.max = max(self.max, sample)
        delta = sample - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (sample - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "LatencyStat") -> "LatencyStat":
        """Fold another aggregate into this one (parallel merge formula).

        Chan et al.'s pairwise Welford combination: count/min/max are exact
        in any merge order; total, mean and M2 reassociate float sums, so
        shard order perturbs at most the last ulps (the property tests pin
        this down).
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self.min = other.min
            self.max = other.max
            self._mean = other._mean
            self._m2 = other._m2
            return self
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / combined
        self._mean = (self._mean * self.count + other._mean * other.count) / combined
        self.count = combined
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"LatencyStat({self.name}: n={self.count}, "
                f"mean={self.mean:.1f}ns)")


class Histogram:
    """Fixed-bucket histogram for latency or size distributions."""

    def __init__(self, name: str, bucket_bounds: Iterable[float]) -> None:
        self.name = name
        self.bounds = sorted(bucket_bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        # One extra bucket catches samples above the last bound.
        self.counts = [0] * (len(self.bounds) + 1)
        self.total_samples = 0

    def record(self, sample: float) -> None:
        self.total_samples += 1
        for index, bound in enumerate(self.bounds):
            if sample <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def fraction_at_or_below(self, bound: float) -> float:
        """Fraction of samples at or below *bound* (must be a bucket bound)."""
        if self.total_samples == 0:
            return 0.0
        cumulative = 0
        for index, bucket_bound in enumerate(self.bounds):
            cumulative += self.counts[index]
            if bucket_bound >= bound:
                break
        return cumulative / self.total_samples

    def as_dict(self) -> Dict[str, int]:
        labels = [f"<={bound:g}" for bound in self.bounds] + ["overflow"]
        return dict(zip(labels, self.counts))

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram into this one; bucket bounds must match.

        Bucket counts are integers, so histogram merges are exact and fully
        associative/commutative regardless of shard order.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: "
                f"bucket bounds differ")
        self.counts = [mine + theirs
                       for mine, theirs in zip(self.counts, other.counts)]
        self.total_samples += other.total_samples
        return self

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total_samples = 0


@dataclass
class StatRegistry:
    """A named collection of counters and latency aggregates."""

    prefix: str = ""
    counters: Dict[str, Counter] = field(default_factory=dict)
    latencies: Dict[str, LatencyStat] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(self._qualify(name))
        return self.counters[name]

    def latency(self, name: str) -> LatencyStat:
        if name not in self.latencies:
            self.latencies[name] = LatencyStat(self._qualify(name))
        return self.latencies[name]

    def histogram(self, name: str, bounds: Iterable[float]) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(self._qualify(name), bounds)
        return self.histograms[name]

    def snapshot(self) -> Dict[str, float]:
        """Flatten all statistics into ``{qualified_name: value}``."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[self._qualify(name)] = counter.value
        for name, stat in self.latencies.items():
            base = self._qualify(name)
            out[f"{base}.count"] = stat.count
            out[f"{base}.mean_ns"] = stat.mean
            out[f"{base}.total_ns"] = stat.total
            out[f"{base}.max_ns"] = stat.max if stat.count else 0.0
        return out

    def merge(self, other: "StatRegistry") -> "StatRegistry":
        """Fold the statistics of *other* into this registry.

        Counters add, latency aggregates combine via the parallel Welford
        merge, histograms add bucket-wise.  Names present only in *other*
        are created here first, so no statistic is lost.  This is the
        aggregation primitive the ``repro.distrib`` shard coordinator
        relies on; ``tests/test_merge_properties.py`` pins the split-
        invariance and merge-order-insensitivity it assumes.
        """
        for name, counter in other.counters.items():
            self.counter(name).merge(counter)
        for name, stat in other.latencies.items():
            self.latency(name).merge(stat)
        for name, histogram in other.histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)
        return self

    def reset(self) -> None:
        for counter in self.counters.values():
            counter.reset()
        for stat in self.latencies.values():
            stat.reset()
        for histogram in self.histograms.values():
            histogram.reset()

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name
