"""A small discrete-event simulation engine.

The library is mostly *trace-driven*: device models compute completion times
analytically from their internal resource-occupancy state.  A handful of
components (the flash channel/die scheduler, the NVMe queue engine, the
power-failure state machine) still benefit from an explicit event loop, which
this module provides.

The engine is deliberately minimal: a priority queue of ``(time, seq,
callback)`` triples, a monotonically advancing clock, and convenience
wrappers for scheduling relative and absolute events.  Determinism is
guaranteed by the sequence number tiebreaker.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimClock:
    """Monotonic simulation clock in nanoseconds."""

    def __init__(self, start_ns: float = 0.0) -> None:
        self._now = float(start_ns)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, time_ns: float) -> None:
        """Move the clock forward to *time_ns*.

        Attempting to move the clock backwards is a programming error and
        raises ``ValueError`` so the bug is caught at the source.
        """
        if time_ns < self._now:
            raise ValueError(
                f"clock cannot move backwards: now={self._now}, target={time_ns}")
        self._now = float(time_ns)

    def advance_by(self, delta_ns: float) -> float:
        """Advance the clock by *delta_ns* and return the new time."""
        if delta_ns < 0:
            raise ValueError(f"negative time delta: {delta_ns}")
        self._now += float(delta_ns)
        return self._now

    def reset(self, start_ns: float = 0.0) -> None:
        self._now = float(start_ns)


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``; the payload callback is excluded from
    comparisons so identical timestamps are broken by insertion order.
    """

    time_ns: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time_ns: float, callback: Callable[[], None],
             name: str = "") -> Event:
        event = Event(time_ns=time_ns, seq=next(self._seq),
                      callback=callback, name=name)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time_ns

    def clear(self) -> None:
        self._heap.clear()


class Simulator:
    """Event loop binding a :class:`SimClock` to an :class:`EventQueue`."""

    def __init__(self, start_ns: float = 0.0) -> None:
        self.clock = SimClock(start_ns)
        self.queue = EventQueue()
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule_at(self, time_ns: float, callback: Callable[[], None],
                    name: str = "") -> Event:
        """Schedule *callback* at an absolute simulation time."""
        if time_ns < self.clock.now:
            raise ValueError(
                f"cannot schedule event in the past: now={self.clock.now}, "
                f"requested={time_ns}")
        return self.queue.push(time_ns, callback, name)

    def schedule_after(self, delay_ns: float, callback: Callable[[], None],
                       name: str = "") -> Event:
        """Schedule *callback* ``delay_ns`` after the current time."""
        if delay_ns < 0:
            raise ValueError(f"negative delay: {delay_ns}")
        return self.queue.push(self.clock.now + delay_ns, callback, name)

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time_ns)
        event.callback()
        self.events_processed += 1
        return True

    def run(self, until_ns: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Stops when the queue drains, when the next event lies beyond
        *until_ns*, or after *max_events* events — whichever comes first.
        Returns the simulation time at which the loop stopped.
        """
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                break
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until_ns is not None and next_time > until_ns:
                self.clock.advance_to(until_ns)
                break
            self.step()
            processed += 1
        return self.clock.now

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        self.queue.clear()
        self.clock.reset()
        self.events_processed = 0
