"""Plain-text reporting helpers.

The benchmark harness prints each figure as an ASCII table so the paper's
rows/series can be compared at a glance without plotting.  These helpers are
dependency-free and deterministic (column order follows insertion order of
the input mappings).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(rows: Mapping[str, Mapping[str, float]],
                 title: str = "", float_format: str = "{:.3f}",
                 row_header: str = "") -> str:
    """Render a nested mapping ``{row: {column: value}}`` as aligned text."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns: List[str] = []
    for row in rows.values():
        for column in row:
            if column not in columns:
                columns.append(column)
    header_cells = [row_header] + columns
    body: List[List[str]] = []
    for name, row in rows.items():
        cells = [str(name)]
        for column in columns:
            value = row.get(column)
            cells.append(float_format.format(value) if value is not None else "-")
        body.append(cells)
    widths = [max(len(line[i]) for line in [header_cells] + body)
              for i in range(len(header_cells))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(cell.ljust(width)
                           for cell, width in zip(header_cells, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for cells in body:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(cells, widths)))
    return "\n".join(lines)


def series_to_rows(series: Mapping[str, Mapping[str, float]]
                   ) -> Dict[str, Dict[str, float]]:
    """Transpose ``{series: {x: y}}`` into ``{x: {series: y}}`` for printing."""
    rows: Dict[str, Dict[str, float]] = {}
    for series_name, points in series.items():
        for x_value, y_value in points.items():
            rows.setdefault(str(x_value), {})[series_name] = y_value
    return rows


def format_series(series: Mapping[str, Mapping[str, float]], title: str = "",
                  float_format: str = "{:.3f}") -> str:
    """Render ``{series: {x: y}}`` with one row per x value."""
    return format_table(series_to_rows(series), title=title,
                        float_format=float_format, row_header="x")
