"""Experiment runner: replay a set of workloads on a set of platforms.

Every benchmark in ``benchmarks/`` and most examples reduce to the same
loop: build scaled traces, build scaled platforms (a fresh platform per run
so device state never leaks between workloads), replay, and collect the
:class:`~repro.platforms.base.RunResult` records.  This module centralises
that loop and offers convenience accessors for the metrics each figure
plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..config import SystemConfig, default_config
from ..platforms.base import RunResult
from ..platforms.registry import create_platform
from ..workloads.registry import (
    ExperimentScale,
    build_trace,
    scale_system_config,
)


@dataclass
class ExperimentResult:
    """All run results of one experiment, indexed by (platform, workload)."""

    scale: ExperimentScale
    results: Dict[tuple, RunResult] = field(default_factory=dict)

    def get(self, platform: str, workload: str) -> RunResult:
        return self.results[(platform, workload)]

    def add(self, platform: str, workload: str, result: RunResult) -> None:
        """Record one run under the given (platform, workload) key.

        The key may differ from ``result.platform`` when a run spec labels a
        parameter sweep (e.g. one key per MoS page size).
        """
        self.results[(platform, workload)] = result

    def merge(self, other: "ExperimentResult") -> "ExperimentResult":
        """Fold the runs of *other* into this experiment (parallel merge).

        Shards produced by independent workers or partial re-runs combine
        into one result; both sides must have been produced under the same
        :class:`~repro.workloads.registry.ExperimentScale`, otherwise the
        merged metrics would not be comparable.
        """
        if other.scale != self.scale:
            raise ValueError(
                f"cannot merge experiments run at different scales: "
                f"{self.scale} vs {other.scale}")
        self.results.update(other.results)
        return self

    def platforms(self) -> List[str]:
        return sorted({platform for platform, _ in self.results})

    def workloads(self) -> List[str]:
        seen: List[str] = []
        for _, workload in self.results:
            if workload not in seen:
                seen.append(workload)
        return seen

    # -- per-figure series -----------------------------------------------------------

    def throughput_series(self, platform: str) -> Dict[str, float]:
        """Operations/s per workload for one platform (Figure 16)."""
        return {workload: result.operations_per_second
                for (name, workload), result in self.results.items()
                if name == platform}

    def speedup_over(self, platform: str, baseline: str) -> Dict[str, float]:
        """Per-workload throughput ratio of *platform* over *baseline*.

        Workloads missing on either side are skipped, so merged shards and
        labelled sweeps (which need not be rectangular) stay comparable.
        """
        out: Dict[str, float] = {}
        for workload in self.workloads():
            if ((platform, workload) not in self.results
                    or (baseline, workload) not in self.results):
                continue
            base = self.get(baseline, workload).operations_per_second
            if base <= 0:
                continue
            out[workload] = (self.get(platform, workload).operations_per_second
                             / base)
        return out

    def mean_speedup(self, platform: str, baseline: str) -> float:
        """Geometric-mean-free average speedup used for headline claims."""
        ratios = list(self.speedup_over(platform, baseline).values())
        if not ratios:
            return 0.0
        return sum(ratios) / len(ratios)

    def energy_ratio(self, platform: str, baseline: str) -> float:
        """Average total-energy ratio of *platform* over *baseline* (Figure 19)."""
        ratios: List[float] = []
        for workload in self.workloads():
            if ((platform, workload) not in self.results
                    or (baseline, workload) not in self.results):
                continue
            base = self.get(baseline, workload).energy.total_nj
            if base <= 0:
                continue
            ratios.append(self.get(platform, workload).energy.total_nj / base)
        if not ratios:
            return 0.0
        return sum(ratios) / len(ratios)


class ExperimentRunner:
    """Builds scaled platforms/traces and replays every combination.

    ``scaled_config`` bypasses the scaling step entirely and installs an
    already-scaled configuration verbatim.  Distributed shard workers use
    it: a shard manifest freezes the planner's *scaled* config as JSON, and
    re-scaling it on the worker would shrink capacities twice.
    """

    def __init__(self, scale: Optional[ExperimentScale] = None,
                 base_config: Optional[SystemConfig] = None,
                 scaled_config: Optional[SystemConfig] = None) -> None:
        self.scale = scale if scale is not None else ExperimentScale()
        if scaled_config is not None:
            if base_config is not None:
                raise ValueError(
                    "pass either base_config (to be scaled) or scaled_config "
                    "(used verbatim), not both")
            self.config = scaled_config
        else:
            base = base_config if base_config is not None else default_config()
            self.config = scale_system_config(base, self.scale)
        self._trace_cache: Dict[tuple, object] = {}

    def trace(self, workload: str, dataset_bytes_override: Optional[int] = None):
        """Build (and memoise) the trace for one workload."""
        key = (workload, dataset_bytes_override)
        if key not in self._trace_cache:
            self._trace_cache[key] = build_trace(
                workload, self.scale,
                dataset_bytes_override=dataset_bytes_override)
        return self._trace_cache[key]

    def run_one(self, platform_name: str, workload: str,
                dataset_bytes_override: Optional[int] = None) -> RunResult:
        """Replay one workload on a freshly built platform."""
        platform = create_platform(platform_name, self.config)
        trace = self.trace(workload, dataset_bytes_override)
        return platform.run(trace)

    def run_matrix(self, platform_names: Iterable[str],
                   workloads: Iterable[str]) -> ExperimentResult:
        """Replay every workload on every platform."""
        experiment = ExperimentResult(scale=self.scale)
        for workload in workloads:
            for platform_name in platform_names:
                result = self.run_one(platform_name, workload)
                experiment.results[(platform_name, workload)] = result
        return experiment
