"""Analysis and reporting: turning run results into the paper's tables/figures."""

from .breakdown import (
    execution_breakdown_table,
    memory_delay_table,
    normalised_energy_table,
)
from .reporting import format_table, series_to_rows
from .experiments import ExperimentRunner, ExperimentResult

__all__ = [
    "execution_breakdown_table",
    "memory_delay_table",
    "normalised_energy_table",
    "format_table",
    "series_to_rows",
    "ExperimentRunner",
    "ExperimentResult",
]
