"""Breakdown tables for Figures 17, 18 and 19.

Each helper turns a collection of :class:`~repro.platforms.base.RunResult`
records into the normalised rows the corresponding figure plots: execution
time split into app/OS/SSD, memory delay split into NVDIMM/DMA/SSD, and
energy split into CPU/NVDIMM/internal-DRAM/Z-NAND — all normalised to a
baseline platform the way the paper normalises to ``mmap``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from ..platforms.base import RunResult


def execution_breakdown_table(results: Mapping[str, RunResult],
                              baseline: str = "mmap") -> Dict[str, Dict[str, float]]:
    """Figure 17 rows: execution time per platform, normalised to *baseline*.

    *results* maps platform name to the run result of one workload.  Each row
    contains the app/OS/SSD components divided by the baseline's total time,
    so the baseline row sums to 1.0.
    """
    if baseline not in results:
        raise ValueError(f"baseline {baseline!r} missing from results")
    denominator = results[baseline].total_ns
    if denominator <= 0:
        raise ValueError("baseline total time must be positive")
    table: Dict[str, Dict[str, float]] = {}
    for platform, result in results.items():
        table[platform] = {
            "app": result.app_ns / denominator,
            "os": result.os_ns / denominator,
            "ssd": result.ssd_ns / denominator,
            "total": result.total_ns / denominator,
        }
    return table


def memory_delay_table(results: Mapping[str, RunResult],
                       baseline: str | None = None) -> Dict[str, Dict[str, float]]:
    """Figure 18 rows: NVDIMM/DMA/SSD memory-delay shares per platform.

    When *baseline* is given the components are normalised to the baseline's
    total memory delay (the figure normalises to ``hams-LP``); otherwise each
    platform is normalised to its own total.
    """
    table: Dict[str, Dict[str, float]] = {}
    denominator = None
    if baseline is not None:
        if baseline not in results:
            raise ValueError(f"baseline {baseline!r} missing from results")
        denominator = results[baseline].memory_delay.get("total_ns", 0.0)
    for platform, result in results.items():
        delay = result.memory_delay
        total = delay.get("total_ns", 0.0)
        divisor = denominator if denominator else total
        if divisor <= 0:
            table[platform] = {"nvdimm": 0.0, "dma": 0.0, "ssd": 0.0, "total": 0.0}
            continue
        table[platform] = {
            "nvdimm": delay.get("nvdimm_ns", 0.0) / divisor,
            "dma": delay.get("dma_ns", 0.0) / divisor,
            "ssd": delay.get("ssd_ns", 0.0) / divisor,
            "total": total / divisor,
        }
    return table


def normalised_energy_table(results: Mapping[str, RunResult],
                            baseline: str = "mmap") -> Dict[str, Dict[str, float]]:
    """Figure 19 rows: per-component energy normalised to the baseline total."""
    if baseline not in results:
        raise ValueError(f"baseline {baseline!r} missing from results")
    reference = results[baseline].energy
    table: Dict[str, Dict[str, float]] = {}
    for platform, result in results.items():
        table[platform] = result.energy.normalised_to(reference)
    return table


def average_breakdown(tables: Iterable[Mapping[str, Mapping[str, float]]]
                      ) -> Dict[str, Dict[str, float]]:
    """Average several per-workload breakdown tables component-wise."""
    accumulator: Dict[str, Dict[str, float]] = {}
    counts: Dict[str, int] = {}
    for table in tables:
        for platform, row in table.items():
            target = accumulator.setdefault(platform, {})
            for key, value in row.items():
                target[key] = target.get(key, 0.0) + value
            counts[platform] = counts.get(platform, 0) + 1
    for platform, row in accumulator.items():
        for key in row:
            row[key] /= counts[platform]
    return accumulator
