"""Shard worker: execute one manifest's specs and emit a shard artifact.

A worker is just a :class:`~repro.runner.parallel.ParallelExperimentRunner`
pointed at the shard's run cache: it rebuilds the frozen scale/config from
the manifest, verifies that its reconstruction content-addresses to exactly
the cache keys the planner computed (any drift — a changed default, a
different library version — fails loudly *before* any cycles are burned),
replays the shard's specs over its local process pool, and publishes a
``repro.shard-result/1`` payload.

Resume semantics come entirely from the run cache: the runner streams every
finished run into the cache as it completes, so a worker killed mid-shard
and restarted (on the same host or any host sharing the spool) loads the
finished runs back as cache hits and only executes the remainder.  The
shard result is assembled from the full, ordered spec list either way — a
resumed shard can neither drop nor duplicate runs.

Progress is observable while a shard runs: :func:`work_spool` (and the
``repro shard work`` CLI on top of it) appends one ``repro.events/1``
record per finished run to the spool's ``progress/`` directory, which is
what lets a coordinating :class:`~repro.exec.ExperimentHandle` on another
host — or ``repro shard status --watch`` — tail remote execution run by
run instead of waiting for the shard artifact.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..platforms.base import RunResult
from ..runner.artifacts import (
    config_from_dict,
    config_hash_of,
    run_result_to_dict,
    scale_from_dict,
)
from ..runner.events import append_event, run_event
from ..runner.parallel import ParallelExperimentRunner
from ..runner.specs import RunSpec
from .manifest import (
    SHARD_RESULT_SCHEMA,
    load_manifest,
    manifest_specs,
    validate_manifest,
)
from .spool import ClaimedShard, ShardSpool, default_owner, shard_file_name

#: Signature of the per-run streaming hook: (manifest spec entry, spec,
#: result, cache_hit).  The entry carries the run's global ``index`` and
#: content-addressed ``key``.
OnRun = Callable[[Dict[str, Any], RunSpec, RunResult, bool], None]


def shard_runner(manifest: Dict[str, Any], *,
                 cache_dir: Optional[Path] = None,
                 workers: Optional[int] = None,
                 force: bool = False
                 ) -> Tuple[ParallelExperimentRunner, List[RunSpec]]:
    """Validate *manifest* and build the runner + specs that execute it.

    This is the planner/worker drift check: the reconstructed config must
    hash to the manifest's ``config_hash`` and every rebuilt spec must
    content-address to the planner's ``key``, or the worker refuses the
    shard before burning any cycles.  Both :func:`execute_shard` and the
    streaming :class:`~repro.exec.ShardedExecutor` start here, so the two
    paths can never diverge in what they agree to run.
    """
    validate_manifest(manifest)
    scale = scale_from_dict(manifest["scale"])
    config = config_from_dict(manifest["config"])
    config_hash = config_hash_of(config)
    if config_hash != manifest["config_hash"]:
        raise ValueError(
            f"shard {manifest['shard_index']}: reconstructed config hashes "
            f"to {config_hash} but the manifest was planned against "
            f"{manifest['config_hash']}")

    runner = ParallelExperimentRunner(
        scale=scale, scaled_config=config, workers=workers,
        cache_dir=cache_dir, force=force)
    specs = manifest_specs(manifest)
    for entry, spec in zip(manifest["specs"], specs):
        key = runner.cache_key(spec)
        if key != entry["key"]:
            raise ValueError(
                f"shard {manifest['shard_index']}: spec #{entry['index']} "
                f"({spec.platform}/{spec.workload}) content-addresses to "
                f"{key[:12]}..., manifest says {entry['key'][:12]}... — "
                f"the worker's library diverges from the planner's")
    return runner, specs


def shard_result_payload(manifest: Dict[str, Any],
                         runner: ParallelExperimentRunner,
                         outcomes: Sequence[Tuple[RunResult, bool]],
                         host: Optional[str] = None) -> Dict[str, Any]:
    """Assemble the ``repro.shard-result/1`` payload from ordered outcomes.

    *outcomes* pairs each run's result with its cache-hit flag, in manifest
    spec order.  The per-run ``cache_hit`` field is carried so downstream
    consumers (the streaming handle filling in a remote shard) keep exact
    flags without re-deriving them.
    """
    runs: List[Dict[str, Any]] = []
    specs = manifest_specs(manifest)
    for entry, spec, (result, cache_hit) in zip(manifest["specs"], specs,
                                                outcomes):
        platform_key, workload_key = spec.result_key
        runs.append({
            "index": entry["index"],
            "key": entry["key"],
            "platform_key": platform_key,
            "workload_key": workload_key,
            "cache_hit": cache_hit,
            "operations_per_second": result.operations_per_second,
            "result": run_result_to_dict(result),
        })
    return {
        "schema": SHARD_RESULT_SCHEMA,
        "experiment": manifest["experiment"],
        "experiment_id": manifest["experiment_id"],
        "shard_index": manifest["shard_index"],
        "shard_count": manifest["shard_count"],
        "baseline": manifest.get("baseline"),
        "scale": manifest["scale"],
        "config": manifest["config"],
        "config_hash": manifest["config_hash"],
        "host": host or default_owner(),
        "cache_hits": runner.cache.hits,
        "cache_misses": runner.cache.misses,
        "runs": runs,
    }


def execute_shard(manifest: Dict[str, Any], *,
                  cache_dir: Optional[Path] = None,
                  workers: Optional[int] = None,
                  force: bool = False,
                  host: Optional[str] = None,
                  on_run: Optional[OnRun] = None) -> Dict[str, Any]:
    """Run one shard manifest to completion and return its result payload.

    *cache_dir* should be shared by all workers of one plan (the spool's
    ``cache/`` by default when going through :func:`work_spool`); it is what
    makes re-execution after a crash resume rather than recompute.  *on_run*
    fires once per finished run, in completion order — the hook behind
    per-run spool progress records.
    """
    runner, specs = shard_runner(manifest, cache_dir=cache_dir,
                                 workers=workers, force=force)
    outcomes: List[Optional[Tuple[RunResult, bool]]] = [None] * len(specs)
    for position, result, cache_hit, _key in runner.iter_specs(specs):
        outcomes[position] = (result, cache_hit)
        if on_run is not None:
            on_run(manifest["specs"][position], specs[position], result,
                   cache_hit)
    return shard_result_payload(
        manifest, runner,
        outcomes,  # type: ignore[arg-type]  # iter_specs covered every spec
        host=host)


def progress_on_run(spool: ShardSpool, shard_name: str,
                    owner: Optional[str] = None,
                    shard_index: Optional[int] = None) -> OnRun:
    """An *on_run* hook appending per-run records to the spool's progress.

    Each record is one ``repro.events/1`` line carrying the run's global
    index, its content-addressed key (so a remote tail can load the full
    result from the shared cache) and the cache-hit flag.  One shard has
    one writer, so the append never interleaves.
    """
    path = spool.progress_path(shard_name)

    def on_run(entry: Dict[str, Any], spec: RunSpec, result: RunResult,
               cache_hit: bool) -> None:
        append_event(path, run_event(
            entry["index"], spec, result, cache_hit, key=entry["key"],
            shard_index=shard_index, owner=owner))

    return on_run


def execute_shard_file(path: Path, spool: ShardSpool, *,
                       workers: Optional[int] = None,
                       force: bool = False,
                       host: Optional[str] = None) -> Path:
    """Execute one explicit manifest (or claim) file into the spool.

    This is the recovery path: pointing a worker at an orphaned
    ``claims/shard-NNNN.json`` re-runs that shard — resuming from the shared
    cache — and publishes its result; the stale claim file is cleaned up if
    the executed manifest was it.
    """
    path = Path(path)
    manifest = load_manifest(path)
    spool.prepare()
    shard_name = shard_file_name(manifest["experiment_id"],
                                 manifest["shard_index"])
    result = execute_shard(manifest, cache_dir=spool.cache_dir,
                           workers=workers, force=force, host=host,
                           on_run=progress_on_run(
                               spool, shard_name, host or default_owner(),
                               shard_index=manifest["shard_index"]))
    claim = ClaimedShard(path=spool.claims_dir / shard_name,
                         payload=manifest)
    published = spool.finish(claim, result)
    # Resolve before comparing: the manifest may have been named relative
    # to the cwd while the spool was given absolute (or vice versa).
    resolved = path.resolve()
    if resolved != claim.path.resolve() and resolved.parent in (
            spool.pending_dir.resolve(), spool.claims_dir.resolve()):
        path.unlink(missing_ok=True)
    return published


def work_spool(spool: ShardSpool, *,
               owner: Optional[str] = None,
               workers: Optional[int] = None,
               force: bool = False,
               max_shards: Optional[int] = None,
               cache_dir: Optional[Path] = None,
               experiment_id: Optional[str] = None) -> List[Path]:
    """Claim-and-execute pending shards until the spool runs dry.

    Returns the shard-result paths this worker published.  On a failure the
    claimed shard is released back to ``pending/`` before the exception
    propagates, so other workers (or a retry) can pick it up.  *cache_dir*
    overrides the spool's shared ``cache/`` — a session that already owns a
    content-addressed cache keeps hitting (and feeding) it when sharded.
    *experiment_id* restricts this worker to one plan's shards.  Every
    finished run is additionally appended to the spool's ``progress/``
    records, so remote observers see the shard advance run by run.
    """
    owner = owner or default_owner()
    published: List[Path] = []
    while max_shards is None or len(published) < max_shards:
        claim = spool.claim_next(owner, experiment_id=experiment_id)
        if claim is None:
            break
        try:
            result = execute_shard(
                claim.payload,
                cache_dir=cache_dir or spool.cache_dir,
                workers=workers, force=force, host=owner,
                on_run=progress_on_run(
                    spool, claim.path.name, owner,
                    shard_index=claim.shard_index))
        except BaseException:
            spool.release(claim)
            raise
        published.append(spool.finish(claim, result))
    return published
