"""Shard worker: execute one manifest's specs and emit a shard artifact.

A worker is just a :class:`~repro.runner.parallel.ParallelExperimentRunner`
pointed at the shard's run cache: it rebuilds the frozen scale/config from
the manifest, verifies that its reconstruction content-addresses to exactly
the cache keys the planner computed (any drift — a changed default, a
different library version — fails loudly *before* any cycles are burned),
replays the shard's specs over its local process pool, and publishes a
``repro.shard-result/1`` payload.

Resume semantics come entirely from the run cache: the runner streams every
finished run into the cache as it completes, so a worker killed mid-shard
and restarted (on the same host or any host sharing the spool) loads the
finished runs back as cache hits and only executes the remainder.  The
shard result is assembled from the full, ordered spec list either way — a
resumed shard can neither drop nor duplicate runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional

from ..runner.artifacts import (
    config_from_dict,
    config_hash_of,
    run_result_to_dict,
    scale_from_dict,
)
from ..runner.parallel import ParallelExperimentRunner
from .manifest import (
    SHARD_RESULT_SCHEMA,
    load_manifest,
    manifest_specs,
    validate_manifest,
)
from .spool import ClaimedShard, ShardSpool, default_owner, shard_file_name


def execute_shard(manifest: Dict[str, Any], *,
                  cache_dir: Optional[Path] = None,
                  workers: Optional[int] = None,
                  force: bool = False,
                  host: Optional[str] = None) -> Dict[str, Any]:
    """Run one shard manifest to completion and return its result payload.

    *cache_dir* should be shared by all workers of one plan (the spool's
    ``cache/`` by default when going through :func:`work_spool`); it is what
    makes re-execution after a crash resume rather than recompute.
    """
    validate_manifest(manifest)
    scale = scale_from_dict(manifest["scale"])
    config = config_from_dict(manifest["config"])
    config_hash = config_hash_of(config)
    if config_hash != manifest["config_hash"]:
        raise ValueError(
            f"shard {manifest['shard_index']}: reconstructed config hashes "
            f"to {config_hash} but the manifest was planned against "
            f"{manifest['config_hash']}")

    runner = ParallelExperimentRunner(
        scale=scale, scaled_config=config, workers=workers,
        cache_dir=cache_dir, force=force)
    specs = manifest_specs(manifest)
    for entry, spec in zip(manifest["specs"], specs):
        key = runner.cache_key(spec)
        if key != entry["key"]:
            raise ValueError(
                f"shard {manifest['shard_index']}: spec #{entry['index']} "
                f"({spec.platform}/{spec.workload}) content-addresses to "
                f"{key[:12]}..., manifest says {entry['key'][:12]}... — "
                f"the worker's library diverges from the planner's")

    results = runner.run_specs(specs)
    runs: List[Dict[str, Any]] = []
    for entry, spec, result in zip(manifest["specs"], specs, results):
        platform_key, workload_key = spec.result_key
        runs.append({
            "index": entry["index"],
            "key": entry["key"],
            "platform_key": platform_key,
            "workload_key": workload_key,
            "operations_per_second": result.operations_per_second,
            "result": run_result_to_dict(result),
        })
    return {
        "schema": SHARD_RESULT_SCHEMA,
        "experiment": manifest["experiment"],
        "experiment_id": manifest["experiment_id"],
        "shard_index": manifest["shard_index"],
        "shard_count": manifest["shard_count"],
        "baseline": manifest.get("baseline"),
        "scale": manifest["scale"],
        "config": manifest["config"],
        "config_hash": manifest["config_hash"],
        "host": host or default_owner(),
        "cache_hits": runner.cache.hits,
        "cache_misses": runner.cache.misses,
        "runs": runs,
    }


def execute_shard_file(path: Path, spool: ShardSpool, *,
                       workers: Optional[int] = None,
                       force: bool = False,
                       host: Optional[str] = None) -> Path:
    """Execute one explicit manifest (or claim) file into the spool.

    This is the recovery path: pointing a worker at an orphaned
    ``claims/shard-NNNN.json`` re-runs that shard — resuming from the shared
    cache — and publishes its result; the stale claim file is cleaned up if
    the executed manifest was it.
    """
    path = Path(path)
    manifest = load_manifest(path)
    result = execute_shard(manifest, cache_dir=spool.prepare().cache_dir,
                           workers=workers, force=force, host=host)
    claim = ClaimedShard(
        path=spool.claims_dir / shard_file_name(manifest["experiment_id"],
                                                manifest["shard_index"]),
        payload=manifest)
    published = spool.finish(claim, result)
    # Resolve before comparing: the manifest may have been named relative
    # to the cwd while the spool was given absolute (or vice versa).
    resolved = path.resolve()
    if resolved != claim.path.resolve() and resolved.parent in (
            spool.pending_dir.resolve(), spool.claims_dir.resolve()):
        path.unlink(missing_ok=True)
    return published


def work_spool(spool: ShardSpool, *,
               owner: Optional[str] = None,
               workers: Optional[int] = None,
               force: bool = False,
               max_shards: Optional[int] = None,
               cache_dir: Optional[Path] = None,
               experiment_id: Optional[str] = None) -> List[Path]:
    """Claim-and-execute pending shards until the spool runs dry.

    Returns the shard-result paths this worker published.  On a failure the
    claimed shard is released back to ``pending/`` before the exception
    propagates, so other workers (or a retry) can pick it up.  *cache_dir*
    overrides the spool's shared ``cache/`` — a session that already owns a
    content-addressed cache keeps hitting (and feeding) it when sharded.
    *experiment_id* restricts this worker to one plan's shards.
    """
    owner = owner or default_owner()
    published: List[Path] = []
    while max_shards is None or len(published) < max_shards:
        claim = spool.claim_next(owner, experiment_id=experiment_id)
        if claim is None:
            break
        try:
            result = execute_shard(claim.payload,
                                   cache_dir=cache_dir or spool.cache_dir,
                                   workers=workers, force=force, host=owner)
        except BaseException:
            spool.release(claim)
            raise
        published.append(spool.finish(claim, result))
    return published
