"""repro.distrib: sharded multi-host experiment execution.

The distributed tier scales the (platform x workload x config-override)
matrix past one host without adding a single dependency or network service:

* :func:`~repro.distrib.manifest.plan_shards` deterministically partitions
  a spec list into N ``repro.shard/1`` manifests,
* :class:`~repro.distrib.spool.ShardSpool` coordinates any number of
  workers over a shared directory with atomic claim-by-rename,
* :func:`~repro.distrib.worker.execute_shard` /
  :func:`~repro.distrib.worker.work_spool` replay shards over the local
  process pool, resuming crashed shards from the content-addressed run
  cache,
* :func:`~repro.distrib.coordinator.merge_shards` validates provenance and
  folds the shards into an :class:`~repro.analysis.experiments
  .ExperimentResult` bit-identical to an unsharded run.

``python -m repro shard plan|work|merge|status`` is the CLI skin;
:func:`repro.api.run_sharded` and ``Session(..., shards=N)`` are the
library skin.  :func:`run_sharded_specs` below is the single-process
convenience that drives all three stages in order — the degenerate
"cluster of one" every test and the facade build on.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from ..analysis.experiments import ExperimentResult
from ..config import SystemConfig
from ..runner.specs import RunSpec
from ..workloads.registry import ExperimentScale
from .coordinator import MergedShards, load_shard_results, merge_shards
from .manifest import (
    BALANCE_MODES,
    SHARD_MANIFEST_SCHEMA,
    SHARD_RESULT_SCHEMA,
    estimate_spec_cost,
    experiment_id_of,
    experiment_tag,
    load_manifest,
    manifest_specs,
    partition_bounds,
    partition_bounds_by_cost,
    plan_shards,
    validate_manifest,
)
from .spool import (
    ClaimedShard,
    ShardSpool,
    SpoolStatus,
    default_owner,
    shard_file_name,
    shard_label,
)
from .worker import (
    execute_shard,
    execute_shard_file,
    progress_on_run,
    shard_result_payload,
    shard_runner,
    work_spool,
)

__all__ = [
    "BALANCE_MODES",
    "SHARD_MANIFEST_SCHEMA",
    "SHARD_RESULT_SCHEMA",
    "ClaimedShard",
    "MergedShards",
    "ShardSpool",
    "SpoolStatus",
    "default_owner",
    "estimate_spec_cost",
    "execute_shard",
    "execute_shard_file",
    "experiment_id_of",
    "experiment_tag",
    "load_manifest",
    "load_shard_results",
    "manifest_specs",
    "merge_shards",
    "partition_bounds",
    "partition_bounds_by_cost",
    "plan_shards",
    "progress_on_run",
    "run_sharded_specs",
    "shard_file_name",
    "shard_label",
    "shard_result_payload",
    "shard_runner",
    "validate_manifest",
    "work_spool",
]


def run_sharded_specs(name: str, specs: Sequence[RunSpec],
                      config: SystemConfig, scale: ExperimentScale,
                      shards: int, *,
                      spool_dir: Optional[Path] = None,
                      workers: Optional[int] = None,
                      force: bool = False,
                      cache_dir: Optional[Path] = None,
                      wait_timeout: Optional[float] = None
                      ) -> ExperimentResult:
    """Plan, execute and merge *specs* across *shards* in this process.

    With a *spool_dir* the full multi-host protocol runs against it —
    claiming, resuming and merging only this plan's shards, so a spool may
    be reused across experiments — and its artifacts stay behind for
    inspection or for additional workers on other hosts.  Shards claimed
    by such helpers are waited for (and re-claimed if released after a
    failure) rather than merged around, so the merge always sees the full
    shard set.  Without a spool the shards execute directly, with no spool
    files at all and no run cache unless *cache_dir* supplies a persistent
    one (an ephemeral cache would cost serialisation without ever enabling
    a resume).  Either way the returned result is bit-identical to
    ``ParallelExperimentRunner.collect`` on the same specs.
    """
    manifests = plan_shards(name, specs, config, scale, shards)
    experiment_id = manifests[0]["experiment_id"]
    if spool_dir is None:
        results = [execute_shard(manifest, cache_dir=cache_dir,
                                 workers=workers, force=force)
                   for manifest in manifests]
    else:
        spool = ShardSpool(spool_dir).prepare()
        if force:
            # force's contract is "re-execute everything": published shard
            # results of this plan would otherwise short-circuit the
            # re-queue (add_manifests skips done shards).  Limitation:
            # force cannot reach a shard currently claimed by a worker on
            # another host — that worker runs with its own flags and its
            # result is merged as published.  Cross-host force means
            # restarting those workers with --force too.
            for manifest in manifests:
                (spool.results_dir / shard_file_name(
                    experiment_id, manifest["shard_index"])
                 ).unlink(missing_ok=True)
        spool.add_manifests(manifests)
        expected = sorted(shard_file_name(experiment_id,
                                          manifest["shard_index"])
                          for manifest in manifests)
        started = last_notice = time.monotonic()
        poll = 0.05
        first_invisible: Optional[float] = None
        while True:
            work_spool(spool, workers=workers, force=force,
                       cache_dir=cache_dir, experiment_id=experiment_id)
            # Done is judged solely by published results — renames bounce
            # shards between pending/ and claims/, so directory scans can
            # transiently miss a live shard, but a result file only ever
            # appears.
            in_flight = [shard for shard in expected
                         if not (spool.results_dir / shard).exists()]
            if not in_flight:
                break
            # Shards claimed by workers on other hosts: wait for their
            # results (or for a failed claim to return to pending, which
            # the next work_spool pass picks up).  A claim orphaned by a
            # dead worker never completes, so say what is being waited on
            # and honour *wait_timeout* instead of spinning silently.  The
            # poll backs off to 1 s so a long foreign shard does not keep
            # hammering an NFS spool with directory scans.
            visible = spool.outstanding(experiment_id)
            now = time.monotonic()
            if visible:
                first_invisible = None
            else:
                # Seen in neither directory: either the shard files are
                # gone without results (deleted claim, wiped spool) or a
                # remote host's rename is hidden by filesystem caching
                # (NFS negative-dentry caches last seconds).  Only declare
                # the shards lost after a sustained wall-clock absence,
                # then let merge_shards name exactly which are missing.
                if first_invisible is None:
                    first_invisible = now
                elif now - first_invisible >= 10.0:
                    break
            if wait_timeout is not None and now - started >= wait_timeout:
                raise TimeoutError(
                    f"{name}: still waiting on shard(s) {in_flight} after "
                    f"{now - started:.0f}s; if their worker died, recover "
                    f"with `repro shard work --spool {spool.root} "
                    f"{spool.claims_dir}/<shard>.json` or "
                    f"ShardSpool.release")
            if now - last_notice >= 5.0:
                last_notice = now
                print(f"{name}: waiting on shard(s) claimed elsewhere: "
                      f"{', '.join(in_flight)}", file=sys.stderr)
            time.sleep(poll)
            poll = min(poll * 2, 1.0)
        results = spool.load_results(experiment_id)
    return merge_shards(results).result
