"""Dependency-free multi-host coordination: a spool directory of shards.

There is no coordinator service.  A **spool** is a plain directory — local
disk for one machine, NFS (or any shared filesystem with atomic same-
directory rename) for a fleet — with one subdirectory per shard state:

* ``pending/shard-<plan>-NNNN.json`` — manifests written by ``repro shard
  plan`` (``<plan>`` is a short experiment-id tag, so several experiments
  can share one spool without name collisions);
* ``claims/shard-<plan>-NNNN.json`` — a manifest a worker has claimed.  Claiming
  is a bare ``os.replace`` from ``pending/`` to ``claims/``: rename is
  atomic, so exactly one of any number of racing workers wins a shard and
  the losers simply move on to the next pending file.  After winning, the
  worker rewrites its claim file (atomically) with an embedded ``claim``
  record naming the owner, which is how ``repro shard status`` reports who
  is running what;
* ``results/shard-<plan>-NNNN.json`` — the shard artifact
  (``repro.shard-result/1``) the worker emits on completion, after which
  the claim file is removed;
* ``cache/`` — the default content-addressed run cache shared by every
  worker of this spool, which is what makes a killed-and-restarted worker
  resume instead of recompute;
* ``progress/shard-<plan>-NNNN.jsonl`` — per-run ``repro.events/1``
  records the shard's worker appends as each run finishes (one writer per
  shard, so appends never interleave).  ``repro shard status --watch`` and
  a coordinating :class:`~repro.exec.ExperimentHandle` tail these to watch
  remote execution run by run; the records carry the run-cache key, so the
  full result can be loaded from ``cache/`` before the shard artifact even
  exists.  Progress files are advisory — resumed shards append duplicate
  indices, and readers dedupe — the shard artifact stays the source of
  truth.

A shard whose claim file exists but whose result does not is *running* — or
orphaned by a dead worker.  Recovery is explicit and safe:
``repro shard work --spool DIR claims/shard-<plan>-NNNN.json`` re-executes
the claimed shard (resuming from the cache), or :meth:`ShardSpool.release`
returns it to ``pending/``.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..runner.artifacts import atomic_write_json
from .manifest import (
    SHARD_RESULT_SCHEMA,
    experiment_tag,
    validate_manifest,
)


def default_owner() -> str:
    """Worker identity recorded in claims and shard results: host:pid."""
    return f"{socket.gethostname()}:{os.getpid()}"


def shard_file_name(experiment_id: str, shard_index: int) -> str:
    """Shard file name, unique *across plans* sharing one spool.

    The experiment-id tag keeps a reused spool safe: planning a second
    experiment into the same directory can never overwrite (or be confused
    with) the first one's manifests or results.
    """
    return f"shard-{experiment_tag(experiment_id)}-{shard_index:04d}.json"


def shard_label(payload: Dict[str, Any]) -> str:
    """Human-readable shard identity used by ``repro shard status``.

    The experiment tag is part of the label because experiment *names*
    collide across plans (every ad-hoc plan is called ``custom``); without
    it, two same-name plans sharing a spool would alias in status output.
    """
    return (f"{payload['experiment']}#"
            f"{experiment_tag(payload['experiment_id'])}"
            f":{payload['shard_index']:04d}")


@dataclass(frozen=True)
class ClaimedShard:
    """One shard a worker owns: the claim file path and its manifest."""

    path: Path
    payload: Dict[str, Any]

    @property
    def shard_index(self) -> int:
        return self.payload["shard_index"]


@dataclass
class SpoolStatus:
    """Snapshot of a spool directory for ``repro shard status``.

    Shards are keyed by their :func:`shard_label` (``experiment:index``),
    so a spool holding several plans reports each shard unambiguously.
    """

    pending: List[str] = field(default_factory=list)
    running: Dict[str, str] = field(default_factory=dict)
    done: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.pending) + len(self.running) + len(self.done)

    @property
    def complete(self) -> bool:
        return not self.pending and not self.running and bool(self.done)


class ShardSpool:
    """One spool directory; every method is safe under concurrent workers."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.pending_dir = self.root / "pending"
        self.claims_dir = self.root / "claims"
        self.results_dir = self.root / "results"
        self.cache_dir = self.root / "cache"
        self.progress_dir = self.root / "progress"

    def prepare(self) -> "ShardSpool":
        for directory in (self.pending_dir, self.claims_dir,
                          self.results_dir, self.cache_dir,
                          self.progress_dir):
            directory.mkdir(parents=True, exist_ok=True)
        return self

    def progress_path(self, shard_name: str) -> Path:
        """Per-run progress record file for one shard file name."""
        return self.progress_dir / (Path(shard_name).stem + ".jsonl")

    # -- planning ------------------------------------------------------------------

    def add_manifests(self, payloads: List[Dict[str, Any]]) -> List[Path]:
        """Write manifests into ``pending/`` (atomically, one per shard).

        Shards of the same plan that are already claimed or finished are
        skipped, so re-planning into a live or partially-done spool resumes
        instead of re-queueing work some worker already owns.  (The check
        and the write are not one atomic step — a shard claimed in between
        can be re-queued and executed twice.  That costs a shard of
        compute in a rare race, never correctness: execution is
        deterministic, results are content-equal, and the last atomic
        rename wins.  Closing the window entirely would need a lock
        service, which this tier deliberately does not have.)
        """
        self.prepare()
        paths = []
        for payload in payloads:
            validate_manifest(payload)
            name = shard_file_name(payload["experiment_id"],
                                   payload["shard_index"])
            if (self.claims_dir / name).exists() or \
                    (self.results_dir / name).exists():
                continue
            paths.append(atomic_write_json(self.pending_dir / name, payload))
        return paths

    # -- claiming ------------------------------------------------------------------

    def claim_next(self, owner: Optional[str] = None,
                   experiment_id: Optional[str] = None
                   ) -> Optional[ClaimedShard]:
        """Atomically claim one pending shard; ``None`` when none are left.

        Any number of workers may call this concurrently: ``os.replace`` of
        the manifest from ``pending/`` into ``claims/`` either succeeds for
        exactly one caller or raises ``FileNotFoundError`` for the ones that
        lost the race, which simply try the next pending shard.

        With *experiment_id*, shards of other plans sharing the spool are
        left alone — selection happens on the file name's experiment tag,
        so a foreign manifest is never even transiently moved out of
        ``pending/`` (which could make that plan's own workers see an
        empty spool and stop early).
        """
        owner = owner or default_owner()
        if experiment_id is None:
            pattern = "shard-*.json"
        else:
            pattern = f"shard-{experiment_tag(experiment_id)}-*.json"
        for path in sorted(self.pending_dir.glob(pattern)):
            # Validate BEFORE claiming: a manifest that fails to parse
            # (foreign schema version, hand-edited) stays in pending/ where
            # the operator can see it, instead of becoming an orphaned
            # claim that no worker owns and every merge waits on.
            try:
                payload = validate_manifest(
                    json.loads(path.read_text(encoding="utf-8")))
            except FileNotFoundError:
                continue  # another worker won this shard
            except (json.JSONDecodeError, ValueError, KeyError, TypeError):
                # Malformed in any way (bad JSON, missing fields,
                # wrong-typed fields): leave for the operator rather than
                # wedging every worker on one bad file.
                continue
            if experiment_id is not None and \
                    payload["experiment_id"] != experiment_id:
                continue  # tag collision: another plan's shard
            target = self.claims_dir / path.name
            try:
                os.replace(path, target)
            except FileNotFoundError:
                continue  # another worker won this shard
            # The rename made us the sole owner (and a plan's manifest
            # bytes never change once written), so annotating the claim
            # file in place is race-free.
            payload["claim"] = {"owner": owner, "claimed_unix": time.time()}
            atomic_write_json(target, payload)
            return ClaimedShard(path=target, payload=payload)
        return None

    def release(self, claim: ClaimedShard) -> Path:
        """Return a claimed shard to ``pending/`` (e.g. after a failure).

        The hand-back is the same single atomic rename claiming uses, in
        reverse — never a copy-then-delete, whose window would let a racing
        ``claim_next`` claim the copy and then lose its claim file to the
        delete.  The claim annotation is stripped in place first (safe: the
        releasing worker still owns the file while it sits in ``claims/``).
        """
        payload = dict(claim.payload)
        payload.pop("claim", None)
        atomic_write_json(claim.path, payload)
        path = self.pending_dir / claim.path.name
        os.replace(claim.path, path)
        return path

    def finish(self, claim: ClaimedShard,
               result_payload: Dict[str, Any]) -> Path:
        """Publish the shard artifact and retire the claim."""
        path = atomic_write_json(self.results_dir / claim.path.name,
                                 result_payload)
        claim.path.unlink(missing_ok=True)
        return path

    # -- inspection ----------------------------------------------------------------

    def outstanding(self, experiment_id: str) -> List[str]:
        """This plan's shard files still pending or claimed without a
        published result (empty, i.e. falsy, when nothing is in flight).

        A claim whose result file already exists does not count: it is a
        finished shard whose claim cleanup raced or a stale duplicate, and
        waiting on it would block forever.  Once this empties, every shard
        has either published a result or vanished entirely (a lost claim)
        — the coordinator's missing-shard check distinguishes the two.
        """
        pattern = f"shard-{experiment_tag(experiment_id)}-*.json"
        done = {path.name for path in self.results_dir.glob(pattern)}
        return sorted(
            {path.name for path in self.pending_dir.glob(pattern)
             if path.name not in done} |
            {path.name for path in self.claims_dir.glob(pattern)
             if path.name not in done})

    def result_paths(self) -> List[Path]:
        return sorted(self.results_dir.glob("shard-*.json"))

    def load_results(self, experiment_id: Optional[str] = None
                     ) -> List[Dict[str, Any]]:
        """Read the shard artifacts in ``results/``.

        With *experiment_id*, artifacts of other plans sharing the spool
        are never even opened (filename-tag filter), so a stray foreign or
        malformed result cannot break an unrelated plan's merge; the
        schema is enforced only on the selected files, and the coordinator
        still re-validates provenance.
        """
        if experiment_id is None:
            paths = self.result_paths()
        else:
            paths = sorted(self.results_dir.glob(
                f"shard-{experiment_tag(experiment_id)}-*.json"))
        payloads = []
        for path in paths:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("schema") != SHARD_RESULT_SCHEMA:
                raise ValueError(
                    f"{path}: unsupported shard result schema "
                    f"{payload.get('schema')!r} "
                    f"(expected {SHARD_RESULT_SCHEMA})")
            if experiment_id is not None and \
                    payload.get("experiment_id") != experiment_id:
                continue  # tag collision with another plan
            payloads.append(payload)
        return payloads

    def status(self) -> SpoolStatus:
        # Workers move files between these directories while we read them
        # (claim renames, finish unlinks), so a file that vanished between
        # the glob and the read simply belongs to the next state already.
        # Malformed files are reported under their file name rather than
        # crashing the one command an operator uses to inspect the spool.
        def read(path: Path) -> Optional[Dict[str, Any]]:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except FileNotFoundError:
                return None  # moved to its next state mid-scan
            except json.JSONDecodeError:
                return {}  # malformed: still report it, under its file name
            return payload if isinstance(payload, dict) else {}

        def label(path: Path, payload: Dict[str, Any]) -> str:
            try:
                return shard_label(payload)
            except (KeyError, TypeError):
                return path.stem

        status = SpoolStatus()
        for path in sorted(self.pending_dir.glob("shard-*.json")):
            # Same result-exists exemption as the claims branch below (and
            # outstanding()): a shard both released and recovered leaves a
            # pending file next to its published result — it is done.
            if (self.results_dir / path.name).exists():
                continue
            payload = read(path)
            if payload is None:
                continue
            status.pending.append(label(path, payload))
        for path in sorted(self.claims_dir.glob("shard-*.json")):
            # Same exemption as outstanding(): a claim whose result exists
            # is a finished shard with raced cleanup, not a running one —
            # counting it would hold `shard status` at exit 3 forever.
            if (self.results_dir / path.name).exists():
                continue
            payload = read(path)
            if payload is None:
                continue
            owner = payload.get("claim", {}).get("owner", "unknown")
            status.running[label(path, payload)] = owner
        for path in self.result_paths():
            payload = read(path)
            if payload is None:  # pragma: no cover - results only grow
                continue
            status.done.append(label(path, payload))
        return status
