"""Coordinator: validate shard provenance and fold shards merge-exactly.

The coordinator is the only component that sees more than one shard.  It
refuses to merge anything whose provenance is not airtight — every shard
result must carry the same ``experiment_id`` (which digests the full plan:
name, specs, scale, config, shard count), the same ``config_hash`` and the
same scale, the shard indices must form exactly ``0..shard_count-1`` with
no duplicates, and only then are the shards folded, in index order, with
:meth:`~repro.analysis.experiments.ExperimentResult.merge`.

Because the planner's partition is contiguous and the fold is ordered, the
merged result's runs sit in exactly the insertion order an unsharded
``ParallelExperimentRunner.collect`` over the same specs would have
produced — including the overwrite-keeps-first-position semantics of
duplicate result keys — so the final ``repro.experiment/1`` artifact is
bit-identical in its runs to the unsharded one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.experiments import ExperimentResult
from ..config import SystemConfig
from ..runner.artifacts import (
    atomic_write_json,
    config_from_dict,
    experiment_to_artifact,
    run_result_from_dict,
    scale_from_dict,
)
from .manifest import SHARD_RESULT_SCHEMA


@dataclass
class MergedShards:
    """Outcome of a successful shard merge, ready to write as an artifact."""

    experiment: str
    experiment_id: str
    shard_count: int
    hosts: List[str]
    config: SystemConfig
    result: ExperimentResult
    total_runs: int
    #: Speedup-baseline platform the plan named (presentation metadata).
    baseline: Optional[str] = None

    def artifact_payload(self,
                         meta: Optional[Dict[str, Any]] = None
                         ) -> Dict[str, Any]:
        """The ``repro.experiment/1`` payload with shard provenance meta."""
        merged_meta: Dict[str, Any] = {
            "sharded": {
                "experiment_id": self.experiment_id,
                "shard_count": self.shard_count,
                "hosts": self.hosts,
            },
        }
        if meta:
            merged_meta.update(meta)
        return experiment_to_artifact(self.experiment, self.result,
                                      self.config, meta=merged_meta)

    def write_artifact(self, path: Path,
                       meta: Optional[Dict[str, Any]] = None) -> Path:
        return atomic_write_json(Path(path), self.artifact_payload(meta))


def _require_consistent(payloads: Sequence[Dict[str, Any]],
                        field: str) -> Any:
    values = {json.dumps(payload.get(field), sort_keys=True)
              for payload in payloads}
    if len(values) != 1:
        raise ValueError(
            f"shard results disagree on {field!r}: cannot merge shards "
            f"from different plans")
    return payloads[0].get(field)


def merge_shards(payloads: Sequence[Dict[str, Any]]) -> MergedShards:
    """Validate provenance across shard results and fold them in order."""
    payloads = list(payloads)
    if not payloads:
        raise ValueError("no shard results to merge")
    for payload in payloads:
        schema = payload.get("schema")
        if schema != SHARD_RESULT_SCHEMA:
            raise ValueError(
                f"unsupported shard result schema {schema!r} "
                f"(expected {SHARD_RESULT_SCHEMA})")
    for field in ("experiment", "experiment_id", "config_hash", "scale",
                  "shard_count"):
        _require_consistent(payloads, field)

    shard_count = payloads[0]["shard_count"]
    seen = sorted(payload["shard_index"] for payload in payloads)
    if len(set(seen)) != len(seen):
        duplicates = sorted({index for index in seen
                             if seen.count(index) > 1})
        raise ValueError(f"duplicate shard result(s) for index {duplicates}")
    missing = sorted(set(range(shard_count)) - set(seen))
    if missing:
        raise ValueError(
            f"incomplete shard set: missing shard(s) {missing} of "
            f"{shard_count}")

    # Run-level completeness: every spec's global index must appear exactly
    # once across the shard set, or a truncated/duplicated runs array (a
    # torn file from a non-atomic writer, a hand edit) would merge into a
    # silently incomplete artifact.
    indices = sorted(run["index"]
                     for payload in payloads for run in payload["runs"])
    if indices != list(range(len(indices))):
        raise ValueError(
            f"shard runs do not cover spec indices 0..{len(indices) - 1} "
            f"exactly once: got {indices} — a shard result is truncated, "
            f"duplicated or hand-edited")

    scale = scale_from_dict(payloads[0]["scale"])
    merged = ExperimentResult(scale=scale)
    total_runs = 0
    # Contiguous partition + index-ordered fold == the unsharded insertion
    # order, which is what makes the merged artifact bit-identical.
    for payload in sorted(payloads, key=lambda p: p["shard_index"]):
        shard_result = ExperimentResult(scale=scale)
        for run in sorted(payload["runs"], key=lambda r: r["index"]):
            shard_result.add(run["platform_key"], run["workload_key"],
                             run_result_from_dict(run["result"]))
            total_runs += 1
        merged.merge(shard_result)
    return MergedShards(
        experiment=payloads[0]["experiment"],
        experiment_id=payloads[0]["experiment_id"],
        shard_count=shard_count,
        hosts=[payload.get("host", "unknown")
               for payload in sorted(payloads,
                                     key=lambda p: p["shard_index"])],
        config=config_from_dict(payloads[0]["config"]),
        result=merged,
        total_runs=total_runs,
        baseline=payloads[0].get("baseline"),
    )


def load_shard_results(paths: Sequence[Path]) -> List[Dict[str, Any]]:
    """Read shard-result files (schema-checked lazily by merge_shards)."""
    return [json.loads(Path(path).read_text(encoding="utf-8"))
            for path in paths]
