"""Shard manifests: the versioned unit of distributed experiment work.

``repro shard plan`` partitions one experiment — an ordered list of
:class:`~repro.runner.specs.RunSpec` records plus the frozen scale and the
*scaled* system configuration — into N **shard manifests** (schema
``repro.shard/1``).  A manifest is self-contained: a worker on any host
rebuilds the exact specs, scale and config from it alone, with no access to
the planner's process or the repository checkout that produced it.

Determinism is the whole point of the layout:

* the partition is contiguous and balanced (shard sizes differ by at most
  one), so concatenating the shards in index order reproduces the original
  spec order — which is what lets the coordinator emit an artifact whose
  runs appear in exactly the order an unsharded run would have written;
* every spec entry carries its global ``index`` and its content-addressed
  run-cache ``key`` (the same SHA-256 the runner uses), so a worker can
  verify that its reconstruction of the plan hashes to the same addresses
  before executing anything;
* the ``experiment_id`` digests the full plan (name, specs, scale, config,
  shard count), so shards from different plans can never be merged by
  accident.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..runner.artifacts import (
    canonical_json,
    config_hash_of,
    config_to_dict,
    run_cache_key,
    scale_to_dict,
)
from ..runner.specs import RunSpec
from ..workloads.registry import ExperimentScale, get_workload

#: Bump when the shard-manifest layout changes.
SHARD_MANIFEST_SCHEMA = "repro.shard/1"
#: Bump when the shard-result artifact layout changes.
SHARD_RESULT_SCHEMA = "repro.shard-result/1"

#: Valid ``balance`` modes of :func:`plan_shards`.
BALANCE_MODES = ("count", "cost")


def partition_bounds(total: int, shard_count: int) -> List[Tuple[int, int]]:
    """Contiguous balanced ``[start, end)`` bounds for each shard.

    The first ``total % shard_count`` shards receive one extra spec, so any
    two shard sizes differ by at most one.  Shards past the spec count come
    out empty, which the worker and coordinator both tolerate.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    base, extra = divmod(total, shard_count)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(shard_count):
        size = base + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def estimate_spec_cost(spec: RunSpec, scale: ExperimentScale) -> int:
    """Estimated trace length (accesses) of one run — its dominant cost.

    Mirrors the arithmetic of
    :func:`~repro.workloads.registry.build_trace` — Table III instructions
    shrunk by ``scale.instruction_scale``, divided by the compute
    instructions per access, clamped to the scale's access bounds —
    without synthesising anything, so planning stays instantaneous.  Replay
    time is close to linear in trace length, while workloads differ by
    orders of magnitude in instruction count, which is exactly the skew
    count-balanced shards cannot see.

    File-backed ``trace:<path>`` specs read the exact length from the
    ``repro.trace/1`` footer (one cached stat + footer parse — still no
    stream materialisation); the file fixes its accesses, so the scale's
    clamps do not apply.  ``scenario:`` specs cost the sum of their tenant
    stream lengths — exact too (registry tenants reuse this arithmetic,
    trace-file tenants their footers), so cost-balanced shard planning
    sees a 3-tenant mix as 3x the work it really is.
    """
    if spec.workload.startswith("trace:"):
        from ..trace.format import trace_source_path, trace_summary
        return trace_summary(trace_source_path(spec.workload))["length"]
    if spec.workload.startswith("scenario:"):
        from ..scenario.spec import scenario_spec_length
        return scenario_spec_length(spec.workload, scale)
    workload = get_workload(spec.workload)
    scaled = scale.scaled_instructions(
        workload.characteristics.total_instructions)
    raw = int(scaled / (1.0 + workload.compute_instructions_per_access))
    return min(scale.max_accesses, max(scale.min_accesses, raw))


def partition_bounds_by_cost(costs: Sequence[float], shard_count: int
                             ) -> List[Tuple[int, int]]:
    """Contiguous ``[start, end)`` bounds balancing total *cost* per shard.

    The partition stays contiguous — that is what keeps the sharded merge
    bit-identical to the unsharded run order — so balancing reduces to
    choosing cut points.  Each shard extends while its cumulative cost's
    midpoint stays before the shard's ideal cut (``total * (k+1) / n``),
    i.e. every item lands on whichever side of the cut it is closer to;
    the last shard takes the remainder.  Deterministic, tolerant of empty
    shards, and exact for equal costs (it then reduces to
    :func:`partition_bounds`-style near-even splits).
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    costs = [float(cost) for cost in costs]
    total = sum(costs)
    if total <= 0:
        return partition_bounds(len(costs), shard_count)
    bounds: List[Tuple[int, int]] = []
    start = 0
    cumulative = 0.0
    for shard_index in range(shard_count - 1):
        target = total * (shard_index + 1) / shard_count
        end = start
        while end < len(costs) and \
                cumulative + costs[end] / 2.0 <= target:
            cumulative += costs[end]
            end += 1
        bounds.append((start, end))
        start = end
    bounds.append((start, len(costs)))
    return bounds


def experiment_tag(experiment_id: str) -> str:
    """Short filename-safe tag of an experiment id (first 8 hex digits)."""
    return experiment_id.split(":", 1)[-1][:8]


def experiment_id_of(name: str, specs: Sequence[RunSpec],
                     config: SystemConfig, scale: ExperimentScale,
                     shard_count: int, balance: str = "count") -> str:
    """Digest of the complete plan; identical across all of its shards.

    The balance mode enters the digest for non-default modes only, so every
    pre-existing count-balanced plan keeps its id while a cost-balanced
    plan of the same matrix can never alias it — shards partitioned
    differently must not merge together.
    """
    payload: Dict[str, Any] = {
        "schema": SHARD_MANIFEST_SCHEMA,
        "experiment": name,
        "specs": [spec.to_dict() for spec in specs],
        "scale": scale_to_dict(scale),
        "config": config_to_dict(config),
        "shard_count": shard_count,
    }
    if balance != "count":
        payload["balance"] = balance
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return f"sha256:{digest.hexdigest()}"


def plan_shards(name: str, specs: Sequence[RunSpec], config: SystemConfig,
                scale: ExperimentScale, shard_count: int,
                baseline: Optional[str] = None,
                balance: str = "count") -> List[Dict[str, Any]]:
    """Partition *specs* into *shard_count* manifest payloads.

    *config* must already be scaled (it is the runner's ``.config``, not the
    unscaled Table II base): workers install it verbatim via
    ``scaled_config`` so their run-cache keys match the ``key`` fields
    computed here.  *baseline* names the speedup-baseline platform for
    report summaries; it rides along as presentation metadata and does not
    enter the experiment id.  *balance* picks the partition: ``"count"``
    (the default) splits the spec list into near-equal counts, ``"cost"``
    weighs each spec by its estimated trace length
    (:func:`estimate_spec_cost`) so long and short workloads spread evenly
    across hosts.  Both partitions are contiguous, so the merged result is
    bit-identical either way.
    """
    if balance not in BALANCE_MODES:
        raise ValueError(f"unknown balance mode {balance!r}; "
                         f"expected one of {BALANCE_MODES}")
    specs = list(specs)
    experiment_id = experiment_id_of(name, specs, config, scale, shard_count,
                                     balance=balance)
    scale_dict = scale_to_dict(scale)
    config_dict = config_to_dict(config)
    config_hash = config_hash_of(config)
    keys = [run_cache_key(spec, config, scale) for spec in specs]
    if balance == "cost":
        bounds = partition_bounds_by_cost(
            [estimate_spec_cost(spec, scale) for spec in specs], shard_count)
    else:
        bounds = partition_bounds(len(specs), shard_count)
    manifests: List[Dict[str, Any]] = []
    for shard_index, (start, end) in enumerate(bounds):
        manifests.append({
            "schema": SHARD_MANIFEST_SCHEMA,
            "experiment": name,
            "experiment_id": experiment_id,
            "shard_index": shard_index,
            "shard_count": shard_count,
            "balance": balance,
            "baseline": baseline,
            "scale": scale_dict,
            "config": config_dict,
            "config_hash": config_hash,
            "specs": [{
                "index": index,
                "key": keys[index],
                "spec": specs[index].to_dict(),
            } for index in range(start, end)],
        })
    return manifests


_MANIFEST_FIELDS = ("experiment", "experiment_id", "shard_index",
                    "shard_count", "scale", "config", "config_hash", "specs")


def validate_manifest(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Check schema and required fields; return *payload* for chaining."""
    schema = payload.get("schema")
    if schema != SHARD_MANIFEST_SCHEMA:
        raise ValueError(
            f"unsupported shard manifest schema {schema!r} "
            f"(expected {SHARD_MANIFEST_SCHEMA})")
    missing = [name for name in _MANIFEST_FIELDS if name not in payload]
    if missing:
        raise ValueError(f"shard manifest is missing fields: {missing}")
    if not 0 <= payload["shard_index"] < payload["shard_count"]:
        raise ValueError(
            f"shard index {payload['shard_index']} out of range for "
            f"{payload['shard_count']} shard(s)")
    for entry in payload["specs"]:
        if not isinstance(entry, dict) or \
                not {"index", "key", "spec"} <= entry.keys():
            raise ValueError(
                "shard manifest spec entries must carry index/key/spec")
    return payload


def load_manifest(path: Path) -> Dict[str, Any]:
    """Read and validate one shard manifest file."""
    return validate_manifest(
        json.loads(Path(path).read_text(encoding="utf-8")))


def manifest_specs(payload: Dict[str, Any]) -> List[RunSpec]:
    """Rebuild the RunSpecs a manifest names, in manifest order."""
    return [RunSpec.from_dict(entry["spec"]) for entry in payload["specs"]]
