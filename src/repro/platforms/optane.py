"""Optane DC PMM platforms (``optane-P`` and ``optane-M``).

``optane-P`` runs the DIMM in App Direct mode: every reference goes to the
3D XPoint media, which is persistent but pays the 256 B internal granularity
penalty on fine-grained accesses (Rodinia/SQLite) and the media latency on
everything.  ``optane-M`` runs in Memory mode: the host DRAM becomes a
direct-mapped cache in front of the media, recovering most of the
performance at the cost of persistence (Section VI-B).
"""

from __future__ import annotations

from typing import Dict

from ..config import SystemConfig
from ..energy.accounting import EnergyAccount
from ..energy.models import EnergyModel
from ..host.os_stack import PageCache
from ..memory.nvdimm import NVDIMM
from ..memory.optane import OptaneDCPMM
from ..units import KB
from .base import (
    MemoryRequestBatch,
    MemoryServiceBatch,
    MemoryServiceResult,
    Platform,
)

_CACHE_PAGE = KB(4)


class OptanePlatform(Platform):
    """Optane DC PMM as main memory, in App Direct or Memory mode."""

    def __init__(self, config: SystemConfig, mode: str = "persist") -> None:
        super().__init__(config)
        if mode not in ("persist", "memory"):
            raise ValueError(f"unknown Optane mode {mode!r}")
        self.mode = mode
        self.name = "optane-P" if mode == "persist" else "optane-M"
        self.optane = OptaneDCPMM(config.optane)
        self.dram_cache_enabled = mode == "memory"
        self.dram = NVDIMM(config.nvdimm) if self.dram_cache_enabled else None
        self.dram_cache = (PageCache(config.nvdimm.capacity_bytes, _CACHE_PAGE)
                           if self.dram_cache_enabled else None)
        self._dram_busy_ns = 0.0

    def service_memory_access(self, address: int, size_bytes: int,
                              is_write: bool, at_ns: float) -> MemoryServiceResult:
        if not self.dram_cache_enabled:
            access = (self.optane.write(size_bytes) if is_write
                      else self.optane.read(size_bytes))
            latency = access.latency_ns
            if is_write:
                # App Direct persistence: clwb + sfence on the store path.
                latency += self.config.optane.persist_write_overhead_ns
            return MemoryServiceResult(latency_ns=latency)

        assert self.dram is not None and self.dram_cache is not None
        page = address // _CACHE_PAGE
        if self.dram_cache.access(page, is_write):
            result = self.dram.access(size_bytes, is_write)
            self._dram_busy_ns += result.latency_ns
            return MemoryServiceResult(latency_ns=result.latency_ns)

        # Memory-mode miss: fetch the 4 KB block from the media into DRAM,
        # write back the dirty victim if needed, then serve from DRAM.
        fetch = self.optane.read(_CACHE_PAGE)
        latency = fetch.latency_ns
        evicted = self.dram_cache.install(page, dirty=is_write)
        if evicted is not None and evicted[1]:
            latency += self.optane.write(_CACHE_PAGE).latency_ns
        served = self.dram.access(size_bytes, is_write)
        self._dram_busy_ns += served.latency_ns
        latency += served.latency_ns
        return MemoryServiceResult(latency_ns=latency)

    def service_batch(self, batch: MemoryRequestBatch) -> MemoryServiceBatch:
        """Vectorized App Direct service; Memory mode keeps the fallback.

        In App Direct mode the media latency is clock-independent, so one
        :meth:`~repro.memory.optane.OptaneDCPMM.access_batch` call resolves
        the whole batch (the XPBuffer state machine runs inside it, in
        request order).  Memory mode fronts the media with a stateful LRU
        DRAM cache whose hit/miss interleaving is inherently sequential, so
        it uses the exact sequential default.
        """
        if self.dram_cache_enabled:
            return super().service_batch(batch)
        latency = self.optane.access_batch(batch.sizes, batch.writes)
        if batch.writes.any():
            # App Direct persistence: clwb + sfence on the store path.
            latency[batch.writes] += \
                self.config.optane.persist_write_overhead_ns
        return MemoryServiceBatch(latency_ns=latency)

    def collect_energy(self, account: EnergyAccount) -> None:
        if self.dram is not None:
            account.charge_nvdimm(active_ns=self._dram_busy_ns,
                                  bytes_moved=self.dram.dram.bytes_total)
        # The Optane media's energy is charged per internal byte moved; it is
        # attributed to the NVDIMM (system memory) category of Figure 19.
        account.charge_nvdimm(active_ns=0.0,
                              bytes_moved=self.optane.bytes_internal)

    def energy_model(self) -> EnergyModel:
        return EnergyModel(self.config.energy, self.optane.capacity_bytes,
                           ssd_internal_dram_present=False)

    def extra_statistics(self) -> Dict[str, float]:
        stats = super().extra_statistics()
        stats.update({f"optane_{key}": value
                      for key, value in self.optane.statistics().items()})
        if self.dram_cache is not None:
            stats["dram_cache_hit_rate"] = self.dram_cache.hit_rate
        return stats
