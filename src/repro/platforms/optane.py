"""Optane DC PMM platforms (``optane-P`` and ``optane-M``).

``optane-P`` runs the DIMM in App Direct mode: every reference goes to the
3D XPoint media, which is persistent but pays the 256 B internal granularity
penalty on fine-grained accesses (Rodinia/SQLite) and the media latency on
everything.  ``optane-M`` runs in Memory mode: the host DRAM becomes a
direct-mapped cache in front of the media, recovering most of the
performance at the cost of persistence (Section VI-B).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..config import SystemConfig
from ..energy.accounting import EnergyAccount
from ..energy.models import EnergyModel
from ..host.os_stack import PageCache
from ..memory.nvdimm import NVDIMM
from ..memory.optane import OptaneDCPMM
from ..numerics import sequential_add
from ..units import KB
from .base import (
    MemoryRequestBatch,
    MemoryServiceBatch,
    MemoryServiceResult,
    Platform,
)

_CACHE_PAGE = KB(4)


class OptanePlatform(Platform):
    """Optane DC PMM as main memory, in App Direct or Memory mode."""

    def __init__(self, config: SystemConfig, mode: str = "persist") -> None:
        super().__init__(config)
        if mode not in ("persist", "memory"):
            raise ValueError(f"unknown Optane mode {mode!r}")
        self.mode = mode
        self.name = "optane-P" if mode == "persist" else "optane-M"
        self.optane = OptaneDCPMM(config.optane)
        self.dram_cache_enabled = mode == "memory"
        self.dram = NVDIMM(config.nvdimm) if self.dram_cache_enabled else None
        self.dram_cache = (PageCache(config.nvdimm.capacity_bytes, _CACHE_PAGE)
                           if self.dram_cache_enabled else None)
        self._dram_busy_ns = 0.0

    def service_memory_access(self, address: int, size_bytes: int,
                              is_write: bool, at_ns: float) -> MemoryServiceResult:
        if not self.dram_cache_enabled:
            access = (self.optane.write(size_bytes) if is_write
                      else self.optane.read(size_bytes))
            latency = access.latency_ns
            if is_write:
                # App Direct persistence: clwb + sfence on the store path.
                latency += self.config.optane.persist_write_overhead_ns
            return MemoryServiceResult(latency_ns=latency)

        assert self.dram is not None and self.dram_cache is not None
        page = address // _CACHE_PAGE
        if self.dram_cache.access(page, is_write):
            result = self.dram.access(size_bytes, is_write)
            self._dram_busy_ns += result.latency_ns
            return MemoryServiceResult(latency_ns=result.latency_ns)

        # Memory-mode miss: fetch the 4 KB block from the media into DRAM,
        # write back the dirty victim if needed, then serve from DRAM.
        fetch = self.optane.read(_CACHE_PAGE)
        latency = fetch.latency_ns
        evicted = self.dram_cache.install(page, dirty=is_write)
        if evicted is not None and evicted[1]:
            latency += self.optane.write(_CACHE_PAGE).latency_ns
        served = self.dram.access(size_bytes, is_write)
        self._dram_busy_ns += served.latency_ns
        latency += served.latency_ns
        return MemoryServiceResult(latency_ns=latency)

    def service_batch(self, batch: MemoryRequestBatch) -> MemoryServiceBatch:
        """Vectorized service in both Optane modes.

        In App Direct mode the media latency is clock-independent, so one
        :meth:`~repro.memory.optane.OptaneDCPMM.access_batch` call resolves
        the whole batch (the XPBuffer state machine runs inside it, in
        request order).  Memory mode fronts the media with a stateful LRU
        DRAM cache, resolved by the order-exact batched walk of
        :meth:`_service_batch_memory_mode`.
        """
        if self.dram_cache_enabled:
            return self._service_batch_memory_mode(batch)
        latency = self.optane.access_batch(batch.sizes, batch.writes)
        if batch.writes.any():
            # App Direct persistence: clwb + sfence on the store path.
            latency[batch.writes] += \
                self.config.optane.persist_write_overhead_ns
        return MemoryServiceBatch(latency_ns=latency)

    def _service_batch_memory_mode(self,
                                   batch: MemoryRequestBatch
                                   ) -> MemoryServiceBatch:
        """Memory-mode batch service: batched LRU walk + vectorized media.

        Every per-request cost in Memory mode is clock-independent, so the
        whole batch vectorizes once the DRAM cache's hit/miss/eviction
        interleaving is known: one order-exact
        :meth:`~repro.host.os_stack.PageCache.access_batch` walk captures
        it, the DRAM service of every request folds in one
        :meth:`~repro.memory.nvdimm.NVDIMM.access_batch` call, and the
        misses' media traffic — a 4 KB fetch each, plus a 4 KB writeback
        when the install evicted a dirty victim — replays through
        :meth:`~repro.memory.optane.OptaneDCPMM.access_batch` in exactly
        the scalar call order, preserving the XPBuffer state machine.

        This is the same capture-the-schedule-then-replay idiom the
        flash-backed platforms use with
        :meth:`repro.flash.ssd.SSD.submit_batch`: classify with the
        stateful cache walk, fold the clock-free costs vectorized, and
        hand the ordered miss schedule to the device model in one call.
        """
        assert self.dram is not None and self.dram_cache is not None
        count = len(batch)
        if count == 0:
            return MemoryServiceBatch(latency_ns=np.empty(0))
        pages = batch.addresses // _CACHE_PAGE
        walk = self.dram_cache.access_batch(pages, batch.writes,
                                            tenants=batch.tenant_ids)
        dram_latency = self.dram.access_batch(batch.sizes, batch.writes)
        self._dram_busy_ns = sequential_add(self._dram_busy_ns, dram_latency)
        latency = dram_latency.copy()
        misses = walk.miss_indices
        if len(misses):
            dirty_victim = np.fromiter(
                (bool(evicted) and evicted[0][1] for evicted in walk.evictions),
                dtype=bool, count=len(misses))
            writeback_count = int(np.count_nonzero(dirty_victim))
            # The scalar media-call schedule: per miss one 4 KB fetch read,
            # followed — when the install evicted a dirty victim — by one
            # 4 KB writeback write.  fetch_at[k] is the k-th miss's read
            # position in that interleaved sequence.
            writebacks_before = np.concatenate(
                (np.zeros(1, dtype=np.int64),
                 np.cumsum(dirty_victim, dtype=np.int64)[:-1]))
            fetch_at = np.arange(len(misses), dtype=np.int64) + writebacks_before
            schedule_writes = np.zeros(len(misses) + writeback_count,
                                       dtype=bool)
            schedule_writes[fetch_at[dirty_victim] + 1] = True
            schedule_sizes = np.full(len(schedule_writes), _CACHE_PAGE,
                                     dtype=np.int64)
            media_latency = self.optane.access_batch(schedule_sizes,
                                                     schedule_writes)
            # Same left-to-right accumulation as the scalar miss path:
            # fetch, then the dirty writeback, then the DRAM service.
            miss_latency = media_latency[fetch_at]
            miss_latency[dirty_victim] += media_latency[fetch_at[dirty_victim]
                                                        + 1]
            miss_latency += dram_latency[misses]
            latency[misses] = miss_latency
        return MemoryServiceBatch(latency_ns=latency)

    def page_caches(self) -> list:
        return ["dram_cache"] if self.dram_cache_enabled else []

    def collect_energy(self, account: EnergyAccount) -> None:
        if self.dram is not None:
            account.charge_nvdimm(active_ns=self._dram_busy_ns,
                                  bytes_moved=self.dram.dram.bytes_total)
        # The Optane media's energy is charged per internal byte moved; it is
        # attributed to the NVDIMM (system memory) category of Figure 19.
        account.charge_nvdimm(active_ns=0.0,
                              bytes_moved=self.optane.bytes_internal)

    def energy_model(self) -> EnergyModel:
        return EnergyModel(self.config.energy, self.optane.capacity_bytes,
                           ssd_internal_dram_present=False)

    def extra_statistics(self) -> Dict[str, float]:
        stats = super().extra_statistics()
        stats.update({f"optane_{key}": value
                      for key, value in self.optane.statistics().items()})
        if self.dram_cache is not None:
            stats.update(self.dram_cache.statistics("dram_cache"))
        return stats
