"""Evaluation platforms.

One class per system configuration evaluated in Section VI:

=============  =================================================================
``mmap``        MMF baseline: NVDIMM page cache + ULL-Flash behind the OS stack
``optane-P``    Optane DC PMM in App Direct mode (persistent, no DRAM cache)
``optane-M``    Optane DC PMM in Memory mode (DRAM cache, not persistent)
``flatflash-P`` FlatFlash: cache-line MMIO access to ULL-Flash (persistent)
``flatflash-M`` FlatFlash with hot pages promoted to host DRAM
``nvdimm-C``    ULL-Flash on the DRAM PHY, migration only during refresh
``hams-LP``     baseline (loose) HAMS, persist mode
``hams-LE``     baseline (loose) HAMS, extend mode
``hams-TP``     advanced (tight) HAMS, persist mode
``hams-TE``     advanced (tight) HAMS, extend mode
``oracle``      a 512 GB NVDIMM that holds every dataset entirely
=============  =================================================================
"""

from .base import MemoryServiceResult, Platform, RunResult
from .oracle import OraclePlatform
from .mmap_platform import MmapPlatform
from .bypass import BypassPlatform
from .optane import OptanePlatform
from .flatflash import FlatFlashPlatform
from .nvdimm_c import NvdimmCPlatform
from .hams_platform import HAMSPlatform
from .registry import PLATFORM_NAMES, create_platform

__all__ = [
    "MemoryServiceResult",
    "Platform",
    "RunResult",
    "OraclePlatform",
    "MmapPlatform",
    "BypassPlatform",
    "OptanePlatform",
    "FlatFlashPlatform",
    "NvdimmCPlatform",
    "HAMSPlatform",
    "PLATFORM_NAMES",
    "create_platform",
]
