"""Bypass-strategy platforms for the Figure 7b motivation study.

Section III-C asks: what happens if we simply remove the software stack and
expose the device directly to load/store instructions?  Three strategies are
compared:

* ``nvdimm`` — every reference is served by NVDIMM (the upper bound),
* ``ull``    — every off-chip reference is served directly by the ULL-Flash
  (a 4 KB Z-NAND read per miss, ~3 us plus transfer), and
* ``ull-buff`` — the ULL-Flash is fronted by a small DRAM page buffer.

The IPC collapse of the latter two (0.001 / 0.003 vs 0.06) motivates HAMS:
removing software is not enough, the NVDIMM must stay on the critical path
as a large hardware-managed cache.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..config import SystemConfig
from ..energy.accounting import EnergyAccount
from ..flash.ssd import IORequestBatch, SSD
from ..host.os_stack import PageCache
from ..interconnect.pcie import PCIeLink
from ..memory.nvdimm import NVDIMM
from ..numerics import sequential_add
from ..units import KB, MB
from ..workloads.trace import WorkloadTrace
from .base import (
    MemoryRequestBatch,
    MemoryServiceBatch,
    MemoryServiceResult,
    Platform,
)

_PAGE = KB(4)


class BypassPlatform(Platform):
    """Direct load/store service by NVDIMM, ULL-Flash, or buffered ULL-Flash."""

    def __init__(self, config: SystemConfig, strategy: str = "nvdimm",
                 buffer_bytes: int = MB(64)) -> None:
        super().__init__(config)
        if strategy not in ("nvdimm", "ull", "ull-buff"):
            raise ValueError(f"unknown bypass strategy {strategy!r}")
        self.strategy = strategy
        self.name = f"bypass-{strategy}"
        self.nvdimm = NVDIMM(config.nvdimm)
        self.ssd = SSD(config.ssd)
        self.link = PCIeLink(config.pcie)
        self.page_buffer = PageCache(buffer_bytes, _PAGE)
        self._nvdimm_busy_ns = 0.0

    def prepare(self, trace: WorkloadTrace) -> None:
        if self.strategy != "nvdimm":
            pages = min(self.ssd.logical_pages,
                        (trace.dataset_bytes + _PAGE - 1) // _PAGE)
            self.ssd.precondition(0, pages)

    def service_memory_access(self, address: int, size_bytes: int,
                              is_write: bool, at_ns: float) -> MemoryServiceResult:
        if self.strategy == "nvdimm":
            result = self.nvdimm.access(size_bytes, is_write)
            self._nvdimm_busy_ns += result.latency_ns
            return MemoryServiceResult(latency_ns=result.latency_ns)

        page = address // _PAGE
        if self.strategy == "ull-buff" and self.page_buffer.access(page, is_write):
            result = self.nvdimm.access(min(size_bytes, _PAGE), is_write)
            self._nvdimm_busy_ns += result.latency_ns
            return MemoryServiceResult(latency_ns=result.latency_ns)

        # Every miss is a synchronous 4 KB device access on the load/store path.
        if is_write:
            io = self.ssd.write(page * _PAGE, _PAGE, at_ns)
        else:
            io = self.ssd.read(page * _PAGE, _PAGE, at_ns)
        transfer = self.link.transfer(_PAGE, io.finish_ns)
        latency = (io.finish_ns - at_ns) + transfer.latency_ns
        if self.strategy == "ull-buff":
            self.page_buffer.install(page, dirty=is_write)
        return MemoryServiceResult(latency_ns=latency)

    def service_batch(self, batch: MemoryRequestBatch) -> MemoryServiceBatch:
        """Vectorized service for every bypass strategy.

        ``nvdimm`` bypass is clock-independent DRAM, so the whole batch
        resolves in one vectorized call.  ``ull-buff`` fronts the flash
        with a DRAM page buffer: the order-exact batched LRU walk
        (:meth:`~repro.host.os_stack.PageCache.access_batch`) classifies
        the batch, the buffer hits fold into one vectorized NVDIMM call,
        and only the misses — whose flash reads and PCIe transfers are
        queued and history-dependent — replay at exact scalar issue clocks
        via :meth:`~repro.platforms.base.MemoryRequestBatch.service_page_cached`.
        ``ull`` is the degenerate all-miss case — every access is a
        synchronous flash I/O whose next submission clock depends on the
        previous completion — so when the batch's timeline decomposes into
        one uniform gap per request it runs the whole closed-loop recurrence
        inside one chained :meth:`~repro.flash.ssd.SSD.submit_batch` call
        (device walk and PCIe link inlined, bit-identical to the scalar
        loop); otherwise it falls back to the page-cached fold below.
        """
        if self.strategy == "nvdimm":
            latency = self.nvdimm.access_batch(batch.sizes, batch.writes)
            self._nvdimm_busy_ns = sequential_add(self._nvdimm_busy_ns,
                                                  latency)
            return MemoryServiceBatch(latency_ns=latency)
        count = len(batch)
        if count == 0:
            return MemoryServiceBatch(latency_ns=np.empty(0))
        if self.strategy == "ull":
            chained = self._service_chained(batch)
            if chained is not None:
                return chained
        pages = batch.addresses // _PAGE
        if self.strategy == "ull-buff":
            walk = self.page_buffer.access_batch(pages, batch.writes,
                                                 tenants=batch.tenant_ids)
            hit_mask = walk.hits
            miss_indices = walk.miss_indices
        else:
            hit_mask = np.zeros(count, dtype=bool)
            miss_indices = np.arange(count, dtype=np.int64)
        hit_latency = np.zeros(count, dtype=np.float64)
        hit_positions = np.flatnonzero(hit_mask)
        if len(hit_positions):
            buffered_sizes = np.minimum(batch.sizes[hit_positions], _PAGE)
            buffered = self.nvdimm.access_batch(buffered_sizes,
                                                batch.writes[hit_positions])
            self._nvdimm_busy_ns = sequential_add(self._nvdimm_busy_ns,
                                                  buffered)
            hit_latency[hit_positions] = buffered
        # Only the misses read the scalar views; all-hit chunks skip them.
        any_misses = len(miss_indices) > 0
        pages_list = pages.tolist() if any_misses else []
        writes_list = batch.writes.tolist() if any_misses else []

        def miss_service(k: int, index: int, now: float):
            page = pages_list[index]
            if writes_list[index]:
                io = self.ssd.write(page * _PAGE, _PAGE, now)
            else:
                io = self.ssd.read(page * _PAGE, _PAGE, now)
            transfer = self.link.transfer(_PAGE, io.finish_ns)
            return (io.finish_ns - now) + transfer.latency_ns, 0.0, 0.0

        return batch.service_page_cached(hit_mask, hit_latency, miss_indices,
                                         miss_service)

    def _service_chained(self, batch: MemoryRequestBatch):
        """Run an all-miss batch as one chained flash submission.

        Exactness requires recovering every request's scalar issue clock
        from the batch timeline as *one* pre-gap addend per request (the
        per-access compute phase).  That holds exactly when every chunk
        access produced an off-chip request — true for the page-granular
        streams ``ull`` sees — and is checked structurally here; any other
        slot pattern (fine-grained chunks with cache hits interleaved)
        returns ``None`` and the caller uses the per-miss fold instead.
        """
        count = len(batch)
        timeline = batch.timeline
        if timeline is not None:
            addends = timeline.addends
            slots = timeline.service_slots
            if len(addends) == 2 * count:
                expected = 2 * np.arange(count, dtype=np.int64) + 1
                if not np.array_equal(slots, expected):
                    return None
                pre_gap = addends[0::2]
            elif len(addends) == count:
                if not np.array_equal(slots,
                                      np.arange(count, dtype=np.int64)):
                    return None
                pre_gap = None
            else:
                return None
        else:
            # No timeline: requests issue back to back (zero pre-gap).
            pre_gap = None
        io_batch = IORequestBatch(
            is_write=batch.writes,
            byte_offset=(batch.addresses // _PAGE) * _PAGE,
            size_bytes=_PAGE,
            chained=True,
            start_ns=batch.start_ns,
            pre_gap_ns=pre_gap,
            post_gap_ns=batch.on_chip_ns,
            link=self.link,
            link_bytes=_PAGE,
            record_details=False)
        result = self.ssd.submit_batch(io_batch)
        return MemoryServiceBatch(
            latency_ns=np.asarray(result.service_latency_ns,
                                  dtype=np.float64))

    def page_caches(self) -> list:
        return ["page_buffer"] if self.strategy == "ull-buff" else []

    def collect_energy(self, account: EnergyAccount) -> None:
        account.charge_nvdimm(active_ns=self._nvdimm_busy_ns,
                              bytes_moved=self.nvdimm.dram.bytes_total)
        account.charge_flash(self.ssd.fil.page_reads, self.ssd.fil.page_programs)
        account.charge_link(pcie_bytes=int(self.link.bytes_transferred))

    def extra_statistics(self) -> Dict[str, float]:
        stats = super().extra_statistics()
        stats.update(self.page_buffer.statistics("page_buffer"))
        return stats
