"""Bypass-strategy platforms for the Figure 7b motivation study.

Section III-C asks: what happens if we simply remove the software stack and
expose the device directly to load/store instructions?  Three strategies are
compared:

* ``nvdimm`` — every reference is served by NVDIMM (the upper bound),
* ``ull``    — every off-chip reference is served directly by the ULL-Flash
  (a 4 KB Z-NAND read per miss, ~3 us plus transfer), and
* ``ull-buff`` — the ULL-Flash is fronted by a small DRAM page buffer.

The IPC collapse of the latter two (0.001 / 0.003 vs 0.06) motivates HAMS:
removing software is not enough, the NVDIMM must stay on the critical path
as a large hardware-managed cache.
"""

from __future__ import annotations

from typing import Dict

from ..config import SystemConfig
from ..energy.accounting import EnergyAccount
from ..flash.ssd import SSD
from ..host.os_stack import PageCache
from ..interconnect.pcie import PCIeLink
from ..memory.nvdimm import NVDIMM
from ..numerics import sequential_add
from ..units import KB, MB
from ..workloads.trace import WorkloadTrace
from .base import (
    MemoryRequestBatch,
    MemoryServiceBatch,
    MemoryServiceResult,
    Platform,
)

_PAGE = KB(4)


class BypassPlatform(Platform):
    """Direct load/store service by NVDIMM, ULL-Flash, or buffered ULL-Flash."""

    def __init__(self, config: SystemConfig, strategy: str = "nvdimm",
                 buffer_bytes: int = MB(64)) -> None:
        super().__init__(config)
        if strategy not in ("nvdimm", "ull", "ull-buff"):
            raise ValueError(f"unknown bypass strategy {strategy!r}")
        self.strategy = strategy
        self.name = f"bypass-{strategy}"
        self.nvdimm = NVDIMM(config.nvdimm)
        self.ssd = SSD(config.ssd)
        self.link = PCIeLink(config.pcie)
        self.page_buffer = PageCache(buffer_bytes, _PAGE)
        self._nvdimm_busy_ns = 0.0

    def prepare(self, trace: WorkloadTrace) -> None:
        if self.strategy != "nvdimm":
            pages = min(self.ssd.logical_pages,
                        (trace.dataset_bytes + _PAGE - 1) // _PAGE)
            self.ssd.precondition(0, pages)

    def service_memory_access(self, address: int, size_bytes: int,
                              is_write: bool, at_ns: float) -> MemoryServiceResult:
        if self.strategy == "nvdimm":
            result = self.nvdimm.access(size_bytes, is_write)
            self._nvdimm_busy_ns += result.latency_ns
            return MemoryServiceResult(latency_ns=result.latency_ns)

        page = address // _PAGE
        if self.strategy == "ull-buff" and self.page_buffer.access(page, is_write):
            result = self.nvdimm.access(min(size_bytes, _PAGE), is_write)
            self._nvdimm_busy_ns += result.latency_ns
            return MemoryServiceResult(latency_ns=result.latency_ns)

        # Every miss is a synchronous 4 KB device access on the load/store path.
        if is_write:
            io = self.ssd.write(page * _PAGE, _PAGE, at_ns)
        else:
            io = self.ssd.read(page * _PAGE, _PAGE, at_ns)
        transfer = self.link.transfer(_PAGE, io.finish_ns)
        latency = (io.finish_ns - at_ns) + transfer.latency_ns
        if self.strategy == "ull-buff":
            self.page_buffer.install(page, dirty=is_write)
        return MemoryServiceResult(latency_ns=latency)

    def service_batch(self, batch: MemoryRequestBatch) -> MemoryServiceBatch:
        """Vectorized service for the all-NVDIMM strategy.

        ``nvdimm`` bypass is clock-independent DRAM, so the whole batch
        resolves in one vectorized call.  The ``ull`` / ``ull-buff``
        strategies put a (queued, history-dependent) flash device and a
        stateful page buffer on the load/store path, so they use the exact
        sequential default.
        """
        if self.strategy != "nvdimm":
            return super().service_batch(batch)
        latency = self.nvdimm.access_batch(batch.sizes, batch.writes)
        self._nvdimm_busy_ns = sequential_add(self._nvdimm_busy_ns, latency)
        return MemoryServiceBatch(latency_ns=latency)

    def collect_energy(self, account: EnergyAccount) -> None:
        account.charge_nvdimm(active_ns=self._nvdimm_busy_ns,
                              bytes_moved=self.nvdimm.dram.bytes_total)
        account.charge_flash(self.ssd.fil.page_reads, self.ssd.fil.page_programs)
        account.charge_link(pcie_bytes=int(self.link.bytes_transferred))

    def extra_statistics(self) -> Dict[str, float]:
        stats = super().extra_statistics()
        stats["page_buffer_hit_rate"] = self.page_buffer.hit_rate
        return stats
