"""The oracle platform: a 512 GB NVDIMM that holds every dataset entirely.

This is the upper bound the paper compares against (Figure 16): all data is
byte-addressable at DRAM latency, there is no storage device and no OS
storage stack on any path.  The only costs are the on-chip caches and the
DDR4 access itself.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from ..config import SystemConfig
from ..energy.accounting import EnergyAccount
from ..energy.models import EnergyModel
from ..memory.nvdimm import NVDIMM
from ..numerics import sequential_add
from ..units import GB
from .base import (
    MemoryRequestBatch,
    MemoryServiceBatch,
    MemoryServiceResult,
    Platform,
)


class OraclePlatform(Platform):
    """All-NVDIMM system: every access is a local DRAM access."""

    name = "oracle"

    def __init__(self, config: SystemConfig,
                 capacity_bytes: int | None = None) -> None:
        super().__init__(config)
        # The oracle DIMM is sized to hold any evaluated dataset; by default
        # it mirrors the 512 GB Optane capacity (scaled with everything else).
        capacity = (capacity_bytes if capacity_bytes is not None
                    else max(config.optane.capacity_bytes,
                             config.nvdimm.capacity_bytes))
        nvdimm_config = replace(config.nvdimm, capacity_bytes=capacity,
                                pinned_region_bytes=0)
        self.nvdimm = NVDIMM(nvdimm_config)
        self._nvdimm_busy_ns = 0.0

    def service_memory_access(self, address: int, size_bytes: int,
                              is_write: bool, at_ns: float) -> MemoryServiceResult:
        result = self.nvdimm.access(size_bytes, is_write)
        self._nvdimm_busy_ns += result.latency_ns
        return MemoryServiceResult(latency_ns=result.latency_ns)

    def service_batch(self, batch: MemoryRequestBatch) -> MemoryServiceBatch:
        """Vectorized service: DRAM latency is clock-independent.

        One :meth:`~repro.memory.nvdimm.NVDIMM.access_batch` call resolves
        the whole batch; the busy-time counter folds in with bit-exact
        sequential accumulation so batched and scalar replay agree to the
        last ulp.
        """
        latency = self.nvdimm.access_batch(batch.sizes, batch.writes)
        self._nvdimm_busy_ns = sequential_add(self._nvdimm_busy_ns, latency)
        return MemoryServiceBatch(latency_ns=latency)

    def collect_energy(self, account: EnergyAccount) -> None:
        account.charge_nvdimm(active_ns=self._nvdimm_busy_ns,
                              bytes_moved=self.nvdimm.dram.bytes_total)

    def energy_model(self) -> EnergyModel:
        return EnergyModel(self.config.energy, self.nvdimm.capacity_bytes,
                           ssd_internal_dram_present=False)

    def extra_statistics(self) -> Dict[str, float]:
        stats = super().extra_statistics()
        stats.update({f"nvdimm_{key}": value
                      for key, value in self.nvdimm.statistics().items()})
        return stats
