"""FlatFlash platforms (``flatflash-P`` and ``flatflash-M``).

FlatFlash [1] exposes the SSD as a byte-addressable device over MMIO: a
cache-line access travels the PCIe link to the SSD and is served by the
SSD-internal DRAM (if cached there) or by the flash itself.  Because the
access path is MMIO rather than NVMe, there is no queue parallelism, and
because a large part of the SSD-internal DRAM holds the FTL mapping table,
the effective cache is small (Section VII).

``flatflash-P`` keeps everything on the device (persistent but slow: the
paper quotes ~4.8 us per 64 B access).  ``flatflash-M`` promotes hot pages
into host DRAM, trading persistence for performance.

Batched replay note: the SSD-internal cache, the promotion tracker and the
flash channel timing make accesses order- and clock-dependent, so both
variants rely on the base class's exact sequential
:meth:`~repro.platforms.base.Platform.service_batch` fallback.
"""

from __future__ import annotations

from typing import Dict

from ..config import SystemConfig
from ..energy.accounting import EnergyAccount
from ..flash.ssd import SSD
from ..host.os_stack import PageCache
from ..interconnect.pcie import PCIeLink
from ..memory.nvdimm import NVDIMM
from ..units import KB
from ..workloads.trace import WorkloadTrace
from .base import MemoryServiceResult, Platform

_PAGE = KB(4)
_PROMOTION_THRESHOLD = 4  # accesses to a page before it is promoted to DRAM


class FlatFlashPlatform(Platform):
    """Byte-addressable SSD over MMIO, optionally with host-DRAM promotion."""

    def __init__(self, config: SystemConfig, mode: str = "persist") -> None:
        super().__init__(config)
        if mode not in ("persist", "memory"):
            raise ValueError(f"unknown FlatFlash mode {mode!r}")
        self.mode = mode
        self.name = "flatflash-P" if mode == "persist" else "flatflash-M"
        self.ssd = SSD(config.ssd)
        self.link = PCIeLink(config.pcie)
        # The SSD-internal DRAM doubles as the byte-access cache, minus the
        # mapping table share.
        data_bytes = int(config.ssd.dram_buffer_bytes
                         * (1.0 - config.ssd.mapping_table_fraction))
        self.device_cache = PageCache(data_bytes, _PAGE)
        self.host_cache = (PageCache(config.nvdimm.capacity_bytes, _PAGE)
                           if mode == "memory" else None)
        self.dram = NVDIMM(config.nvdimm) if mode == "memory" else None
        self._access_counts: Dict[int, int] = {}
        self._dram_busy_ns = 0.0
        self.promotions = 0

    def prepare(self, trace: WorkloadTrace) -> None:
        pages = min(self.ssd.logical_pages,
                    (trace.dataset_bytes + _PAGE - 1) // _PAGE)
        self.ssd.precondition(0, pages)

    # -- the MMIO datapath -------------------------------------------------------

    def service_memory_access(self, address: int, size_bytes: int,
                              is_write: bool, at_ns: float) -> MemoryServiceResult:
        page = address // _PAGE

        if self.host_cache is not None and self.host_cache.access(page, is_write):
            assert self.dram is not None
            result = self.dram.access(size_bytes, is_write)
            self._dram_busy_ns += result.latency_ns
            return MemoryServiceResult(latency_ns=result.latency_ns)

        # FlatFlash has no DMA engine on the access path: the CPU pulls data
        # cache line by cache line over MMIO, so a page-granular reference
        # costs one PCIe round trip per 64 B line (the ~4.8 us/64 B figure
        # the paper quotes), while the flash page itself is read only once.
        lines = max(1, size_bytes // 64)
        latency = self._device_access(page, min(size_bytes, 64), is_write, at_ns)
        if lines > 1:
            extra_line = self.link.transfer(64, at_ns + latency)
            per_line_ns = extra_line.latency_ns + self.config.ssd.dram_buffer_hit_ns
            latency += (lines - 1) * per_line_ns

        if self.host_cache is not None:
            count = self._access_counts.get(page, 0) + 1
            self._access_counts[page] = count
            if count >= _PROMOTION_THRESHOLD:
                # Promote the hot page: one 4 KB device read plus a DRAM fill.
                promote_io = self.ssd.read(page * _PAGE, _PAGE, at_ns + latency)
                transfer = self.link.transfer(_PAGE, promote_io.finish_ns)
                latency += (promote_io.finish_ns - (at_ns + latency)
                            + transfer.latency_ns) * 0.25  # mostly off the path
                self.host_cache.install(page, dirty=is_write)
                self._access_counts.pop(page, None)
                self.promotions += 1
        return MemoryServiceResult(latency_ns=latency)

    def _device_access(self, page: int, size_bytes: int, is_write: bool,
                       at_ns: float) -> float:
        """One MMIO cache-line access to the SSD across PCIe."""
        # The MMIO round trip always crosses PCIe with a small payload.
        mmio = self.link.transfer(max(64, size_bytes), at_ns)
        latency = mmio.latency_ns
        if self.device_cache.access(page, is_write):
            latency += self.config.ssd.dram_buffer_hit_ns
            return latency
        # Device-cache miss: the flash array serves a 4 KB page.
        if is_write:
            io = self.ssd.write(page * _PAGE, _PAGE, at_ns + latency)
        else:
            io = self.ssd.read(page * _PAGE, _PAGE, at_ns + latency)
        latency += io.finish_ns - (at_ns + latency)
        evicted = self.device_cache.install(page, dirty=is_write)
        if evicted is not None and evicted[1]:
            self.ssd.write(evicted[0] * _PAGE, _PAGE, io.finish_ns)
        return latency

    # -- energy -------------------------------------------------------------------

    def collect_energy(self, account: EnergyAccount) -> None:
        if self.dram is not None:
            account.charge_nvdimm(active_ns=self._dram_busy_ns,
                                  bytes_moved=self.dram.dram.bytes_total)
        account.charge_internal_dram(
            (self.device_cache.hits + self.device_cache.misses) * 64)
        account.charge_flash(self.ssd.fil.page_reads, self.ssd.fil.page_programs)
        account.charge_link(pcie_bytes=int(self.link.bytes_transferred))

    def extra_statistics(self) -> Dict[str, float]:
        stats = super().extra_statistics()
        stats.update({
            "device_cache_hit_rate": self.device_cache.hit_rate,
            "promotions": float(self.promotions),
        })
        if self.host_cache is not None:
            stats["host_cache_hit_rate"] = self.host_cache.hit_rate
        return stats
