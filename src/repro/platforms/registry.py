"""Platform registry: build any evaluated platform by its paper-legend name."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..config import SystemConfig, default_config
from .base import Platform
from .bypass import BypassPlatform
from .flatflash import FlatFlashPlatform
from .hams_platform import HAMSPlatform
from .mmap_platform import MmapPlatform
from .nvdimm_c import NvdimmCPlatform
from .optane import OptanePlatform
from .oracle import OraclePlatform

#: Platform names in the order Figure 16's legend lists them.
PLATFORM_NAMES: List[str] = [
    "mmap",
    "flatflash-P",
    "flatflash-M",
    "hams-LP",
    "hams-LE",
    "nvdimm-C",
    "optane-P",
    "optane-M",
    "hams-TP",
    "hams-TE",
    "oracle",
]

_FACTORIES: Dict[str, Callable[[SystemConfig], Platform]] = {
    "mmap": lambda config: MmapPlatform(config, ssd_kind="ull-flash"),
    "mmap-ull": lambda config: MmapPlatform(config, ssd_kind="ull-flash"),
    "mmap-nvme": lambda config: MmapPlatform(config, ssd_kind="nvme-ssd"),
    "mmap-sata": lambda config: MmapPlatform(config, ssd_kind="sata-ssd"),
    "flatflash-P": lambda config: FlatFlashPlatform(config, mode="persist"),
    "flatflash-M": lambda config: FlatFlashPlatform(config, mode="memory"),
    "optane-P": lambda config: OptanePlatform(config, mode="persist"),
    "optane-M": lambda config: OptanePlatform(config, mode="memory"),
    "nvdimm-C": lambda config: NvdimmCPlatform(config),
    "hams-LP": lambda config: HAMSPlatform(config, variant="hams-LP"),
    "hams-LE": lambda config: HAMSPlatform(config, variant="hams-LE"),
    "hams-TP": lambda config: HAMSPlatform(config, variant="hams-TP"),
    "hams-TE": lambda config: HAMSPlatform(config, variant="hams-TE"),
    "oracle": lambda config: OraclePlatform(config),
    "bypass-nvdimm": lambda config: BypassPlatform(config, strategy="nvdimm"),
    "bypass-ull": lambda config: BypassPlatform(config, strategy="ull"),
    "bypass-ull-buff": lambda config: BypassPlatform(config, strategy="ull-buff"),
}


def available_platforms() -> List[str]:
    """Every name :func:`create_platform` accepts."""
    return sorted(_FACTORIES)


def create_platform(name: str,
                    config: Optional[SystemConfig] = None) -> Platform:
    """Instantiate the platform called *name* with the given configuration.

    ``config`` defaults to the Table II system; experiments normally pass a
    configuration already shrunk by
    :func:`repro.workloads.registry.scale_system_config`.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; expected one of {available_platforms()}"
        ) from None
    return factory(config if config is not None else default_config())
