"""Platform registry: build any evaluated platform by its paper-legend name."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..config import SystemConfig, default_config
from .base import Platform
from .bypass import BypassPlatform
from .flatflash import FlatFlashPlatform
from .hams_platform import HAMSPlatform
from .mmap_platform import MmapPlatform
from .nvdimm_c import NvdimmCPlatform
from .optane import OptanePlatform
from .oracle import OraclePlatform

#: Platform names in the order Figure 16's legend lists them.
PLATFORM_NAMES: List[str] = [
    "mmap",
    "flatflash-P",
    "flatflash-M",
    "hams-LP",
    "hams-LE",
    "nvdimm-C",
    "optane-P",
    "optane-M",
    "hams-TP",
    "hams-TE",
    "oracle",
]

#: Each factory maps ``(config, **kwargs)`` to a platform; the keyword
#: arguments let run specs parameterise a registry entry (e.g. size the
#: oracle DIMM for a stress test) without bypassing the registry.
_FACTORIES: Dict[str, Callable[..., Platform]] = {
    "mmap": lambda config, **kw: MmapPlatform(config, ssd_kind="ull-flash", **kw),
    "mmap-ull": lambda config, **kw: MmapPlatform(config, ssd_kind="ull-flash", **kw),
    "mmap-nvme": lambda config, **kw: MmapPlatform(config, ssd_kind="nvme-ssd", **kw),
    "mmap-sata": lambda config, **kw: MmapPlatform(config, ssd_kind="sata-ssd", **kw),
    "flatflash-P": lambda config, **kw: FlatFlashPlatform(config, mode="persist", **kw),
    "flatflash-M": lambda config, **kw: FlatFlashPlatform(config, mode="memory", **kw),
    "optane-P": lambda config, **kw: OptanePlatform(config, mode="persist", **kw),
    "optane-M": lambda config, **kw: OptanePlatform(config, mode="memory", **kw),
    "nvdimm-C": lambda config, **kw: NvdimmCPlatform(config, **kw),
    "hams-LP": lambda config, **kw: HAMSPlatform(config, variant="hams-LP", **kw),
    "hams-LE": lambda config, **kw: HAMSPlatform(config, variant="hams-LE", **kw),
    "hams-TP": lambda config, **kw: HAMSPlatform(config, variant="hams-TP", **kw),
    "hams-TE": lambda config, **kw: HAMSPlatform(config, variant="hams-TE", **kw),
    "oracle": lambda config, **kw: OraclePlatform(config, **kw),
    "bypass-nvdimm": lambda config, **kw: BypassPlatform(config, strategy="nvdimm", **kw),
    "bypass-ull": lambda config, **kw: BypassPlatform(config, strategy="ull", **kw),
    "bypass-ull-buff": lambda config, **kw: BypassPlatform(config, strategy="ull-buff", **kw),
}


def available_platforms() -> List[str]:
    """Every name :func:`create_platform` accepts."""
    return sorted(_FACTORIES)


def create_platform(name: str,
                    config: Optional[SystemConfig] = None,
                    **kwargs) -> Platform:
    """Instantiate the platform called *name* with the given configuration.

    ``config`` defaults to the Table II system; experiments normally pass a
    configuration already shrunk by
    :func:`repro.workloads.registry.scale_system_config`.  Extra keyword
    arguments are forwarded to the platform constructor (used by run specs,
    e.g. ``create_platform("oracle", config, capacity_bytes=...)``).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; expected one of {available_platforms()}"
        ) from None
    return factory(config if config is not None else default_config(), **kwargs)
