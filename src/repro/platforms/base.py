"""Platform base class and the shared trace-replay loop.

A platform is a complete system configuration (CPU + caches + some memory
expansion scheme).  Running a workload trace on a platform produces a
:class:`RunResult` that carries every quantity the paper's figures plot:
application throughput (pages/s or SQL ops/s), the execution-time breakdown
(app / OS / SSD, Figure 17), the memory-delay breakdown (NVDIMM / DMA / SSD,
Figure 18), the energy breakdown (Figure 19), and IPC/MIPS for Figure 7b and
the headline claim.

The replay loop is identical across platforms: compute instructions retire
at the base CPI, fine-grained references filter through the on-chip caches,
and what misses goes off-chip.  Two execution strategies produce
bit-identical results:

* the legacy **scalar** loop hands each miss to
  :meth:`Platform.service_memory_access` one at a time, and
* the default **batched** loop walks the trace's columnar
  :class:`~repro.workloads.trace.AccessStream` chunk-at-a-time, filters each
  chunk through the caches in one call, gathers the misses into a
  :class:`MemoryRequestBatch` and hands the whole batch to
  :meth:`Platform.service_batch`.

``service_batch`` is the one new per-platform hook.  Its default
implementation replays the batch through the scalar
``service_memory_access`` hook while advancing the clock exactly as the
scalar loop would (so clock- and history-dependent platforms — mmap,
FlatFlash — are correct without any changes), the analytic platforms
override it with truly vectorized implementations, the DRAM-cache
platforms (NVDIMM-C, Optane memory mode, the ULL bypasses) combine an
order-exact batched LRU walk (:meth:`repro.host.os_stack.PageCache.access_batch`)
with :meth:`MemoryRequestBatch.service_page_cached`, and HAMS splits its
datapath into a clock-free tag classification plus clock-exact miss
replay (:meth:`repro.core.hams_controller.HAMSController.classify_batch`).  All batched
bookkeeping uses :func:`repro.numerics.sequential_add`, which reproduces the
scalar loop's left-to-right floating-point rounding bit for bit — the
equivalence is locked in by ``tests/test_batched_replay.py``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

import numpy as np

from ..config import SystemConfig
from ..energy.accounting import EnergyAccount, EnergyBreakdown
from ..energy.models import EnergyModel
from ..host.caches import CacheHierarchy
from ..host.cpu import CPUModel
from ..numerics import sequential_add
from ..workloads.trace import WorkloadTrace


@dataclass
class MemoryServiceResult:
    """What one off-chip memory access cost on a given platform.

    The three components are *additive* and classified the way Figure 17
    classifies them: ``latency_ns`` is the part charged to the application
    itself (the LD/ST stall), ``os_ns`` is software-stack time (page faults,
    context switches, file system, block layer, driver), and ``storage_ns``
    is raw device wait that the OS exposes to the application.  Platforms
    without OS involvement (HAMS, oracle, Optane) fold everything into
    ``latency_ns``.
    """

    latency_ns: float
    os_ns: float = 0.0
    storage_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_ns < 0 or self.os_ns < 0 or self.storage_ns < 0:
            raise ValueError("latencies cannot be negative")


@dataclass(frozen=True)
class MemoryRequest:
    """One off-chip memory request (the scalar view of a batch row)."""

    address: int
    size_bytes: int
    is_write: bool
    at_ns: float


@dataclass
class BatchTimeline:
    """Exact clock-reconstruction data attached to a request batch.

    ``addends`` is the full sequence of time increments the scalar replay
    loop would apply to its ``now`` clock over the originating trace chunk —
    compute phases, cache-hit latencies and one (initially placeholder) slot
    per off-chip request.  ``service_slots[j]`` is the index of request
    *j*'s slot: everything before it has already elapsed when the request
    issues, so a sequential consumer can recover each request's exact issue
    time, and the replay loop later fills the slots with the measured
    service costs and folds the whole sequence into its clock.
    """

    addends: np.ndarray
    service_slots: np.ndarray


class MemoryRequestBatch:
    """A columnar batch of off-chip memory requests.

    ``addresses`` / ``sizes`` / ``writes`` are equal-length columns,
    ``on_chip_ns`` is the on-chip (cache walk) latency already paid per
    request, and ``start_ns`` is the replay clock when the batch was formed.
    The optional :class:`BatchTimeline` lets :meth:`service_sequentially`
    reproduce the scalar replay loop's per-request issue times exactly;
    without it, requests are assumed back-to-back from ``start_ns``.

    ``tenant_ids`` is an optional int64 column tagging each request with
    the scenario tenant that issued it.  It is ``None`` for every
    non-scenario run; when present, the DRAM-cache platforms forward it to
    their page-cache walk for per-tenant attribution and partitioned-cache
    routing.  It never affects timing.
    """

    __slots__ = ("addresses", "sizes", "writes", "on_chip_ns", "start_ns",
                 "timeline", "tenant_ids")

    def __init__(self, addresses: np.ndarray, sizes: np.ndarray,
                 writes: np.ndarray, on_chip_ns: Optional[np.ndarray] = None,
                 start_ns: float = 0.0,
                 timeline: Optional[BatchTimeline] = None,
                 tenant_ids: Optional[np.ndarray] = None) -> None:
        self.addresses = np.asarray(addresses, dtype=np.int64)
        self.sizes = np.asarray(sizes, dtype=np.int64)
        self.writes = np.asarray(writes, dtype=bool)
        if on_chip_ns is None:
            on_chip_ns = np.zeros(len(self.addresses), dtype=np.float64)
        self.on_chip_ns = np.asarray(on_chip_ns, dtype=np.float64)
        self.start_ns = start_ns
        self.timeline = timeline
        if tenant_ids is not None:
            tenant_ids = np.asarray(tenant_ids, dtype=np.int64)
            if len(tenant_ids) != len(self.addresses):
                raise ValueError("tenant_ids must match the batch length")
        self.tenant_ids = tenant_ids
        if not (len(self.addresses) == len(self.sizes) == len(self.writes)
                == len(self.on_chip_ns)):
            raise ValueError("batch columns must be equal-length")

    def __len__(self) -> int:
        return len(self.addresses)

    def request(self, index: int) -> MemoryRequest:
        """Scalar view of one batch row (issue time = ``start_ns``)."""
        return MemoryRequest(address=int(self.addresses[index]),
                             size_bytes=int(self.sizes[index]),
                             is_write=bool(self.writes[index]),
                             at_ns=self.start_ns)

    def __iter__(self) -> Iterator[MemoryRequest]:
        return (self.request(index) for index in range(len(self)))

    def service_sequentially(self, scalar_service) -> "MemoryServiceBatch":
        """Drive *scalar_service* one request at a time, clock-exactly.

        This is the default :meth:`Platform.service_batch` engine: with a
        timeline it interleaves the chunk's compute/cache-hit time addends
        with the requests so every call sees the exact ``at_ns`` the scalar
        replay loop would have passed; without one, each request issues as
        soon as the previous one completes.
        """
        count = len(self)
        latency = np.empty(count, dtype=np.float64)
        os_ns = np.empty(count, dtype=np.float64)
        storage_ns = np.empty(count, dtype=np.float64)
        addresses = self.addresses.tolist()
        sizes = self.sizes.tolist()
        writes = self.writes.tolist()
        on_chip = self.on_chip_ns.tolist()
        now = self.start_ns
        if self.timeline is None:
            for j in range(count):
                result = scalar_service(addresses[j], sizes[j], writes[j],
                                        now)
                latency[j] = result.latency_ns
                os_ns[j] = result.os_ns
                storage_ns[j] = result.storage_ns
                now += (((on_chip[j] + result.latency_ns) + result.os_ns)
                        + result.storage_ns)
        else:
            addends = self.timeline.addends.tolist()
            slots = self.timeline.service_slots.tolist()
            cursor = 0
            for j in range(count):
                slot = slots[j]
                while cursor < slot:
                    now += addends[cursor]
                    cursor += 1
                result = scalar_service(addresses[j], sizes[j], writes[j],
                                        now)
                latency[j] = result.latency_ns
                os_ns[j] = result.os_ns
                storage_ns[j] = result.storage_ns
                now += (((on_chip[j] + result.latency_ns) + result.os_ns)
                        + result.storage_ns)
                cursor = slot + 1
        return MemoryServiceBatch(latency_ns=latency, os_ns=os_ns,
                                  storage_ns=storage_ns)

    def service_page_cached(self, hit_mask: np.ndarray,
                            hit_latency_ns: np.ndarray,
                            miss_indices: np.ndarray,
                            miss_service) -> "MemoryServiceBatch":
        """Fold a page-cache hit/miss split into a service batch, clock-exactly.

        The engine behind the DRAM-cache platforms' vectorized
        ``service_batch``: the caller classifies every request against its
        page cache (one :meth:`~repro.host.os_stack.PageCache.access_batch`
        walk) and computes the hits' clock-independent service latencies in
        one vectorized pass (``hit_latency_ns``, a full-length column whose
        values at miss positions are ignored); this method then walks only
        the misses, handing ``miss_service(k, index, now)`` — the *k*-th
        miss, batch row *index* — the exact issue clock the scalar replay
        loop would have passed, and expecting ``(latency_ns, os_ns,
        storage_ns)`` back.  The clock is reconstructed from the batch's
        :class:`BatchTimeline` by the same left-to-right float accumulation
        the scalar loop performs (hit slots are pre-filled with their
        on-chip + service addends), so clock- and history-dependent miss
        paths (SSD reads, link transfers) stay bit-identical while the hits
        never enter a Python loop.
        """
        count = len(self)
        latency = np.array(hit_latency_ns, dtype=np.float64, copy=True)
        os_ns = np.zeros(count, dtype=np.float64)
        storage_ns = np.zeros(count, dtype=np.float64)
        if self.timeline is not None:
            addends = self.timeline.addends.copy()
            slots = self.timeline.service_slots
        else:
            # No timeline: requests issue back to back, one addend each.
            addends = np.zeros(count, dtype=np.float64)
            slots = np.arange(count, dtype=np.int64)
        if len(miss_indices) == 0:
            return MemoryServiceBatch(latency_ns=latency, os_ns=os_ns,
                                      storage_ns=storage_ns)
        hit_indices = np.flatnonzero(hit_mask)
        addends[slots[hit_indices]] = (self.on_chip_ns[hit_indices]
                                       + latency[hit_indices])
        addends_list = None  # materialised lazily, for short-gap folds only
        miss_slots = slots[miss_indices].tolist()
        miss_on_chip = self.on_chip_ns[miss_indices].tolist()
        now = self.start_ns
        cursor = 0
        for k, (j, slot, on_chip) in enumerate(zip(miss_indices.tolist(),
                                                   miss_slots, miss_on_chip)):
            gap = slot - cursor
            if gap >= 64:
                # Long hit/compute stretch: one strict sequential fold.
                now = sequential_add(now, addends[cursor:slot])
            elif gap:
                if addends_list is None:
                    addends_list = addends.tolist()
                for addend in addends_list[cursor:slot]:
                    now += addend
            service_latency, service_os, service_storage = \
                miss_service(k, j, now)
            latency[j] = service_latency
            os_ns[j] = service_os
            storage_ns[j] = service_storage
            total = (((on_chip + service_latency) + service_os)
                     + service_storage)
            now += total
            cursor = slot + 1
        return MemoryServiceBatch(latency_ns=latency, os_ns=os_ns,
                                  storage_ns=storage_ns)


class MemoryServiceBatch:
    """Columnar result of servicing a :class:`MemoryRequestBatch`.

    The three columns mirror :class:`MemoryServiceResult`; ``os_ns`` /
    ``storage_ns`` default to zeros (the common case for hardware-managed
    platforms).
    """

    __slots__ = ("latency_ns", "os_ns", "storage_ns")

    def __init__(self, latency_ns: np.ndarray,
                 os_ns: Optional[np.ndarray] = None,
                 storage_ns: Optional[np.ndarray] = None) -> None:
        self.latency_ns = np.asarray(latency_ns, dtype=np.float64)
        count = len(self.latency_ns)
        self.os_ns = (np.zeros(count, dtype=np.float64) if os_ns is None
                      else np.asarray(os_ns, dtype=np.float64))
        self.storage_ns = (np.zeros(count, dtype=np.float64)
                           if storage_ns is None
                           else np.asarray(storage_ns, dtype=np.float64))
        if not (len(self.os_ns) == len(self.storage_ns) == count):
            raise ValueError("result columns must be equal-length")
        for column in (self.latency_ns, self.os_ns, self.storage_ns):
            if count and float(column.min()) < 0:
                raise ValueError("latencies cannot be negative")

    def __len__(self) -> int:
        return len(self.latency_ns)

    def result(self, index: int) -> MemoryServiceResult:
        """Scalar view of one result row."""
        return MemoryServiceResult(latency_ns=float(self.latency_ns[index]),
                                   os_ns=float(self.os_ns[index]),
                                   storage_ns=float(self.storage_ns[index]))


@dataclass
class RunResult:
    """Everything measured while replaying one trace on one platform."""

    platform: str
    workload: str
    suite: str
    operation_unit: str
    operations: float
    total_ns: float
    app_ns: float
    os_ns: float
    ssd_ns: float
    memory_stall_ns: float
    compute_ns: float
    instructions: int
    memory_accesses: int
    offchip_accesses: int
    ipc: float
    mips: float
    energy: EnergyBreakdown
    memory_delay: Dict[str, float] = field(default_factory=dict)
    extras: Dict[str, float] = field(default_factory=dict)
    #: Per-tenant statistics of a scenario run ({tenant name: snapshot}),
    #: plus an "aggregate" entry that is the exact merge of the tenant
    #: registries.  Empty for every non-scenario run — and deliberately
    #: kept out of ``extras`` so the scalar==batched golden comparisons
    #: and existing baselines are untouched.
    tenants: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def operations_per_second(self) -> float:
        if self.total_ns <= 0:
            return 0.0
        return self.operations / (self.total_ns / 1e9)

    @property
    def kilo_pages_per_second(self) -> float:
        """The Figure 16a metric (only meaningful for page-unit workloads)."""
        return self.operations_per_second / 1e3

    def breakdown_fractions(self) -> Dict[str, float]:
        """Normalised execution-time breakdown (Figure 17 categories)."""
        total = self.total_ns
        if total <= 0:
            return {"app": 0.0, "os": 0.0, "ssd": 0.0}
        return {
            "app": self.app_ns / total,
            "os": self.os_ns / total,
            "ssd": self.ssd_ns / total,
        }


class Platform(abc.ABC):
    """A complete simulated system able to replay workload traces."""

    #: Human-readable platform name (matches the paper's legend labels).
    name: str = "abstract"

    #: Default replay strategy; ``run(..., execution="scalar")`` forces the
    #: legacy per-access loop (the two are bit-identical).
    replay_mode: str = "batched"

    #: Accesses handed to the cache filter / service batch per chunk.
    replay_chunk_size: int = 4096

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.cpu = CPUModel(config.cpu)
        self.caches = CacheHierarchy(config.caches)

    # -- per-platform hooks -------------------------------------------------------

    @abc.abstractmethod
    def service_memory_access(self, address: int, size_bytes: int,
                              is_write: bool, at_ns: float) -> MemoryServiceResult:
        """Resolve one off-chip memory access starting at *at_ns*."""

    def service_batch(self, batch: MemoryRequestBatch) -> MemoryServiceBatch:
        """Resolve a whole batch of off-chip memory requests.

        The default drives :meth:`service_memory_access` one request at a
        time while advancing the clock exactly as the scalar replay loop
        would (via the batch's timeline), so platforms whose device timing
        depends on the clock or on request history — mmap, FlatFlash —
        inherit correct and bit-identical behaviour without any changes.
        Platforms whose service cost is clock-independent (oracle, Optane
        App Direct, the NVDIMM bypass) override this with truly vectorized
        implementations; the DRAM-cache platforms (NVDIMM-C, Optane
        memory mode, the ULL bypasses) override it with the batched
        page-cache walk + :meth:`MemoryRequestBatch.service_page_cached`
        fold, whose migration/miss chunks ride the batched flash
        submission API (:meth:`repro.flash.ssd.SSD.submit_batch`); and
        HAMS overrides it with the clock-free tag-classification walk in
        :class:`repro.platforms.hams_platform.HAMSPlatform`.
        """
        return batch.service_sequentially(self.service_memory_access)

    @abc.abstractmethod
    def collect_energy(self, account: EnergyAccount) -> None:
        """Populate *account* with the device activity of the finished run."""

    def energy_model(self) -> EnergyModel:
        """Default energy model; platforms without an SSD-internal DRAM override."""
        return EnergyModel(self.config.energy,
                           self.config.nvdimm.capacity_bytes,
                           ssd_internal_dram_present=True)

    def memory_delay_breakdown(self) -> Dict[str, float]:
        """Figure 18 components; platforms that track them override this."""
        return {}

    def prepare(self, trace: WorkloadTrace) -> None:
        """Hook called before replay (preconditioning, warm data placement)."""

    # -- the shared replay loop -------------------------------------------------------

    def page_caches(self) -> list:
        """Attribute names of this platform's partitionable page caches.

        The scenario engine uses this to install per-tenant cache
        partitions and to harvest per-tenant hit/miss/pollution counters.
        Platforms whose datapath includes an LRU :class:`~repro.host.
        os_stack.PageCache` (NVDIMM-C, Optane memory mode, the buffered
        ULL bypass) override it; the default — no partitionable cache —
        is correct for everything else.
        """
        return []

    def run(self, trace: WorkloadTrace, *,
            execution: Optional[str] = None,
            observer: Optional[object] = None) -> RunResult:
        """Replay *trace* and return the full measurement record.

        ``execution`` selects the replay strategy: ``"batched"`` (the
        default) or ``"scalar"``.  Both produce bit-identical results; the
        scalar loop exists as the reference implementation and for the
        equivalence tests and throughput benchmarks that compare the two.

        ``observer``, when given, receives ``on_chunk(chunk, stall_ns,
        miss_indices, service)`` after each replayed chunk — the chunk's
        per-access memory-stall addends, its off-chip positions and the
        resolved :class:`MemoryServiceBatch` (``None`` when the chunk had
        no misses).  Observation is read-only and batched-only; the
        scenario engine rides it for per-tenant attribution.
        """
        mode = execution if execution is not None else self.replay_mode
        if mode == "batched":
            return self._run_batched(trace, observer=observer)
        if mode == "scalar":
            if observer is not None:
                raise ValueError(
                    "replay observers require the batched execution mode")
            return self._run_scalar(trace)
        raise ValueError(f"unknown execution mode {mode!r}; "
                         f"expected 'batched' or 'scalar'")

    def _run_scalar(self, trace: WorkloadTrace) -> RunResult:
        """The reference per-access replay loop."""
        self.prepare(trace)
        now = 0.0
        compute_per_access = trace.compute_instructions_per_access
        cache_line = self.config.caches.line_size
        offchip = 0
        stream = trace.stream

        for address, size_bytes, is_write in zip(stream.addresses.tolist(),
                                                 stream.sizes.tolist(),
                                                 stream.writes.tolist()):
            # Compute phase between memory references.
            compute_instructions = int(compute_per_access)
            if compute_instructions:
                now += self.cpu.execute_compute(compute_instructions)

            # Page-granular references (the mmap microbenchmark) stream
            # through the caches without reuse, so they are treated as
            # off-chip accesses directly; fine-grained references filter
            # through L1/L2 first.
            if size_bytes <= cache_line:
                cache_result = self.caches.access(address, is_write)
                if not cache_result.is_miss:
                    now += self.cpu.execute_memory(cache_result.latency_ns)
                    continue
                on_chip_ns = cache_result.latency_ns
            else:
                self.caches.record_bypass()
                on_chip_ns = self.config.caches.l2_latency_ns

            offchip += 1
            service = self.service_memory_access(address, size_bytes,
                                                 is_write, now)
            stall_ns = on_chip_ns + service.latency_ns
            self.cpu.execute_memory(stall_ns)
            self.cpu.charge_os(service.os_ns)
            self.cpu.charge_storage(service.storage_ns)
            now += stall_ns + service.os_ns + service.storage_ns

        return self._build_result(trace, now, offchip)

    def _run_batched(self, trace: WorkloadTrace,
                     observer: Optional[object] = None) -> RunResult:
        """Chunk-at-a-time replay over the trace's columnar stream.

        Per chunk: one cache-filter pass classifies every reference, the
        misses form a :class:`MemoryRequestBatch` resolved by one
        :meth:`service_batch` call, and all CPU/clock accounting folds in
        through :func:`~repro.numerics.sequential_add`, which reproduces the
        scalar loop's floating-point rounding exactly.
        """
        self.prepare(trace)
        account = self.cpu.account
        compute_instructions = int(trace.compute_instructions_per_access)
        # Same expression execute_compute evaluates, hoisted out of the loop.
        compute_ns = (compute_instructions * self.cpu.config.base_cpi
                      * self.cpu.cycle_ns)
        cache_line = self.config.caches.line_size
        l2_latency = self.config.caches.l2_latency_ns
        now = 0.0
        offchip = 0

        for chunk in trace.stream.chunks(self.replay_chunk_size):
            count = len(chunk)
            # y[i] starts as the on-chip latency of reference i and ends as
            # its memory-stall addend (hits keep the cache latency, misses
            # are overwritten with on-chip + service latency).
            miss, y = self._filter_chunk(chunk, cache_line, l2_latency)
            miss_indices = np.flatnonzero(miss)
            misses = len(miss_indices)

            # The scalar loop advances its clock with one addend per access
            # (plus one compute addend when the workload has a compute
            # phase); reproduce that exact sequence, with the miss slots
            # filled in after the batch resolves.
            if compute_instructions:
                addends = np.empty(2 * count, dtype=np.float64)
                addends[0::2] = compute_ns
                addends[1::2] = y
                slots = 2 * miss_indices + 1
            else:
                addends = y.copy()
                slots = miss_indices

            tenant_tags = getattr(chunk, "tenants", None)
            results = None
            if misses:
                on_chip = y[miss_indices].copy()
                batch = MemoryRequestBatch(
                    addresses=chunk.addresses[miss_indices],
                    sizes=chunk.sizes[miss_indices],
                    writes=chunk.writes[miss_indices],
                    on_chip_ns=on_chip,
                    start_ns=now,
                    timeline=BatchTimeline(addends=addends,
                                           service_slots=slots),
                    tenant_ids=(None if tenant_tags is None
                                else tenant_tags[miss_indices]))
                results = self.service_batch(batch)
                stall = on_chip + results.latency_ns
                addends[slots] = (stall + results.os_ns) + results.storage_ns
                y[miss_indices] = stall
                account.os_ns = sequential_add(account.os_ns, results.os_ns)
                account.storage_ns = sequential_add(account.storage_ns,
                                                    results.storage_ns)
                offchip += misses

            now = sequential_add(now, addends)
            account.memory_stall_ns = sequential_add(account.memory_stall_ns,
                                                     y)
            if compute_instructions:
                account.compute_ns = sequential_add(
                    account.compute_ns,
                    np.full(count, compute_ns, dtype=np.float64))
                account.instructions += count * compute_instructions
            account.instructions += count
            account.memory_instructions += count
            if observer is not None:
                observer.on_chunk(chunk, y, miss_indices, results)

        return self._build_result(trace, now, offchip)

    def _filter_chunk(self, chunk, cache_line: int, l2_latency: float):
        """Classify one chunk: full-miss mask + on-chip latency per access."""
        sizes = chunk.sizes
        count = len(chunk)
        fine = sizes <= cache_line
        if fine.all():
            return self.caches.access_batch(chunk.addresses, chunk.writes)
        if not fine.any():
            self.caches.record_bypass(count)
            return (np.ones(count, dtype=bool),
                    np.full(count, l2_latency, dtype=np.float64))
        # Mixed granularity inside one chunk (not produced by the current
        # generators): fall back to an order-preserving per-access walk.
        miss = np.empty(count, dtype=bool)
        latency = np.empty(count, dtype=np.float64)
        for index, (address, size_bytes, is_write) in enumerate(
                zip(chunk.addresses.tolist(), sizes.tolist(),
                    chunk.writes.tolist())):
            if size_bytes <= cache_line:
                result = self.caches.access(address, is_write)
                miss[index] = result.is_miss
                latency[index] = result.latency_ns
            else:
                self.caches.record_bypass()
                miss[index] = True
                latency[index] = l2_latency
        return miss, latency

    def _build_result(self, trace: WorkloadTrace, now: float,
                      offchip: int) -> RunResult:
        """Finalise accounting and energy into the RunResult record."""
        account = self.cpu.account
        total_ns = max(now, account.total_ns)

        energy_account = EnergyAccount()
        energy_account.charge_cpu(busy_ns=account.compute_ns + account.os_ns,
                                  idle_ns=0.0)
        self.collect_energy(energy_account)
        energy_account.finalise(total_ns)
        energy = energy_account.breakdown(self.energy_model())

        return RunResult(
            platform=self.name,
            workload=trace.name,
            suite=trace.suite,
            operation_unit=trace.operation_unit,
            operations=trace.operations,
            total_ns=total_ns,
            app_ns=account.app_ns,
            os_ns=account.os_ns,
            ssd_ns=account.storage_ns,
            memory_stall_ns=account.memory_stall_ns,
            compute_ns=account.compute_ns,
            instructions=account.instructions,
            memory_accesses=trace.memory_access_count,
            offchip_accesses=offchip,
            ipc=self.cpu.ipc,
            mips=self.cpu.mips,
            energy=energy,
            memory_delay=self.memory_delay_breakdown(),
            extras=self.extra_statistics(),
        )

    def extra_statistics(self) -> Dict[str, float]:
        """Additional per-platform statistics attached to the result."""
        return dict(self.caches.statistics())
