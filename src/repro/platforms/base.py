"""Platform base class and the shared trace-replay loop.

A platform is a complete system configuration (CPU + caches + some memory
expansion scheme).  Running a workload trace on a platform produces a
:class:`RunResult` that carries every quantity the paper's figures plot:
application throughput (pages/s or SQL ops/s), the execution-time breakdown
(app / OS / SSD, Figure 17), the memory-delay breakdown (NVDIMM / DMA / SSD,
Figure 18), the energy breakdown (Figure 19), and IPC/MIPS for Figure 7b and
the headline claim.

The replay loop is identical across platforms: compute instructions retire
at the base CPI, fine-grained references filter through the on-chip caches,
and what misses is handed to :meth:`Platform.service_memory_access`, the one
method each platform implements differently.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..config import SystemConfig
from ..energy.accounting import EnergyAccount, EnergyBreakdown
from ..energy.models import EnergyModel
from ..host.caches import CacheHierarchy
from ..host.cpu import CPUModel
from ..workloads.trace import WorkloadTrace


@dataclass
class MemoryServiceResult:
    """What one off-chip memory access cost on a given platform.

    The three components are *additive* and classified the way Figure 17
    classifies them: ``latency_ns`` is the part charged to the application
    itself (the LD/ST stall), ``os_ns`` is software-stack time (page faults,
    context switches, file system, block layer, driver), and ``storage_ns``
    is raw device wait that the OS exposes to the application.  Platforms
    without OS involvement (HAMS, oracle, Optane) fold everything into
    ``latency_ns``.
    """

    latency_ns: float
    os_ns: float = 0.0
    storage_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_ns < 0 or self.os_ns < 0 or self.storage_ns < 0:
            raise ValueError("latencies cannot be negative")


@dataclass
class RunResult:
    """Everything measured while replaying one trace on one platform."""

    platform: str
    workload: str
    suite: str
    operation_unit: str
    operations: float
    total_ns: float
    app_ns: float
    os_ns: float
    ssd_ns: float
    memory_stall_ns: float
    compute_ns: float
    instructions: int
    memory_accesses: int
    offchip_accesses: int
    ipc: float
    mips: float
    energy: EnergyBreakdown
    memory_delay: Dict[str, float] = field(default_factory=dict)
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def operations_per_second(self) -> float:
        if self.total_ns <= 0:
            return 0.0
        return self.operations / (self.total_ns / 1e9)

    @property
    def kilo_pages_per_second(self) -> float:
        """The Figure 16a metric (only meaningful for page-unit workloads)."""
        return self.operations_per_second / 1e3

    def breakdown_fractions(self) -> Dict[str, float]:
        """Normalised execution-time breakdown (Figure 17 categories)."""
        total = self.total_ns
        if total <= 0:
            return {"app": 0.0, "os": 0.0, "ssd": 0.0}
        return {
            "app": self.app_ns / total,
            "os": self.os_ns / total,
            "ssd": self.ssd_ns / total,
        }


class Platform(abc.ABC):
    """A complete simulated system able to replay workload traces."""

    #: Human-readable platform name (matches the paper's legend labels).
    name: str = "abstract"

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.cpu = CPUModel(config.cpu)
        self.caches = CacheHierarchy(config.caches)

    # -- per-platform hooks -------------------------------------------------------

    @abc.abstractmethod
    def service_memory_access(self, address: int, size_bytes: int,
                              is_write: bool, at_ns: float) -> MemoryServiceResult:
        """Resolve one off-chip memory access starting at *at_ns*."""

    @abc.abstractmethod
    def collect_energy(self, account: EnergyAccount) -> None:
        """Populate *account* with the device activity of the finished run."""

    def energy_model(self) -> EnergyModel:
        """Default energy model; platforms without an SSD-internal DRAM override."""
        return EnergyModel(self.config.energy,
                           self.config.nvdimm.capacity_bytes,
                           ssd_internal_dram_present=True)

    def memory_delay_breakdown(self) -> Dict[str, float]:
        """Figure 18 components; platforms that track them override this."""
        return {}

    def prepare(self, trace: WorkloadTrace) -> None:
        """Hook called before replay (preconditioning, warm data placement)."""

    # -- the shared replay loop -------------------------------------------------------

    def run(self, trace: WorkloadTrace) -> RunResult:
        """Replay *trace* and return the full measurement record."""
        self.prepare(trace)
        now = 0.0
        compute_per_access = trace.compute_instructions_per_access
        cache_line = self.config.caches.line_size
        offchip = 0

        for access in trace.accesses:
            # Compute phase between memory references.
            compute_instructions = int(compute_per_access)
            if compute_instructions:
                now += self.cpu.execute_compute(compute_instructions)

            # Page-granular references (the mmap microbenchmark) stream
            # through the caches without reuse, so they are treated as
            # off-chip accesses directly; fine-grained references filter
            # through L1/L2 first.
            if access.size_bytes <= cache_line:
                cache_result = self.caches.access(access.address, access.is_write)
                if not cache_result.is_miss:
                    now += self.cpu.execute_memory(cache_result.latency_ns)
                    continue
                on_chip_ns = cache_result.latency_ns
            else:
                self.caches.memory_accesses += 1
                self.caches.accesses += 1
                on_chip_ns = self.config.caches.l2_latency_ns

            offchip += 1
            service = self.service_memory_access(access.address,
                                                 access.size_bytes,
                                                 access.is_write, now)
            stall_ns = on_chip_ns + service.latency_ns
            self.cpu.execute_memory(stall_ns)
            self.cpu.charge_os(service.os_ns)
            self.cpu.charge_storage(service.storage_ns)
            now += stall_ns + service.os_ns + service.storage_ns

        account = self.cpu.account
        total_ns = max(now, account.total_ns)

        energy_account = EnergyAccount()
        energy_account.charge_cpu(busy_ns=account.compute_ns + account.os_ns,
                                  idle_ns=0.0)
        self.collect_energy(energy_account)
        energy_account.finalise(total_ns)
        energy = energy_account.breakdown(self.energy_model())

        return RunResult(
            platform=self.name,
            workload=trace.name,
            suite=trace.suite,
            operation_unit=trace.operation_unit,
            operations=trace.operations,
            total_ns=total_ns,
            app_ns=account.app_ns,
            os_ns=account.os_ns,
            ssd_ns=account.storage_ns,
            memory_stall_ns=account.memory_stall_ns,
            compute_ns=account.compute_ns,
            instructions=account.instructions,
            memory_accesses=trace.memory_access_count,
            offchip_accesses=offchip,
            ipc=self.cpu.ipc,
            mips=self.cpu.mips,
            energy=energy,
            memory_delay=self.memory_delay_breakdown(),
            extras=self.extra_statistics(),
        )

    def extra_statistics(self) -> Dict[str, float]:
        """Additional per-platform statistics attached to the result."""
        return dict(self.caches.statistics())
