"""NVDIMM-C platform: flash on the DRAM PHY, migration only during refresh.

NVDIMM-C [42] connects a flash device to the DRAM physical interface so it
shares the memory channel with DRAM, using the DRAM as a cache of the flash.
To keep the memory controller and the on-DIMM SSD controller from competing
for the channel, data migration between DRAM and flash is only allowed
during DRAM refresh periods — which stretches a single page fetch to as much
as ~48 us even though the Z-NAND read itself takes 3 us (Section VI-B).
"""

from __future__ import annotations

from typing import Dict

from ..config import SystemConfig
from ..energy.accounting import EnergyAccount
from ..flash.ssd import SSD
from ..host.os_stack import PageCache
from ..memory.nvdimm import NVDIMM
from ..units import KB, us
from ..workloads.trace import WorkloadTrace
from .base import MemoryServiceResult, Platform

_PAGE = KB(4)


class NvdimmCPlatform(Platform):
    """DRAM-cached flash DIMM with refresh-window-limited migration.

    The platform deliberately keeps the base class's exact sequential
    :meth:`~repro.platforms.base.Platform.service_batch`: its DRAM cache is
    a stateful LRU whose hit/miss interleaving, and its migration reads'
    dependence on the request clock and SSD channel history, make every
    request order- and time-dependent — the properties the vectorized
    overrides (oracle, Optane App Direct, NVDIMM bypass) are free of.
    """

    name = "nvdimm-C"

    def __init__(self, config: SystemConfig,
                 migration_latency_ns: float = us(48),
                 migration_granularity_bytes: int = KB(64)) -> None:
        super().__init__(config)
        self.dram = NVDIMM(config.nvdimm)
        self.ssd = SSD(config.ssd)
        self.dram_cache = PageCache(config.nvdimm.cacheable_bytes, _PAGE)
        # The paper quotes up to 48 us to move data for one miss because the
        # transfer must wait for (and fit into) DRAM refresh windows; the
        # on-DIMM controller migrates a larger chunk per window so the cost
        # is amortised over the OS pages it covers.
        self.migration_latency_ns = migration_latency_ns
        self.migration_granularity_bytes = migration_granularity_bytes
        self._pages_per_migration = max(1, migration_granularity_bytes // _PAGE)
        self._dram_busy_ns = 0.0
        self.migrations = 0

    def prepare(self, trace: WorkloadTrace) -> None:
        pages = min(self.ssd.logical_pages,
                    (trace.dataset_bytes + _PAGE - 1) // _PAGE)
        self.ssd.precondition(0, pages)

    def service_memory_access(self, address: int, size_bytes: int,
                              is_write: bool, at_ns: float) -> MemoryServiceResult:
        page = address // _PAGE
        if self.dram_cache.access(page, is_write):
            result = self.dram.access(size_bytes, is_write)
            self._dram_busy_ns += result.latency_ns
            return MemoryServiceResult(latency_ns=result.latency_ns)

        # Miss: a whole migration chunk moves from flash to DRAM, but only
        # during refresh windows — the flash read is cheap, the wait is not.
        self.migrations += 1
        chunk_first = (page // self._pages_per_migration) * self._pages_per_migration
        io = self.ssd.read(chunk_first * _PAGE,
                           self.migration_granularity_bytes, at_ns)
        device_ns = io.finish_ns - at_ns
        migration_ns = max(self.migration_latency_ns, device_ns)

        for offset in range(self._pages_per_migration):
            evicted = self.dram_cache.install(chunk_first + offset,
                                              dirty=is_write and offset == 0)
            if evicted is not None and evicted[1]:
                self.ssd.write(evicted[0] * _PAGE, _PAGE, at_ns + migration_ns)
                migration_ns += self.migration_latency_ns * 0.1  # mostly overlapped

        served = self.dram.access(size_bytes, is_write)
        self._dram_busy_ns += served.latency_ns
        return MemoryServiceResult(latency_ns=migration_ns + served.latency_ns)

    def collect_energy(self, account: EnergyAccount) -> None:
        account.charge_nvdimm(active_ns=self._dram_busy_ns,
                              bytes_moved=self.dram.dram.bytes_total)
        account.charge_flash(self.ssd.fil.page_reads, self.ssd.fil.page_programs)
        account.charge_link(ddr_bytes=self.migrations * _PAGE)

    def extra_statistics(self) -> Dict[str, float]:
        stats = super().extra_statistics()
        stats.update({
            "dram_cache_hit_rate": self.dram_cache.hit_rate,
            "migrations": float(self.migrations),
        })
        return stats
