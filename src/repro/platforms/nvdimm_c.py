"""NVDIMM-C platform: flash on the DRAM PHY, migration only during refresh.

NVDIMM-C [42] connects a flash device to the DRAM physical interface so it
shares the memory channel with DRAM, using the DRAM as a cache of the flash.
To keep the memory controller and the on-DIMM SSD controller from competing
for the channel, data migration between DRAM and flash is only allowed
during DRAM refresh periods — which stretches a single page fetch to as much
as ~48 us even though the Z-NAND read itself takes 3 us (Section VI-B).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..config import SystemConfig
from ..energy.accounting import EnergyAccount
from ..flash.ssd import IORequestBatch, SSD
from ..host.os_stack import PageCache
from ..memory.nvdimm import NVDIMM
from ..numerics import sequential_add
from ..units import KB, us
from ..workloads.trace import WorkloadTrace
from .base import (
    MemoryRequestBatch,
    MemoryServiceBatch,
    MemoryServiceResult,
    Platform,
)

_PAGE = KB(4)


class NvdimmCPlatform(Platform):
    """DRAM-cached flash DIMM with refresh-window-limited migration.

    The DRAM cache is a stateful LRU whose hit/miss interleaving — and
    whose migration reads' dependence on the request clock and SSD channel
    history — make every request order- and time-dependent.
    :meth:`service_batch` nevertheless vectorizes the replay: one
    order-exact :meth:`~repro.host.os_stack.PageCache.access_batch` walk
    classifies the whole batch and captures the per-miss eviction schedule,
    the DRAM latencies fold in one vectorized
    :meth:`~repro.memory.nvdimm.NVDIMM.access_batch` call, and only the
    misses — whose migrations genuinely depend on the clock — replay
    against the SSD at exactly reconstructed issue times
    (:meth:`~repro.platforms.base.MemoryRequestBatch.service_page_cached`).
    """

    name = "nvdimm-C"

    def __init__(self, config: SystemConfig,
                 migration_latency_ns: float = us(48),
                 migration_granularity_bytes: int = KB(64)) -> None:
        super().__init__(config)
        self.dram = NVDIMM(config.nvdimm)
        self.ssd = SSD(config.ssd)
        self.dram_cache = PageCache(config.nvdimm.cacheable_bytes, _PAGE)
        # The paper quotes up to 48 us to move data for one miss because the
        # transfer must wait for (and fit into) DRAM refresh windows; the
        # on-DIMM controller migrates a larger chunk per window so the cost
        # is amortised over the OS pages it covers.
        self.migration_latency_ns = migration_latency_ns
        self.migration_granularity_bytes = migration_granularity_bytes
        self._pages_per_migration = max(1, migration_granularity_bytes // _PAGE)
        self._dram_busy_ns = 0.0
        self.migrations = 0

    def prepare(self, trace: WorkloadTrace) -> None:
        pages = min(self.ssd.logical_pages,
                    (trace.dataset_bytes + _PAGE - 1) // _PAGE)
        self.ssd.precondition(0, pages)

    def service_memory_access(self, address: int, size_bytes: int,
                              is_write: bool, at_ns: float) -> MemoryServiceResult:
        page = address // _PAGE
        if self.dram_cache.access(page, is_write):
            result = self.dram.access(size_bytes, is_write)
            self._dram_busy_ns += result.latency_ns
            return MemoryServiceResult(latency_ns=result.latency_ns)

        # Miss: a whole migration chunk moves from flash to DRAM, but only
        # during refresh windows — the flash read is cheap, the wait is not.
        self.migrations += 1
        evictions = self._install_migration_chunk(page, is_write)
        migration_ns = self._migrate_chunk(page, evictions, at_ns)
        served = self.dram.access(size_bytes, is_write)
        self._dram_busy_ns += served.latency_ns
        return MemoryServiceResult(latency_ns=migration_ns + served.latency_ns)

    def _chunk_first(self, page: int) -> int:
        """First OS page of the migration chunk covering *page*."""
        return (page // self._pages_per_migration) * self._pages_per_migration

    def _install_migration_chunk(self, page: int,
                                 is_write: bool) -> List[Tuple[int, bool]]:
        """Install the migration chunk covering *page*; returns evictions.

        The on-DIMM controller moves a whole chunk per refresh window, so a
        miss installs every OS page the chunk covers (the faulting access's
        dirtiness lands on the chunk head, as the controller tracks
        dirtiness at migration granularity).  Also the install policy of the
        batched :meth:`~repro.host.os_stack.PageCache.access_batch` walk.
        """
        chunk_first = self._chunk_first(page)
        evictions: List[Tuple[int, bool]] = []
        for offset in range(self._pages_per_migration):
            evicted = self.dram_cache.install(chunk_first + offset,
                                              dirty=is_write and offset == 0)
            if evicted is not None:
                evictions.append(evicted)
        return evictions

    def _migrate_chunk(self, page: int, evictions: List[Tuple[int, bool]],
                       at_ns: float) -> float:
        """Charge one refresh-window migration plus its dirty writebacks."""
        chunk_first = self._chunk_first(page)
        io = self.ssd.read(chunk_first * _PAGE,
                           self.migration_granularity_bytes, at_ns)
        device_ns = io.finish_ns - at_ns
        migration_ns = max(self.migration_latency_ns, device_ns)
        for victim, victim_dirty in evictions:
            if victim_dirty:
                self.ssd.write(victim * _PAGE, _PAGE, at_ns + migration_ns)
                migration_ns += self.migration_latency_ns * 0.1  # mostly overlapped
        return migration_ns

    def _migrate_chunk_batched(self, page: int,
                               evictions: List[Tuple[int, bool]],
                               at_ns: float) -> float:
        """The batch-API route of :meth:`_migrate_chunk` (bit-identical).

        The chunk read goes through one lean
        :meth:`~repro.flash.ssd.SSD.submit_batch` call, and — because a
        victim writeback's completion never feeds back into the migration
        latency (the scalar loop ignores its result and bumps the clock by
        a fixed overlap term) — every dirty writeback's submission clock is
        known up front, so they all fold into *one* open-loop batch instead
        of per-victim scalar submissions.
        """
        chunk_first = self._chunk_first(page)
        read = self.ssd.submit_batch(IORequestBatch(
            is_write=False, byte_offset=[chunk_first * _PAGE],
            size_bytes=self.migration_granularity_bytes, submit_ns=at_ns,
            record_details=False))
        device_ns = read.finish_ns[0] - at_ns
        migration_ns = max(self.migration_latency_ns, device_ns)
        offsets: List[int] = []
        submits: List[float] = []
        bump = self.migration_latency_ns * 0.1  # mostly overlapped
        for victim, victim_dirty in evictions:
            if victim_dirty:
                offsets.append(victim * _PAGE)
                submits.append(at_ns + migration_ns)
                migration_ns += bump
        if offsets:
            self.ssd.submit_batch(IORequestBatch(
                is_write=True, byte_offset=offsets, size_bytes=_PAGE,
                submit_ns=submits, record_details=False))
        return migration_ns

    def service_batch(self, batch: MemoryRequestBatch) -> MemoryServiceBatch:
        """Vectorized service around the order-exact batched LRU walk.

        One :meth:`~repro.host.os_stack.PageCache.access_batch` walk (with
        the chunk-install policy) yields the hit mask and the per-miss
        eviction schedule, the DRAM cost of every request folds in one
        vectorized call, and only the misses replay against the SSD at
        their exact scalar-loop issue clocks.  Bit-identical to the scalar
        path — ``tests/test_batched_replay.py`` is the contract.
        """
        if len(batch) == 0:
            return MemoryServiceBatch(latency_ns=np.empty(0))
        pages = batch.addresses // _PAGE
        walk = self.dram_cache.access_batch(
            pages, batch.writes, install=self._install_migration_chunk,
            tenants=batch.tenant_ids)
        dram_latency = self.dram.access_batch(batch.sizes, batch.writes)
        self._dram_busy_ns = sequential_add(self._dram_busy_ns, dram_latency)
        self.migrations += walk.miss_count
        # Only the misses read the scalar views; all-hit chunks skip them.
        pages_list = pages.tolist() if walk.miss_count else []
        dram_latency_list = dram_latency.tolist() if walk.miss_count else []
        evictions = walk.evictions

        def miss_service(k: int, index: int, now: float):
            migration_ns = self._migrate_chunk_batched(pages_list[index],
                                                       evictions[k], now)
            return migration_ns + dram_latency_list[index], 0.0, 0.0

        return batch.service_page_cached(walk.hits, dram_latency,
                                         walk.miss_indices, miss_service)

    def page_caches(self) -> list:
        return ["dram_cache"]

    def collect_energy(self, account: EnergyAccount) -> None:
        account.charge_nvdimm(active_ns=self._dram_busy_ns,
                              bytes_moved=self.dram.dram.bytes_total)
        account.charge_flash(self.ssd.fil.page_reads, self.ssd.fil.page_programs)
        account.charge_link(ddr_bytes=self.migrations * _PAGE)

    def extra_statistics(self) -> Dict[str, float]:
        stats = super().extra_statistics()
        stats.update(self.dram_cache.statistics("dram_cache"))
        stats["migrations"] = float(self.migrations)
        return stats
