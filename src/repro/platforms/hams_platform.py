"""HAMS platforms: the four evaluated configurations of the proposed design.

``hams-LP`` / ``hams-LE`` wrap the loosely-coupled (baseline) controller —
NVDIMM on DDR4, ULL-Flash behind PCIe/NVMe — in persist and extend mode;
``hams-TP`` / ``hams-TE`` wrap the aggressively integrated controller with
the register-based DDR4 interface and no SSD-internal DRAM.

From the platform's point of view HAMS is just memory: every off-chip
reference is handed to the :class:`~repro.core.hams_controller.HAMSController`
and the full latency is charged to the application (the paper's Figure 17
classifies HAMS storage accesses as LD/ST latency, not as OS or SSD time).

Batched replay note: the controller's tag array, eviction journal and
ULL-Flash queues make each access depend on request order and issue time —
but the *classification* (tag probes, dirty bits, direct-mapped installs)
is clock-free.  :meth:`HAMSPlatform.service_batch` therefore splits the
datapath: one scalar-order
:meth:`~repro.core.hams_controller.HAMSController.classify_batch` walk
resolves every hit/miss, victim and NVDIMM charge up front, a tight
timeline-cursor fold reproduces each hit's clock-relative latency bit for
bit, and only the misses — engine waits, NVMe issues, background-eviction
parking — replay against the device at their exact scalar issue clocks
through :meth:`~repro.core.hams_controller.HAMSController.replay_miss`.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..config import SystemConfig
from ..core.hams_controller import HAMSController
from ..core.persistency import RecoveryReport
from ..energy.accounting import EnergyAccount
from ..energy.models import EnergyModel
from ..workloads.trace import WorkloadTrace
from .base import (
    MemoryRequestBatch,
    MemoryServiceBatch,
    MemoryServiceResult,
    Platform,
)

_VARIANTS = {
    "hams-LP": ("loose", "persist"),
    "hams-LE": ("loose", "extend"),
    "hams-TP": ("tight", "persist"),
    "hams-TE": ("tight", "extend"),
}


class HAMSPlatform(Platform):
    """A system whose entire memory expansion is one HAMS controller."""

    def __init__(self, config: SystemConfig, variant: str = "hams-TE") -> None:
        if variant not in _VARIANTS:
            raise ValueError(
                f"unknown HAMS variant {variant!r}; expected one of "
                f"{sorted(_VARIANTS)}")
        integration, mode = _VARIANTS[variant]
        config = config.with_hams(integration=integration, mode=mode)
        super().__init__(config)
        self.variant = variant
        self.name = variant
        self.controller = HAMSController(config)

    # -- preparation -------------------------------------------------------------

    def prepare(self, trace: WorkloadTrace) -> None:
        """Precondition the ULL-Flash so the dataset is fully mapped."""
        page_size = self.controller.ssd.page_size
        pages = min(self.controller.ssd.logical_pages,
                    (trace.dataset_bytes + page_size - 1) // page_size)
        self.controller.ssd.precondition(0, pages)

    # -- the hardware datapath -------------------------------------------------------

    def service_memory_access(self, address: int, size_bytes: int,
                              is_write: bool, at_ns: float) -> MemoryServiceResult:
        result = self.controller.access(address, size_bytes, is_write, at_ns)
        return MemoryServiceResult(latency_ns=result.latency_ns)

    def service_batch(self, batch: MemoryRequestBatch) -> MemoryServiceBatch:
        """Vectorized service around the clock-free tag-array walk.

        One :meth:`~repro.core.hams_controller.HAMSController.classify_batch`
        walk resolves hits, misses, victims and the whole NVDIMM charge
        schedule; the fold below then reconstructs each request's exact
        scalar issue clock from the batch timeline, computes every hit's
        latency in place (``((now + probe) + serve) - now`` — the same
        float-rounding path the scalar loop takes) and replays only the
        misses against the engine/ULL-Flash via
        :meth:`~repro.core.hams_controller.HAMSController.replay_miss`.
        Bit-identical to the scalar path — ``tests/test_batched_replay.py``
        is the contract.
        """
        count = len(batch)
        if count == 0:
            return MemoryServiceBatch(latency_ns=np.empty(0))
        controller = self.controller
        addresses = batch.addresses
        sizes = batch.sizes
        # Out-of-range requests must raise mid-walk exactly where the
        # scalar loop would; hand those batches to the sequential engine.
        if (int(addresses.min()) < 0 or int(sizes.min()) <= 0
                or int((addresses + sizes).max())
                > controller.mos_capacity_bytes):
            return batch.service_sequentially(self.service_memory_access)

        plan = controller.classify_batch(addresses, sizes, batch.writes)
        probe = plan.probe_ns
        hits = plan.hits.tolist()
        # Per-hit NVDIMM delay component, exactly as the scalar result
        # accumulates it: (0.0 + probe) + serve.
        nv_hit = (probe + plan.serve_ns).tolist()
        serve = plan.serve_ns.tolist()
        sizes_list = sizes.tolist()
        writes_list = batch.writes.tolist()
        on_chip = batch.on_chip_ns.tolist()
        timeline = batch.timeline
        if timeline is not None:
            addends = timeline.addends.tolist()
            slots = timeline.service_slots.tolist()
        else:
            addends = None
            slots = None

        latency = [0.0] * count
        delays = controller.delays
        s_nvdimm = delays.nvdimm_ns
        s_dma = delays.dma_ns
        s_ssd = delays.ssd_ns
        s_wait = delays.wait_ns
        miss_iter = iter(plan.misses)
        next_miss = next(miss_iter, None)
        replay_miss = controller.replay_miss
        now = batch.start_ns
        cursor = 0
        for j in range(count):
            if slots is not None:
                slot = slots[j]
                while cursor < slot:
                    now += addends[cursor]
                    cursor += 1
                cursor = slot + 1
            if hits[j]:
                finish = (now + probe) + serve[j]
                lat = finish - now
                s_nvdimm += nv_hit[j]
            else:
                _, address, decomposed, lookup = next_miss
                result = replay_miss(address, decomposed, lookup,
                                     sizes_list[j], writes_list[j], now)
                lat = result.finish_ns - now
                s_nvdimm += result.nvdimm_ns
                s_dma += result.dma_ns
                s_ssd += result.ssd_ns
                s_wait += result.wait_ns
                next_miss = next(miss_iter, None)
            latency[j] = lat
            now += on_chip[j] + lat
        delays.nvdimm_ns = s_nvdimm
        delays.dma_ns = s_dma
        delays.ssd_ns = s_ssd
        delays.wait_ns = s_wait
        return MemoryServiceBatch(
            latency_ns=np.array(latency, dtype=np.float64))

    # -- persistency passthrough ---------------------------------------------------------

    def power_failure(self, at_ns: float) -> float:
        return self.controller.power_failure(at_ns)

    def recover(self, at_ns: float) -> RecoveryReport:
        return self.controller.recover(at_ns)

    # -- energy -------------------------------------------------------------------

    def collect_energy(self, account: EnergyAccount) -> None:
        controller = self.controller
        account.charge_nvdimm(active_ns=controller.nvdimm.dram.busy_ns,
                              bytes_moved=controller.nvdimm.dram.bytes_total)
        ssd = controller.ssd
        if ssd.buffer.enabled:
            buffer_accesses = (ssd.buffer.stats.read_hits
                               + ssd.buffer.stats.write_hits
                               + ssd.buffer.stats.read_misses
                               + ssd.buffer.stats.write_misses)
            account.charge_internal_dram(buffer_accesses * ssd.page_size)
        account.charge_flash(
            ssd.fil.page_reads + controller.background_flash_reads,
            ssd.fil.page_programs + controller.background_flash_programs)
        link_bytes = int(controller.link.bytes_transferred
                         + controller.background_link_bytes)
        if controller.hams_config.is_tight:
            account.charge_link(ddr_bytes=link_bytes)
        else:
            account.charge_link(pcie_bytes=link_bytes)

    def energy_model(self) -> EnergyModel:
        return EnergyModel(self.config.energy,
                           self.config.nvdimm.capacity_bytes,
                           ssd_internal_dram_present=not
                           self.controller.hams_config.is_tight)

    # -- reporting -------------------------------------------------------------------

    def memory_delay_breakdown(self) -> Dict[str, float]:
        return self.controller.memory_delay_breakdown()

    def extra_statistics(self) -> Dict[str, float]:
        stats = super().extra_statistics()
        stats.update({f"hams_{key}": value
                      for key, value in self.controller.statistics().items()})
        stats["nvdimm_cache_hit_rate"] = self.controller.hit_rate
        stats["dma_overhead_fraction"] = self.controller.dma_overhead_fraction()
        return stats
