"""The MMF (memory-mapped file) baseline platform.

This is the conventional software path of Section II-B: the dataset lives on
an SSD, ``mmap`` exposes it to the application, and every first touch of a
page raises a page fault that walks the whole storage stack — page-fault
handler, file system, blk-mq, NVMe driver — before the data lands in the OS
page cache held in host DRAM.  Subsequent touches of resident pages run at
DRAM speed; evictions of dirty pages go back down the same stack.

The SSD behind the file is configurable (``ull-flash``, ``nvme-ssd`` or
``sata-ssd``) which is exactly the comparison of Figure 6.

Batched replay note: page-cache state, readahead (which keys on fault
adjacency) and SSD queueing make every fault order- and clock-dependent, so
this platform relies on the base class's exact sequential
:meth:`~repro.platforms.base.Platform.service_batch` fallback.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import SystemConfig
from ..energy.accounting import EnergyAccount
from ..flash.ssd import SSD, make_ssd
from ..host.os_stack import OSStorageStack, PageCache
from ..interconnect.link import Link
from ..interconnect.pcie import PCIeLink
from ..interconnect.sata import SATALink
from ..memory.nvdimm import NVDIMM
from ..nvme.commands import build_read, build_write
from ..nvme.controller import NVMeController
from ..units import KB
from ..workloads.trace import WorkloadTrace
from .base import MemoryServiceResult, Platform

OS_PAGE_BYTES = KB(4)


class MmapPlatform(Platform):
    """NVDIMM + SSD glued together by ``mmap`` and the Linux storage stack."""

    name = "mmap"

    def __init__(self, config: SystemConfig, ssd_kind: str = "ull-flash",
                 ssd: Optional[SSD] = None) -> None:
        super().__init__(config)
        self.ssd_kind = ssd_kind
        if ssd is not None:
            self.ssd = ssd
        elif ssd_kind == "ull-flash":
            # Use the (scaled) configured ULL-Flash so capacities line up.
            self.ssd = SSD(config.ssd)
        else:
            self.ssd = make_ssd(ssd_kind,
                                capacity_bytes=config.ssd.geometry
                                .usable_capacity_bytes)
        self.link: Link = (SATALink(config.sata) if ssd_kind == "sata-ssd"
                           else PCIeLink(config.pcie))
        self.controller = NVMeController(self.ssd, self.link, config.nvme)
        self.nvdimm = NVDIMM(config.nvdimm)
        self.page_cache = PageCache(config.nvdimm.cacheable_bytes, OS_PAGE_BYTES)
        self.os_stack = OSStorageStack(config.os_stack, OS_PAGE_BYTES)
        self._nvdimm_busy_ns = 0.0
        self._last_faulted_page = -2
        self.major_faults = 0
        self.readahead_fills = 0
        self.writebacks = 0

    # -- preparation -------------------------------------------------------------

    def prepare(self, trace: WorkloadTrace) -> None:
        """Precondition the SSD so every dataset page is mapped (warm media)."""
        pages = min(self.ssd.logical_pages,
                    (trace.dataset_bytes + OS_PAGE_BYTES - 1) // OS_PAGE_BYTES)
        self.ssd.precondition(0, pages)

    # -- the software datapath -------------------------------------------------------

    def service_memory_access(self, address: int, size_bytes: int,
                              is_write: bool, at_ns: float) -> MemoryServiceResult:
        page = address // OS_PAGE_BYTES
        if self.page_cache.access(page, is_write):
            dram = self.nvdimm.access(min(size_bytes, OS_PAGE_BYTES), is_write)
            self._nvdimm_busy_ns += dram.latency_ns
            return MemoryServiceResult(latency_ns=dram.latency_ns)
        return self._page_fault(page, size_bytes, is_write, at_ns)

    def _page_fault(self, page: int, size_bytes: int, is_write: bool,
                    at_ns: float) -> MemoryServiceResult:
        """A major fault: software stack + device read + page-cache install."""
        self.major_faults += 1
        fault = self.os_stack.fault_cost(needs_io=True)
        os_ns = fault.mmap_ns + fault.io_stack_ns + fault.copy_ns

        # Sequential faults benefit from readahead: one larger device read
        # covers the next pages, which then hit in the page cache.
        sequential = page == self._last_faulted_page + 1
        self._last_faulted_page = page
        readahead = self.os_stack.readahead_pages if sequential else 1
        read_bytes = OS_PAGE_BYTES * readahead

        command = build_read(lba=page * (OS_PAGE_BYTES // 512),
                             length_bytes=read_bytes, prp=0)
        io = self.controller.execute(command, at_ns + os_ns)
        storage_ns = io.latency_ns

        os_ns += self._install_pages(page, readahead, is_write,
                                     at_ns + os_ns + storage_ns)
        if sequential and readahead > 1:
            self.readahead_fills += readahead - 1

        # The faulting reference finally completes from DRAM.
        dram = self.nvdimm.access(min(size_bytes, OS_PAGE_BYTES), is_write)
        self._nvdimm_busy_ns += dram.latency_ns

        return MemoryServiceResult(latency_ns=dram.latency_ns, os_ns=os_ns,
                                   storage_ns=storage_ns)

    def _install_pages(self, first_page: int, count: int,
                       first_is_dirty: bool, at_ns: float) -> float:
        """Install faulted/readahead pages; dirty evictions go back to the SSD."""
        extra_os_ns = 0.0
        for offset in range(count):
            dirty = first_is_dirty and offset == 0
            evicted = self.page_cache.install(first_page + offset, dirty=dirty)
            if evicted is not None and evicted[1]:
                extra_os_ns += self._writeback_page(evicted[0], at_ns)
        return extra_os_ns

    def _writeback_page(self, page: int, at_ns: float) -> float:
        """Write one dirty page back through the storage stack.

        Writeback runs mostly asynchronously (pdflush-style), so only a
        fraction of the device time lands on the faulting thread; the
        software cost of building and submitting the bio is still paid.
        """
        self.writebacks += 1
        software_ns = self.os_stack.writeback_cost()
        command = build_write(lba=page * (OS_PAGE_BYTES // 512),
                              length_bytes=OS_PAGE_BYTES, prp=0)
        io = self.controller.execute(command, at_ns)
        return software_ns + io.latency_ns * 0.1

    # -- energy -------------------------------------------------------------------

    def collect_energy(self, account: EnergyAccount) -> None:
        account.charge_nvdimm(active_ns=self._nvdimm_busy_ns,
                              bytes_moved=self.nvdimm.dram.bytes_total)
        buffer_bytes = ((self.ssd.buffer.stats.read_hits
                         + self.ssd.buffer.stats.write_hits
                         + self.ssd.buffer.stats.read_misses
                         + self.ssd.buffer.stats.write_misses)
                        * self.ssd.page_size)
        account.charge_internal_dram(buffer_bytes)
        account.charge_flash(self.ssd.fil.page_reads, self.ssd.fil.page_programs)
        account.charge_link(pcie_bytes=int(self.link.bytes_transferred))

    # -- reporting -------------------------------------------------------------------

    def extra_statistics(self) -> Dict[str, float]:
        stats = super().extra_statistics()
        stats.update({
            "major_faults": float(self.major_faults),
            "readahead_fills": float(self.readahead_fills),
            "writebacks": float(self.writebacks),
            "page_cache_hit_rate": self.page_cache.hit_rate,
        })
        stats.update({f"os_{key}": value
                      for key, value in self.os_stack.statistics().items()})
        return stats
