"""Entry point for ``python -m repro`` (see repro.runner.cli)."""

from .runner.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
