"""repro.exec: the unified execution layer behind ``Session.submit()``.

One protocol, three tiers, one streaming handle:

* :class:`Executor` — ``submit(specs, ctx) -> ExperimentHandle``;
* :class:`SerialExecutor` / :class:`PoolExecutor` /
  :class:`ShardedExecutor` — in-process, process-pool and multi-host
  execution, all folding to bit-identical results;
* :class:`ExperimentHandle` — ``iter_results()`` streams each finished
  run (cache hits and remote runs flagged), ``progress()`` snapshots
  completed/total/ETA, ``events()`` exposes the typed
  start/finish/cache-hit/shard-claimed records (also dumped as a
  ``repro.events/1`` JSONL artifact), ``cancel()`` stops cleanly between
  runs, and ``result()`` folds index-ordered into the same
  :class:`~repro.analysis.experiments.ExperimentResult` the blocking
  verbs return.

``Session.collect/compare/sweep`` (and the CLI's ``repro run``) are thin
consumers of this layer; library users who want live observation call
``Session.submit()`` directly::

    handle = session.submit(specs, name="fig16")
    for run in handle.iter_results():
        print(handle.progress().format())
    experiment = handle.result()
"""

from __future__ import annotations

from ..runner.events import (
    CACHE_HIT,
    EVENT_KINDS,
    EVENTS_SCHEMA,
    RUN_FINISH,
    RUN_START,
    SHARD_CLAIMED,
    SUBMITTED,
    Event,
    append_event,
    event_from_record,
    read_events,
)
from .executors import (
    EXECUTOR_NAMES,
    ExecutionContext,
    Executor,
    PoolExecutor,
    SerialExecutor,
    ShardedExecutor,
    resolve_executor,
)
from .handle import (
    CancelToken,
    ExperimentCancelled,
    ExperimentHandle,
    ProgressSnapshot,
    StreamedRun,
    compute_eta,
)

__all__ = [
    "CACHE_HIT",
    "EVENT_KINDS",
    "EVENTS_SCHEMA",
    "EXECUTOR_NAMES",
    "RUN_FINISH",
    "RUN_START",
    "SHARD_CLAIMED",
    "SUBMITTED",
    "CancelToken",
    "Event",
    "ExecutionContext",
    "Executor",
    "ExperimentCancelled",
    "ExperimentHandle",
    "PoolExecutor",
    "ProgressSnapshot",
    "SerialExecutor",
    "ShardedExecutor",
    "StreamedRun",
    "append_event",
    "compute_eta",
    "event_from_record",
    "read_events",
    "resolve_executor",
]
