"""The streaming experiment handle: observe, consume and cancel a run.

:meth:`repro.api.Session.submit` hands specs to an executor and returns an
:class:`ExperimentHandle` immediately.  The handle is *pull-driven*: the
executor behind it is a lazy event generator, and execution advances exactly
as far as the consumer pulls — ``iter_results()`` one run at a time,
``result()`` to the end.  That keeps every tier single-threaded and
deterministic: there is no background thread racing the consumer, and
abandoning the handle (dropping it, or ``break``-ing out of
``iter_results()``) tears the execution down cleanly through generator
close.

The handle exposes four views of the same event stream:

* :meth:`iter_results` — one :class:`StreamedRun` per completed run, in
  completion order, each flagged with whether it was a cache hit and
  whether it ran on a remote host;
* :meth:`progress` — a completed/total/ETA snapshot (advances as the
  handle is consumed);
* :meth:`events` — every typed :class:`~repro.runner.events.Event` observed
  so far; with an ``events_path`` the same records are dumped as a
  ``repro.events/1`` JSONL artifact;
* :meth:`result` — drains the stream and folds the runs *index-ordered*
  into an :class:`~repro.analysis.experiments.ExperimentResult` that is
  bit-identical to the blocking verbs (``Session.collect`` et al.) on
  every executor tier.

:meth:`cancel` flips a token the executors poll between runs: execution
stops after the current run, finished runs stay in the content-addressed
cache (a later ``submit`` of the same specs resumes from it), and
``result()`` raises :class:`ExperimentCancelled`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence

from ..analysis.experiments import ExperimentResult
from ..platforms.base import RunResult
from ..runner.events import (
    CACHE_HIT,
    RUN_FINISH,
    SUBMITTED,
    Event,
    append_event,
)
from ..runner.specs import RunSpec
from ..workloads.registry import ExperimentScale


class ExperimentCancelled(RuntimeError):
    """``result()`` was asked for a matrix whose execution was cancelled."""


class CancelToken:
    """Shared cancel flag between a handle and its executor's generator.

    Callable so it can be passed verbatim as the ``should_stop`` hook of
    :meth:`~repro.runner.parallel.ParallelExperimentRunner.iter_specs`.
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __call__(self) -> bool:
        return self._cancelled


@dataclass(frozen=True)
class StreamedRun:
    """One completed run as yielded by :meth:`ExperimentHandle.iter_results`.

    ``index`` is the run's position in the submitted spec list (the fold
    order of :meth:`ExperimentHandle.result`), ``cache_hit`` says whether
    the result came from the content-addressed cache instead of executing,
    and ``remote`` marks runs observed from another host's shard worker.
    """

    index: int
    spec: RunSpec
    result: RunResult
    cache_hit: bool
    remote: bool = False


def compute_eta(completed: int, total: int,
                elapsed_s: float) -> Optional[float]:
    """Linear-extrapolation ETA, or ``None`` when there is no basis for one.

    The guards matter more than the estimate: with nothing completed, an
    already-finished run, zero elapsed time (a clock too coarse to have
    ticked between submit and the first snapshot — or a burst of pure
    cache hits) or a non-finite extrapolation, the honest answer is "no
    estimate", never a division by zero or an ``inf`` that would poison a
    ``repro.events/1`` record downstream.
    """
    if completed <= 0 or total <= completed or elapsed_s <= 0.0:
        return None
    eta = elapsed_s / completed * (total - completed)
    return eta if math.isfinite(eta) else None


@dataclass(frozen=True)
class ProgressSnapshot:
    """Point-in-time progress of a handle: counts, elapsed, crude ETA."""

    completed: int
    total: int
    cache_hits: int
    elapsed_s: float
    eta_s: Optional[float]

    @property
    def done(self) -> bool:
        return self.completed >= self.total

    @property
    def fraction(self) -> float:
        return 1.0 if self.total == 0 else self.completed / self.total

    def format(self) -> str:
        """One-line ticker text used by ``repro run --progress``."""
        eta = "" if self.eta_s is None else f", eta {self.eta_s:.1f}s"
        return (f"{self.completed}/{self.total} runs "
                f"({self.fraction * 100.0:3.0f}%), "
                f"{self.cache_hits} cached, "
                f"{self.elapsed_s:.1f}s elapsed{eta}")


class ExperimentHandle:
    """A submitted experiment: stream results, watch progress, cancel.

    Built by :meth:`Executor.submit`; not constructed directly by users.
    """

    def __init__(self, name: str, specs: Sequence[RunSpec],
                 scale: ExperimentScale, drive: Iterator[Event],
                 token: CancelToken, *,
                 executor: str = "unknown",
                 events_path: Optional[Path] = None) -> None:
        self.name = name
        self.executor = executor
        self._specs = list(specs)
        self._scale = scale
        self._drive = drive
        self._token = token
        self._events_path = Path(events_path) if events_path else None
        self._events: List[Event] = []
        self._runs: Dict[int, StreamedRun] = {}
        self._order: List[int] = []
        self._yielded = 0
        self._exhausted = False
        self._started = time.monotonic()
        # The submitted record opens (and truncates) the events artifact,
        # so a re-run never appends onto a stale file.
        self._record(Event(kind=SUBMITTED, experiment=name,
                           total=len(self._specs), executor=executor),
                     mode="w")

    # -- introspection ---------------------------------------------------------------

    @property
    def specs(self) -> List[RunSpec]:
        return list(self._specs)

    @property
    def total(self) -> int:
        return len(self._specs)

    @property
    def completed(self) -> int:
        return len(self._runs)

    @property
    def cancelled(self) -> bool:
        return self._token.cancelled

    @property
    def events_path(self) -> Optional[Path]:
        return self._events_path

    def events(self) -> List[Event]:
        """Every event observed so far (complete once ``result()`` returns)."""
        return list(self._events)

    def progress(self) -> ProgressSnapshot:
        """Snapshot of completion; advances as the handle is consumed."""
        completed, total = len(self._runs), len(self._specs)
        elapsed = time.monotonic() - self._started
        return ProgressSnapshot(
            completed=completed, total=total,
            cache_hits=sum(1 for run in self._runs.values()
                           if run.cache_hit),
            elapsed_s=elapsed,
            eta_s=compute_eta(completed, total, elapsed))

    # -- event pump ------------------------------------------------------------------

    def _record(self, event: Event, mode: str = "a") -> None:
        self._events.append(event)
        if self._events_path is not None:
            append_event(self._events_path, event, mode=mode)
        if event.kind in (RUN_FINISH, CACHE_HIT) \
                and event.index is not None and event.result is not None \
                and event.index not in self._runs:
            self._runs[event.index] = StreamedRun(
                index=event.index, spec=self._specs[event.index],
                result=event.result, cache_hit=bool(event.cache_hit),
                remote=event.remote)
            self._order.append(event.index)

    def _pump(self) -> bool:
        """Advance the executor by one event; False when the stream ended."""
        if self._exhausted:
            return False
        try:
            event = next(self._drive)
        except StopIteration:
            self._exhausted = True
            return False
        self._record(event)
        return True

    # -- consumption -----------------------------------------------------------------

    def iter_results(self) -> Iterator[StreamedRun]:
        """Yield every run exactly once, as it completes.

        The stream ends when the experiment is complete — or early, without
        error, when the handle was cancelled.  Safe to resume: a second
        ``iter_results()`` call continues where the first stopped instead
        of replaying runs.
        """
        while True:
            while self._yielded < len(self._order):
                index = self._order[self._yielded]
                self._yielded += 1
                yield self._runs[index]
            if not self._pump():
                return

    def cancel(self) -> None:
        """Stop after the current run; finished runs stay in the cache.

        Cancellation is cooperative and clean by construction: executors
        poll the token between runs, the pool/spool tiers release what they
        hold (claims return to ``pending/``), and because every finished
        run was already streamed into the content-addressed cache, a later
        ``submit()`` of the same specs completes from cache.
        """
        self._token.cancel()

    def result(self) -> ExperimentResult:
        """Drain the stream and fold the runs into an ExperimentResult.

        The fold is index-ordered over the submitted spec list — exactly
        the insertion order of the blocking
        ``ParallelExperimentRunner.collect`` (and, transitively, of the
        sharded merge) — so the returned experiment is bit-identical to
        the pre-streaming verbs on every executor tier.
        """
        while self._pump():
            pass
        if len(self._runs) != len(self._specs):
            raise ExperimentCancelled(
                f"{self.name}: execution "
                f"{'was cancelled' if self.cancelled else 'ended'} after "
                f"{len(self._runs)} of {len(self._specs)} runs; finished "
                f"runs are cached — submit() the same specs to resume")
        experiment = ExperimentResult(scale=self._scale)
        for index, spec in enumerate(self._specs):
            platform_key, workload_key = spec.result_key
            experiment.add(platform_key, workload_key,
                           self._runs[index].result)
        return experiment
