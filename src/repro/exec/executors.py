"""The Executor protocol and its three tiers: serial, pool, sharded.

One pluggable abstraction replaces the three divergent execution paths the
facade used to hard-wire (the serial walk, ``ParallelExperimentRunner``'s
blocking ``collect``, and the ``repro.distrib`` plan/work/merge pipeline):

    ``executor.submit(specs, ctx) -> ExperimentHandle``

Every executor is a lazy generator of typed
:class:`~repro.runner.events.Event` records wrapped in an
:class:`~repro.exec.handle.ExperimentHandle`; execution advances only as
the handle is consumed, and all three tiers fold to bit-identical
:class:`~repro.analysis.experiments.ExperimentResult` matrices — the golden
contract ``tests/test_exec.py`` pins.

* :class:`SerialExecutor` — one run at a time, in this process, no pool.
  The reference tier: debugging, profiling, environments where forking is
  unwelcome.
* :class:`PoolExecutor` — wraps the session's
  :class:`~repro.runner.parallel.ParallelExperimentRunner`, streaming each
  finished run out of ``imap_unordered`` the moment its chunk completes.
* :class:`ShardedExecutor` — wraps :mod:`repro.distrib`: plans shard
  manifests (count- or cost-balanced), claims and executes them through
  the spool protocol, appends per-run progress records for remote
  observers, and tails other hosts' progress records (loading their
  results from the shared cache by content address) so the handle sees
  every run — local or remote — as it completes.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Union,
    runtime_checkable,
)

from ..distrib.manifest import plan_shards
from ..distrib.spool import (
    ClaimedShard,
    ShardSpool,
    default_owner,
    shard_file_name,
)
from ..distrib.worker import shard_result_payload, shard_runner
from ..runner.artifacts import RunCache, run_result_from_dict
from ..runner.events import (
    Event,
    append_event,
    claim_event,
    read_events,
    run_event,
    start_event,
)
from ..runner.parallel import ParallelExperimentRunner
from ..runner.specs import RunSpec
from .handle import CancelToken, ExperimentHandle

#: The names ``Session(executor=...)`` and ``repro run --executor`` accept.
#: ``serve:<url>`` (e.g. ``serve:http://127.0.0.1:8642``) routes through a
#: running ``repro serve`` daemon.
EXECUTOR_NAMES = ("serial", "pool", "sharded", "serve:<url>")


@dataclass(frozen=True)
class ExecutionContext:
    """Everything an executor needs from the session submitting to it.

    The *runner* carries the scaled config, the scale, the worker count,
    the content-addressed cache and the force flag; the remaining fields
    are the sharding/observability knobs the session holds.
    """

    runner: ParallelExperimentRunner
    name: str = "experiment"
    shards: Optional[int] = None
    spool_dir: Optional[Path] = None
    wait_timeout: Optional[float] = None
    events_path: Optional[Path] = None


@runtime_checkable
class Executor(Protocol):
    """The execution tier protocol: submit specs, get a streaming handle."""

    name: str

    def submit(self, specs: Sequence[RunSpec],
               ctx: ExecutionContext) -> ExperimentHandle:
        """Begin executing *specs* and return the handle observing them."""
        ...  # pragma: no cover - protocol signature


class _ExecutorBase:
    """Shared submit plumbing: wrap the tier's event generator in a handle."""

    name = "unknown"

    def submit(self, specs: Sequence[RunSpec],
               ctx: ExecutionContext) -> ExperimentHandle:
        specs = list(specs)
        token = CancelToken()
        return ExperimentHandle(
            name=ctx.name, specs=specs, scale=ctx.runner.scale,
            drive=self._drive(specs, ctx, token), token=token,
            executor=self.name, events_path=ctx.events_path)

    def _drive(self, specs: List[RunSpec], ctx: ExecutionContext,
               token: CancelToken) -> Iterator[Event]:
        raise NotImplementedError  # pragma: no cover - abstract


class _RunnerExecutor(_ExecutorBase):
    """Shared drive of the serial and pool tiers.

    Both are thin skins over
    :meth:`~repro.runner.parallel.ParallelExperimentRunner.iter_specs` —
    the single home of the cache load/force/store semantics — differing
    only in the worker override they pass (``1`` forces inline
    execution).  Cache hits stream first, then each finished run leaves
    the runner (and enters the cache) the moment it completes.  ``start``
    events fire at dispatch — per run under inline execution, as one
    batch when the pool takes over.
    """

    #: Worker-count override handed to ``iter_specs`` (None: the session's).
    workers_override: Optional[int] = None

    def _drive(self, specs: List[RunSpec], ctx: ExecutionContext,
               token: CancelToken) -> Iterator[Event]:
        dispatched: List[int] = []
        for index, result, cache_hit, key in ctx.runner.iter_specs(
                specs, should_stop=token, on_start=dispatched.append,
                workers=self.workers_override):
            while dispatched:
                started = dispatched.pop(0)
                yield start_event(started, specs[started])
            yield run_event(index, specs[index], result, cache_hit, key=key)
        # Runs dispatched to the pool but torn down by a cancellation
        # still surface their start records for an honest event log.
        while dispatched:
            started = dispatched.pop(0)
            yield start_event(started, specs[started])


class SerialExecutor(_RunnerExecutor):
    """Execute every spec inline, one at a time, with no process pool.

    Cache-aware exactly like the pool tier (it is the same drive, forced
    to inline execution), and bit-identical to it — the replay is pure
    deterministic float arithmetic, so where a run executes cannot change
    what it produces.
    """

    name = "serial"
    workers_override = 1


class PoolExecutor(_RunnerExecutor):
    """Fan pending runs over the session's process pool, streaming results.

    Each finished run leaves ``imap_unordered`` the moment its chunk
    completes, rather than blocking behind the full matrix.
    """

    name = "pool"
    workers_override = None


class ShardedExecutor(_ExecutorBase):
    """Plan, claim and execute shard manifests; tail the ones other hosts run.

    Without a spool directory the planned manifests execute directly in
    this process (the "cluster of one"), still per-run streaming.  With a
    spool, the full multi-host protocol runs: manifests queue under
    ``pending/``, this executor claims and executes what it can (appending
    per-run progress records other observers tail), and shards claimed by
    workers on other hosts are *tailed* — their progress records stream in
    as events, with full results loaded from the shared content-addressed
    cache by key — rather than silently blocked on.

    *shards* overrides the context's shard count (default 2);  *balance*
    selects the partition (``"count"`` or ``"cost"``, see
    :func:`~repro.distrib.manifest.plan_shards`).
    """

    name = "sharded"

    def __init__(self, shards: Optional[int] = None,
                 balance: str = "count") -> None:
        self.shards = shards
        self.balance = balance

    def _drive(self, specs: List[RunSpec], ctx: ExecutionContext,
               token: CancelToken) -> Iterator[Event]:
        runner = ctx.runner
        shard_count = self.shards or ctx.shards or 2
        manifests = plan_shards(ctx.name, specs, runner.config, runner.scale,
                                shard_count, balance=self.balance)
        owner = default_owner()
        # The session's own cache keeps serving (and absorbing) runs when
        # execution is sharded; the spool's shared cache is the fallback.
        cache_root = runner.cache.root
        if ctx.spool_dir is None:
            for manifest in manifests:
                if token():
                    return
                if not manifest["specs"]:
                    continue
                yield claim_event(manifest["shard_index"], owner)
                yield from self._run_shard(
                    manifest, cache_dir=cache_root, workers=runner.workers,
                    force=runner.force, token=token, owner=owner,
                    spool=None, claim=None, seen=set())
            return
        yield from self._drive_spool(manifests, ctx, token, owner,
                                     cache_root)

    # -- local shard execution -------------------------------------------------------

    def _run_shard(self, manifest: Dict[str, Any], *,
                   cache_dir: Optional[Path], workers: int, force: bool,
                   token: CancelToken, owner: str,
                   spool: Optional[ShardSpool],
                   claim: Optional[ClaimedShard],
                   seen: Set[int]) -> Iterator[Event]:
        """Execute one manifest run by run, yielding an event per run.

        With a spool, each run is also appended to the shard's progress
        records and the finished shard is published as a shard artifact;
        a cancellation (or any error) releases the claim back to
        ``pending/`` so another worker — or a resumed submit — picks the
        shard up and completes it from the shared cache.
        """
        try:
            runner, shard_specs = shard_runner(
                manifest, cache_dir=cache_dir, workers=workers, force=force)
            progress_path = (spool.progress_path(claim.path.name)
                             if spool is not None and claim is not None
                             else None)
            outcomes: List[Optional[tuple]] = [None] * len(shard_specs)
            for position, result, cache_hit, _key in runner.iter_specs(
                    shard_specs, should_stop=token):
                outcomes[position] = (result, cache_hit)
                entry = manifest["specs"][position]
                event = run_event(entry["index"], shard_specs[position],
                                  result, cache_hit, key=entry["key"],
                                  shard_index=manifest["shard_index"],
                                  owner=owner)
                if progress_path is not None:
                    append_event(progress_path, event)
                seen.add(entry["index"])
                yield event
            if any(outcome is None for outcome in outcomes):
                # token() fired mid-shard: hand the remainder back.
                if spool is not None and claim is not None:
                    spool.release(claim)
                return
            if spool is not None and claim is not None:
                spool.finish(claim, shard_result_payload(
                    manifest, runner,
                    outcomes,  # type: ignore[arg-type]
                    host=owner))
        except BaseException:
            # Includes GeneratorExit: an abandoned handle must not leave
            # an orphaned claim behind.
            if spool is not None and claim is not None:
                spool.release(claim)
            raise

    # -- the spool protocol ----------------------------------------------------------

    def _drive_spool(self, manifests: List[Dict[str, Any]],
                     ctx: ExecutionContext, token: CancelToken, owner: str,
                     cache_root: Optional[Path]) -> Iterator[Event]:
        runner = ctx.runner
        experiment_id = manifests[0]["experiment_id"]
        spool = ShardSpool(ctx.spool_dir).prepare()
        if runner.force:
            # force's contract is "re-execute everything": published shard
            # results of this plan would otherwise short-circuit the
            # re-queue (add_manifests skips done shards).  Limitation:
            # force cannot reach a shard currently claimed by a worker on
            # another host — that worker runs with its own flags and its
            # result is consumed as published.
            for manifest in manifests:
                (spool.results_dir / shard_file_name(
                    experiment_id, manifest["shard_index"])
                 ).unlink(missing_ok=True)
        spool.add_manifests(manifests)
        expected = sorted(
            shard_file_name(experiment_id, manifest["shard_index"])
            for manifest in manifests)
        seen: Set[int] = set()
        offsets: Dict[str, int] = {}
        # Fresh RunCache views for tailing remote runs, so their loads do
        # not pollute the session cache's hit/miss accounting.
        remote_caches = [RunCache(spool.cache_dir)]
        if cache_root is not None:
            remote_caches.insert(0, RunCache(cache_root))

        started = last_notice = time.monotonic()
        poll = 0.05
        first_invisible: Optional[float] = None
        while True:
            if token():
                return
            claim = spool.claim_next(owner, experiment_id=experiment_id)
            if claim is not None:
                yield claim_event(claim.shard_index, owner)
                yield from self._run_shard(
                    claim.payload,
                    cache_dir=cache_root or spool.cache_dir,
                    workers=runner.workers, force=runner.force, token=token,
                    owner=owner, spool=spool, claim=claim, seen=seen)
                if token():
                    return
                continue
            # Nothing claimable: stream what remote workers have finished.
            yield from self._tail_progress(spool, expected, offsets, seen,
                                           remote_caches)
            # Done is judged solely by published results — renames bounce
            # shards between pending/ and claims/, so directory scans can
            # transiently miss a live shard, but a result file only ever
            # appears.
            in_flight = [shard for shard in expected
                         if not (spool.results_dir / shard).exists()]
            if not in_flight:
                break
            visible = spool.outstanding(experiment_id)
            now = time.monotonic()
            if visible:
                first_invisible = None
            else:
                # Seen in neither directory: either the shard files are
                # gone without results (deleted claim, wiped spool) or a
                # remote host's rename is hidden by filesystem caching
                # (NFS negative-dentry caches last seconds).  Only declare
                # the shards lost after a sustained wall-clock absence.
                if first_invisible is None:
                    first_invisible = now
                elif now - first_invisible >= 10.0:
                    break
            if ctx.wait_timeout is not None and \
                    now - started >= ctx.wait_timeout:
                raise TimeoutError(
                    f"{ctx.name}: still waiting on shard(s) {in_flight} "
                    f"after {now - started:.0f}s; if their worker died, "
                    f"recover with `repro shard work --spool {spool.root} "
                    f"{spool.claims_dir}/<shard>.json` or "
                    f"ShardSpool.release")
            if now - last_notice >= 5.0:
                last_notice = now
                print(f"{ctx.name}: waiting on shard(s) claimed elsewhere: "
                      f"{', '.join(in_flight)}", file=sys.stderr)
            time.sleep(poll)
            poll = min(poll * 2, 1.0)

        # Drain any progress records that landed after the last poll, then
        # fill whatever runs were never observed (a remote worker that
        # published its artifact without progress records, a cache the
        # tailer could not read) from the shard artifacts themselves.
        yield from self._tail_progress(spool, expected, offsets, seen,
                                       remote_caches)
        specs_by_index = {entry["index"]: RunSpec.from_dict(entry["spec"])
                          for manifest in manifests
                          for entry in manifest["specs"]}
        for payload in sorted(spool.load_results(experiment_id),
                              key=lambda p: p["shard_index"]):
            if payload["config_hash"] != manifests[0]["config_hash"]:
                raise ValueError(
                    f"{ctx.name}: shard {payload['shard_index']} was "
                    f"executed against a different config than planned")
            for run in sorted(payload["runs"], key=lambda r: r["index"]):
                if run["index"] in seen:
                    continue
                seen.add(run["index"])
                yield run_event(
                    run["index"], specs_by_index[run["index"]],
                    run_result_from_dict(run["result"]),
                    bool(run.get("cache_hit", False)), key=run.get("key"),
                    shard_index=payload["shard_index"],
                    owner=payload.get("host"), remote=True)

    def _tail_progress(self, spool: ShardSpool, expected: List[str],
                       offsets: Dict[str, int], seen: Set[int],
                       caches: List[RunCache]) -> Iterator[Event]:
        """Stream new remote progress records whose results are loadable.

        A record whose result is not yet in any shared cache is *not*
        consumed as a run (its offset advances, but the index stays
        unseen); the shard-artifact fill at the end guarantees it is
        delivered exactly once regardless.
        """
        for shard_name in expected:
            path = spool.progress_path(shard_name)
            events, offsets[shard_name] = read_events(
                path, offsets.get(shard_name, 0))
            for event in events:
                if event.index is None or event.index in seen \
                        or event.key is None:
                    continue
                result = None
                for cache in caches:
                    result = cache.load(event.key)
                    if result is not None:
                        break
                if result is None:
                    continue
                seen.add(event.index)
                yield Event(
                    kind=event.kind, index=event.index,
                    platform_key=event.platform_key,
                    workload_key=event.workload_key,
                    cache_hit=event.cache_hit,
                    operations_per_second=event.operations_per_second,
                    key=event.key, shard_index=event.shard_index,
                    owner=event.owner, remote=True, result=result)


def resolve_executor(executor: Union[str, Executor, None], *,
                     shards: Optional[int] = None) -> Executor:
    """Turn a ``Session(executor=...)`` value into an Executor instance.

    ``None`` keeps the historical defaults: the pool tier, or the sharded
    tier when a shard count is in play.  Strings name the built-in tiers;
    anything implementing the protocol passes through untouched.
    """
    if executor is None:
        return ShardedExecutor() if shards else PoolExecutor()
    if isinstance(executor, str):
        if executor == "serial":
            return SerialExecutor()
        if executor == "pool":
            return PoolExecutor()
        if executor == "sharded":
            return ShardedExecutor()
        if executor.startswith("serve:"):
            # Lazy: the serve tier is optional plumbing on top of this
            # layer, and importing it here eagerly would be a cycle.
            from ..serve.client import ServeExecutor
            url = executor[len("serve:"):]
            if not url:
                raise ValueError(
                    "serve executor needs a URL: \"serve:http://host:port\"")
            return ServeExecutor(url)
        raise ValueError(f"unknown executor {executor!r}; expected one of "
                         f"{EXECUTOR_NAMES} or an Executor instance")
    if isinstance(executor, Executor):
        return executor
    raise ValueError(f"unknown executor {executor!r}; expected one of "
                     f"{EXECUTOR_NAMES} or an Executor instance")
