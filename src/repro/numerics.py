"""Bit-exact floating-point accumulation helpers.

The batched replay loop (:mod:`repro.platforms.base`) promises results that
are *bit-identical* to the legacy scalar loop, which accumulates every
quantity with a plain left-to-right ``value += addend`` sequence.  Batched
code therefore may not reassociate those additions: ``numpy.sum`` uses
pairwise summation and ``n * addend`` collapses repeated adds, both of which
round differently.

``numpy``'s ``cumsum``/``add.accumulate`` is a strict sequential
accumulation (every partial sum is materialised in order), so seeding it
with the running value reproduces the scalar loop's rounding exactly:

    fl(...fl(fl(start + a0) + a1)... + an)

That identity is what :func:`sequential_add` provides, and what the golden
equivalence tests in ``tests/test_batched_replay.py`` lock in.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sequential_add"]


def sequential_add(start: float, addends: np.ndarray) -> float:
    """Fold *addends* into *start* exactly as ``for a: start += a`` would.

    Returns a Python float equal bit-for-bit to the left-to-right scalar
    accumulation.  ``addends`` must be a one-dimensional float64 array (or
    convertible); an empty array returns *start* unchanged.
    """
    addends = np.asarray(addends, dtype=np.float64)
    if addends.size == 0:
        return float(start)
    buffer = np.empty(addends.size + 1, dtype=np.float64)
    buffer[0] = start
    buffer[1:] = addends
    return float(np.add.accumulate(buffer)[-1])
