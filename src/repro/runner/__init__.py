"""Parallel experiment runner: process-pool fan-out, run cache, artifacts.

Public surface:

* :class:`~repro.runner.parallel.ParallelExperimentRunner` — drop-in
  replacement for the serial ``ExperimentRunner`` that fans the
  (platform x workload) matrix out over a process pool and consults a
  content-addressed run cache,
* :class:`~repro.runner.specs.RunSpec` — the picklable unit of work,
* the artifact helpers for writing/reading versioned experiment JSON,
* the named experiment presets behind ``python -m repro run``.
"""

from .artifacts import (
    EXPERIMENT_SCHEMA,
    RUN_SCHEMA,
    RunCache,
    atomic_write_text,
    config_from_dict,
    config_hash_of,
    config_to_dict,
    experiment_from_artifact,
    load_experiment_artifact,
    run_cache_key,
    run_result_from_dict,
    run_result_to_dict,
    write_experiment_artifact,
)
from .parallel import (
    ParallelExperimentRunner,
    execute_spec,
    resolve_worker_count,
)
from .presets import SMOKE_SCALE, ExperimentPreset, get_preset, preset_names
from .regression import (
    DEFAULT_THRESHOLD,
    DiffEntry,
    DiffReport,
    diff_artifacts,
    diff_payloads,
)
from .specs import RunSpec, apply_config_overrides, matrix_specs

__all__ = [
    "EXPERIMENT_SCHEMA",
    "RUN_SCHEMA",
    "RunCache",
    "atomic_write_text",
    "config_from_dict",
    "config_hash_of",
    "config_to_dict",
    "experiment_from_artifact",
    "load_experiment_artifact",
    "run_cache_key",
    "run_result_from_dict",
    "run_result_to_dict",
    "write_experiment_artifact",
    "ParallelExperimentRunner",
    "execute_spec",
    "resolve_worker_count",
    "SMOKE_SCALE",
    "ExperimentPreset",
    "get_preset",
    "preset_names",
    "RunSpec",
    "apply_config_overrides",
    "matrix_specs",
    "DEFAULT_THRESHOLD",
    "DiffEntry",
    "DiffReport",
    "diff_artifacts",
    "diff_payloads",
]
