"""Process-pool experiment runner with a content-addressed run cache.

Every (platform, workload) replay of an experiment is independent and
deterministic, so the matrix fans out over a ``multiprocessing`` pool.
Workers never receive live device objects — pickling a half-run SSD model
would be both expensive and wrong.  Instead each worker is initialised once
with the (picklable, frozen) scaled :class:`~repro.config.SystemConfig` and
:class:`~repro.workloads.registry.ExperimentScale`, receives plain
:class:`~repro.runner.specs.RunSpec` records, rebuilds the trace through a
per-process :class:`~repro.workloads.registry.TraceSpec` cache and the
platform through the registry, and ships back only the ``RunResult``.

Because trace synthesis is fully seeded and the replay is pure float
arithmetic in a fixed order, a worker-built run is bit-identical to the same
run executed serially — ``ParallelExperimentRunner(workers=N)`` produces
exactly the metrics of the legacy serial ``ExperimentRunner`` for any N.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..analysis.experiments import ExperimentResult, ExperimentRunner
from ..config import SystemConfig
from ..platforms.base import RunResult
from ..platforms.registry import create_platform
from ..workloads.registry import ExperimentScale, TraceSpec
from .artifacts import RunCache, run_cache_key
from .specs import RunSpec, apply_config_overrides, matrix_specs

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_worker_count(workers: Optional[int] = None) -> int:
    """Pick the worker count: explicit arg > $REPRO_WORKERS > CPU count."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"${WORKERS_ENV} must be an integer, got {env!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    return max(1, int(workers))


def execute_spec(spec: RunSpec, config: SystemConfig, scale: ExperimentScale,
                 trace_cache: Optional[Dict[tuple, object]] = None
                 ) -> RunResult:
    """Run one spec from scratch: build config, trace and platform, replay.

    This is the single execution path shared by the serial fallback and the
    pool workers, which is what guarantees serial/parallel equivalence.
    """
    if spec.workload.startswith("scenario:"):
        # Scenario runs add a QoS-policy install and per-tenant attribution
        # around the same build-config/trace/platform steps; the branch
        # lives in repro.scenario so this hot module stays lean.
        from ..scenario.engine import execute_scenario_spec
        return execute_scenario_spec(spec, config, scale, trace_cache)
    run_config = apply_config_overrides(config, spec.config_overrides)
    trace_spec = TraceSpec(workload=spec.workload, scale=scale,
                           dataset_bytes_override=spec.dataset_bytes_override)
    trace = None if trace_cache is None else trace_cache.get(trace_spec.cache_key)
    if trace is None:
        trace = trace_spec.build()
        if trace_cache is not None:
            trace_cache[trace_spec.cache_key] = trace
    platform = create_platform(spec.platform, run_config,
                               **dict(spec.platform_kwargs))
    return platform.run(trace)


# -- worker-process state -------------------------------------------------------
#
# Pool workers are initialised once per process; the trace cache lives for
# the lifetime of the worker so a workload's trace is synthesised at most
# once per process regardless of how many platforms replay it.

_WORKER_CONFIG: Optional[SystemConfig] = None
_WORKER_SCALE: Optional[ExperimentScale] = None
_WORKER_TRACES: Dict[tuple, object] = {}


def _worker_init(config: SystemConfig, scale: ExperimentScale) -> None:
    global _WORKER_CONFIG, _WORKER_SCALE, _WORKER_TRACES
    _WORKER_CONFIG = config
    _WORKER_SCALE = scale
    _WORKER_TRACES = {}


def _worker_run(spec: RunSpec) -> RunResult:
    assert _WORKER_CONFIG is not None and _WORKER_SCALE is not None
    return execute_spec(spec, _WORKER_CONFIG, _WORKER_SCALE, _WORKER_TRACES)


def _worker_run_indexed(item: tuple) -> tuple:
    """(index, spec) -> (index, result), for order-free result streaming."""
    index, spec = item
    return index, _worker_run(spec)


def _pool_context():
    """Fork on Linux (cheap), spawn everywhere else.

    macOS can fork but fork-without-exec is unsafe there (Accelerate/ObjC
    frameworks may already hold locks), which is why CPython's own default
    start method on macOS is spawn; mirror that rather than overriding it.
    """
    if sys.platform == "linux":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")  # pragma: no cover


class ParallelExperimentRunner(ExperimentRunner):
    """Drop-in ``ExperimentRunner`` that fans runs out over processes.

    Parameters
    ----------
    workers:
        Process count; ``None`` resolves via ``$REPRO_WORKERS`` then the CPU
        count.  ``workers=1`` executes inline (no pool) and is bit-identical
        to the serial runner — as is any other worker count.
    cache_dir:
        Directory of the content-addressed run cache; ``None`` disables
        caching.  A cached run is returned without building anything.
    force:
        Ignore cache hits (re-execute everything) but still refresh the
        cache with the new results.
    """

    def __init__(self, scale: Optional[ExperimentScale] = None,
                 base_config: Optional[SystemConfig] = None,
                 workers: Optional[int] = None,
                 cache_dir: Optional[Path] = None,
                 force: bool = False,
                 scaled_config: Optional[SystemConfig] = None) -> None:
        super().__init__(scale=scale, base_config=base_config,
                         scaled_config=scaled_config)
        self.workers = resolve_worker_count(workers)
        self.cache = RunCache(cache_dir)
        self.force = force

    # -- cache plumbing ------------------------------------------------------------

    def cache_key(self, spec: RunSpec) -> str:
        return run_cache_key(spec, self.config, self.scale)

    # -- execution -----------------------------------------------------------------

    def iter_specs(self, specs: Sequence[RunSpec], *,
                   should_stop: Optional[Callable[[], bool]] = None,
                   on_start: Optional[Callable[[int], None]] = None,
                   workers: Optional[int] = None
                   ) -> Iterator[Tuple[int, RunResult, bool,
                                       Optional[str]]]:
        """Stream ``(position, result, cache_hit, key)`` as runs complete.

        Cache hits are yielded first, in position order (they cost one file
        read each); the remaining runs follow in *completion* order —
        serially inline for one worker, via ``imap_unordered`` over the pool
        otherwise — and each result streams into the cache the moment it
        lands, not in one batch at the end, so a runner killed mid-way
        leaves every finished run behind and a restart resumes instead of
        recomputing (the resume contract of distributed shard workers).
        ``key`` is the run's content address (``None`` with caching off),
        computed exactly once here so consumers never re-hash the config.

        *should_stop* is polled between runs; returning ``True`` ends the
        stream cleanly after the current run (the pool, if any, is torn
        down by the ``with`` block), leaving the cache consistent — this is
        the cancellation hook of :meth:`repro.exec.ExperimentHandle.cancel`.
        *on_start* fires with a position when that run is dispatched: per
        run under serial execution, once per pending run at pool submission
        time otherwise (a pool dispatches its whole batch up front).
        *workers* overrides the runner's pool size for this stream —
        ``workers=1`` is how the serial executor forces inline execution
        without duplicating any of the cache semantics above.
        """
        specs = list(specs)
        effective_workers = self.workers if workers is None else workers
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(specs)
        for index, spec in enumerate(specs):
            if self.cache.enabled:
                keys[index] = self.cache_key(spec)
            cached = (None if self.force or not self.cache.enabled
                      else self.cache.load(keys[index]))
            if cached is not None:
                yield index, cached, True, keys[index]
            else:
                pending.append(index)
        if not pending:
            return

        def store(index: int, result: RunResult) -> None:
            if self.cache.enabled:
                self.cache.store(keys[index], specs[index], result)

        if effective_workers <= 1 or len(pending) == 1:
            for index in pending:
                if should_stop is not None and should_stop():
                    return
                if on_start is not None:
                    on_start(index)
                result = execute_spec(specs[index], self.config, self.scale,
                                      self._trace_cache)
                store(index, result)
                yield index, result, False, keys[index]
        else:
            if should_stop is not None and should_stop():
                return
            context = _pool_context()
            processes = min(effective_workers, len(pending))
            # Chunks keep per-task IPC overhead low and, with the
            # workload-major spec order, let a worker reuse its cached
            # trace across a chunk; 4 chunks per worker still load-
            # balances the uneven per-platform run times.
            chunksize = max(1, len(pending) // (processes * 4))
            with context.Pool(processes=processes,
                              initializer=_worker_init,
                              initargs=(self.config, self.scale)) as pool:
                if on_start is not None:
                    for index in pending:
                        on_start(index)
                # Unordered: each result is cached the moment its chunk
                # finishes, not held behind slower earlier chunks; the
                # explicit index keeps the output order deterministic.
                for index, result in pool.imap_unordered(
                        _worker_run_indexed,
                        [(index, specs[index]) for index in pending],
                        chunksize=chunksize):
                    store(index, result)
                    yield index, result, False, keys[index]
                    if should_stop is not None and should_stop():
                        return

    def run_specs(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Execute every spec (cache, then pool) preserving input order."""
        specs = list(specs)
        results: List[Optional[RunResult]] = [None] * len(specs)
        for index, result, _cache_hit, _key in self.iter_specs(specs):
            results[index] = result
        return results  # type: ignore[return-value]

    def run_spec(self, spec: RunSpec) -> RunResult:
        return self.run_specs([spec])[0]

    # -- ExperimentRunner API --------------------------------------------------------

    def run_one(self, platform_name: str, workload: str,
                dataset_bytes_override: Optional[int] = None) -> RunResult:
        """Replay one workload on a freshly built platform (cache-aware)."""
        return self.run_spec(RunSpec(
            platform=platform_name, workload=workload,
            dataset_bytes_override=dataset_bytes_override))

    def run_matrix(self, platform_names: Iterable[str],
                   workloads: Iterable[str]) -> ExperimentResult:
        """Replay every workload on every platform, fanned out over workers."""
        specs = matrix_specs(list(platform_names), list(workloads))
        return self.collect(specs)

    def collect(self, specs: Sequence[RunSpec]) -> ExperimentResult:
        """Execute *specs* and merge the runs into one ExperimentResult."""
        experiment = ExperimentResult(scale=self.scale)
        for spec, result in zip(specs, self.run_specs(specs)):
            key = spec.result_key
            experiment.add(key[0], key[1], result)
        return experiment
