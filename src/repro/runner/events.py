"""Typed execution events and the versioned ``repro.events/1`` JSONL format.

Every executor (see :mod:`repro.exec`) narrates an experiment as a stream of
:class:`Event` records: a run was dispatched, finished, resolved from the
content-addressed cache, a shard was claimed.  The same records serve three
consumers:

* :class:`~repro.exec.handle.ExperimentHandle` collects them in memory and
  exposes ``events()`` / ``progress()`` / ``iter_results()``;
* when an events path is given, each record is appended as one JSON line —
  the ``repro.events/1`` artifact CI uploads next to the experiment JSON;
* distributed shard workers append their per-run ``finish`` records to the
  spool's ``progress/`` directory, which is how a coordinating handle (or
  ``repro shard status --watch``) observes runs completing on other hosts.

The line format is deliberately self-contained: every line carries the
schema tag, so a tail reader never needs a header, and a file of lines can
be split or concatenated freely.  Run-level records carry the run's
content-addressed cache ``key``, which lets a remote tail reader load the
full :class:`~repro.platforms.base.RunResult` from the shared cache instead
of waiting for the shard artifact.

This module sits at the bottom of the layering on purpose: it imports
nothing from :mod:`repro.distrib` or :mod:`repro.exec`, so both can use it
without an import cycle.
"""

from __future__ import annotations

import dataclasses
import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..platforms.base import RunResult
from .specs import RunSpec

#: Bump when the JSONL event-record layout changes.
EVENTS_SCHEMA = "repro.events/1"

#: Event kinds (the ``kind`` field of every record).
SUBMITTED = "submitted"          #: experiment handed to an executor
RUN_START = "start"              #: a run was dispatched for execution
RUN_FINISH = "finish"            #: a run finished executing
CACHE_HIT = "cache-hit"          #: a run resolved from the run cache
SHARD_CLAIMED = "shard-claimed"  #: a shard manifest was claimed by a worker
JOB_QUEUED = "job-queued"        #: a service job entered the persistent queue
JOB_START = "job-start"          #: a service job was claimed by a worker
JOB_FINISH = "job-finish"        #: a service job reached a terminal state

EVENT_KINDS = (SUBMITTED, RUN_START, RUN_FINISH, CACHE_HIT, SHARD_CLAIMED,
               JOB_QUEUED, JOB_START, JOB_FINISH)


@dataclass(frozen=True)
class Event:
    """One typed execution event.

    Only ``kind`` and ``unix`` are always present; the remaining fields are
    populated per kind (run events carry ``index``/keys/throughput, shard
    events carry ``shard_index``/``owner``, service-job events carry
    ``job``/``tenant``/``state``).  ``result`` is the in-process payload
    riding along to the handle — it never enters the JSON record (run
    results live in the run cache and the experiment artifact, keyed by
    ``key``).
    """

    kind: str
    unix: float = field(default_factory=time.time)
    index: Optional[int] = None
    platform_key: Optional[str] = None
    workload_key: Optional[str] = None
    cache_hit: Optional[bool] = None
    operations_per_second: Optional[float] = None
    key: Optional[str] = None
    shard_index: Optional[int] = None
    owner: Optional[str] = None
    remote: bool = False
    experiment: Optional[str] = None
    total: Optional[int] = None
    executor: Optional[str] = None
    job: Optional[str] = None
    tenant: Optional[str] = None
    state: Optional[str] = None
    result: Optional[RunResult] = dataclasses.field(
        default=None, compare=False)

    def to_record(self) -> Dict[str, Any]:
        """The JSON-line payload: schema + kind + every populated field."""
        record: Dict[str, Any] = {"schema": EVENTS_SCHEMA, "kind": self.kind,
                                  "unix": self.unix}
        for name in ("index", "platform_key", "workload_key", "cache_hit",
                     "operations_per_second", "key", "shard_index", "owner",
                     "experiment", "total", "executor", "job", "tenant",
                     "state"):
            value = getattr(self, name)
            if value is None:
                continue
            # json.dumps would happily emit bare Infinity/NaN — tokens no
            # strict JSON parser (or a tail reader on another host) accepts.
            # A non-finite metric is "no value", same as None.
            if isinstance(value, float) and not math.isfinite(value):
                continue
            record[name] = value
        if self.remote:
            record["remote"] = True
        return record

    def to_line(self) -> str:
        return json.dumps(self.to_record(), sort_keys=True,
                          separators=(",", ":"))


def event_from_record(payload: Dict[str, Any]) -> Event:
    """Rebuild an :class:`Event` from one parsed JSON-line record.

    Raises ``ValueError`` on a foreign schema so tail readers can skip
    lines that are not event records.
    """
    if payload.get("schema") != EVENTS_SCHEMA:
        raise ValueError(
            f"unsupported event schema {payload.get('schema')!r} "
            f"(expected {EVENTS_SCHEMA})")
    known = {f.name for f in dataclasses.fields(Event)} - {"result"}
    return Event(**{name: value for name, value in payload.items()
                    if name in known})


def run_event(index: int, spec: RunSpec, result: RunResult,
              cache_hit: bool, *,
              key: Optional[str] = None,
              shard_index: Optional[int] = None,
              owner: Optional[str] = None,
              remote: bool = False) -> Event:
    """The ``finish`` (or ``cache-hit``) record of one completed run."""
    platform_key, workload_key = spec.result_key
    return Event(kind=CACHE_HIT if cache_hit else RUN_FINISH,
                 index=index, platform_key=platform_key,
                 workload_key=workload_key, cache_hit=cache_hit,
                 operations_per_second=result.operations_per_second,
                 key=key, shard_index=shard_index, owner=owner,
                 remote=remote, result=result)


def start_event(index: int, spec: RunSpec, *,
                shard_index: Optional[int] = None) -> Event:
    """The ``start`` record of one dispatched run."""
    platform_key, workload_key = spec.result_key
    return Event(kind=RUN_START, index=index, platform_key=platform_key,
                 workload_key=workload_key, shard_index=shard_index)


def claim_event(shard_index: int, owner: str) -> Event:
    """The ``shard-claimed`` record of the sharded tier."""
    return Event(kind=SHARD_CLAIMED, shard_index=shard_index, owner=owner)


def job_event(kind: str, job_id: str, tenant: str, *,
              state: Optional[str] = None,
              key: Optional[str] = None,
              experiment: Optional[str] = None,
              total: Optional[int] = None,
              owner: Optional[str] = None) -> Event:
    """A service-job lifecycle record (``job-queued``/``job-start``/
    ``job-finish``).

    ``key`` carries the job's execution key (the submission-dedup address,
    see :mod:`repro.serve.jobs`), and a terminal ``job-finish`` record in an
    execution's event stream is the marker long-poll watchers use to tell
    "stream complete" from "worker still running".
    """
    return Event(kind=kind, job=job_id, tenant=tenant, state=state, key=key,
                 experiment=experiment, total=total, owner=owner)


def append_event(path: Path, event: Event, *, mode: str = "a") -> Path:
    """Append one event line to *path* (``mode="w"`` truncates first).

    Appends are plain ``O_APPEND`` writes of one short line: every progress
    file has exactly one writer (the worker owning that shard), so lines
    never interleave, and a reader polling the file sees only whole lines
    plus at most one incomplete tail — which :func:`read_events` leaves for
    the next poll.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open(mode, encoding="utf-8") as handle:
        handle.write(event.to_line() + "\n")
    return path


def read_events(path: Path, offset: int = 0) -> Tuple[List[Event], int]:
    """Read the complete event lines of *path* starting at byte *offset*.

    Returns the parsed events and the new offset.  This is the tail
    primitive: callers keep the returned offset and poll again later; an
    incomplete final line (a worker mid-append) is not consumed, and
    malformed complete lines are skipped rather than wedging the tailer.
    A missing file reads as empty — the worker has not started yet.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            handle.seek(offset)
            data = handle.read()
    except FileNotFoundError:
        return [], offset
    events: List[Event] = []
    consumed = 0
    for raw in data.split(b"\n")[:-1]:  # the piece after the last \n waits
        consumed += len(raw) + 1
        try:
            events.append(event_from_record(
                json.loads(raw.decode("utf-8"))))
        except (ValueError, UnicodeDecodeError):
            continue
    return events, offset + consumed


def tail_bytes(path: Path, offset: int = 0) -> Tuple[bytes, int]:
    """Raw complete-line bytes of *path* from byte *offset*, plus new offset.

    The wire-level sibling of :func:`read_events`, used by the serve
    daemon's HTTP event streamer: lines are relayed to clients verbatim (no
    parse/re-serialise round trip), an incomplete final line is left for
    the next poll, and a missing file reads as empty.  When the file is
    *shorter* than the requested offset — a restarted execution truncated
    and rewrote the stream — reading restarts from byte 0 rather than
    waiting forever past the end; run-event consumers dedupe on ``index``,
    so the replayed prefix is harmless.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
    except OSError:
        return b"", offset
    if size < offset:
        offset = 0
    try:
        with path.open("rb") as handle:
            handle.seek(offset)
            data = handle.read()
    except OSError:
        return b"", offset
    cut = data.rfind(b"\n")
    if cut < 0:
        return b"", offset
    return data[:cut + 1], offset + cut + 1
