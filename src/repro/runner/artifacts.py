"""Versioned JSON artifacts and the content-addressed run cache.

Two kinds of files live under the artifact directory:

* ``<experiment>.json`` — one **experiment artifact** per named experiment:
  the schema version, the scale, a hash of the full system configuration and
  one record per run with every metric the figures plot.  CI uploads these
  so a perf regression is a JSON diff, not a rerun.

* ``cache/<key>.json`` — one **run artifact** per executed run, stored under
  the SHA-256 of the canonical JSON of (schema version, run spec, scale,
  config).  Re-executing an experiment whose inputs did not change resolves
  every run from this cache without touching a worker pool; any change to
  the spec, the scale or any config field changes the key and forces a
  re-run.

Round-tripping is exact: JSON serialises Python floats via their shortest
repr, which ``json.loads`` parses back to the identical IEEE-754 double, so
a cache hit reproduces the original ``RunResult`` bit for bit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import socket
import time
import typing
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..analysis.experiments import ExperimentResult
from ..config import SystemConfig
from ..energy.accounting import EnergyBreakdown
from ..platforms.base import RunResult
from ..workloads.registry import ExperimentScale
from .specs import RunSpec

#: Bump when the serialised layout of a run record changes.
RUN_SCHEMA = "repro.run/1"
#: Bump when the experiment artifact layout changes.
EXPERIMENT_SCHEMA = "repro.experiment/1"


def canonical_json(payload: Any) -> str:
    """Deterministic JSON used for hashing (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


#: Disambiguates temp files within one process (several threads/calls).
_TMP_COUNTER = itertools.count()


def atomic_write_text(path: Path, text: str) -> Path:
    """Write *text* to *path* atomically (same-directory temp + rename).

    ``os.replace`` of a file in the same directory is atomic on POSIX and
    NT, so readers polling the path — concurrent shard workers sharing a run
    cache or a spool directory over NFS — observe either the previous
    content or the complete new content, never a torn write.  The temp name
    carries hostname, PID and a counter: PIDs alone collide across hosts
    (and are reused in containers), and two writers sharing a temp path
    would interleave and promote torn bytes.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{socket.gethostname()}"
                         f".{os.getpid()}.{next(_TMP_COUNTER)}.tmp")
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: Path, payload: Any) -> Path:
    """Atomically write *payload* in the one artifact JSON format.

    Every artifact writer (cache entries, experiment artifacts, shard
    manifests/claims/results) goes through here so the on-disk formatting
    can never diverge between them.
    """
    return atomic_write_text(path,
                             json.dumps(payload, sort_keys=True, indent=1))


def config_to_dict(config: SystemConfig) -> Dict[str, Any]:
    return dataclasses.asdict(config)


def _dataclass_from_dict(cls: type, payload: Dict[str, Any]) -> Any:
    """Recursively rebuild a (frozen, nested) config dataclass from asdict."""
    hints = typing.get_type_hints(cls)
    kwargs: Dict[str, Any] = {}
    for field_info in dataclasses.fields(cls):
        value = payload[field_info.name]
        hint = hints[field_info.name]
        if dataclasses.is_dataclass(hint) and isinstance(value, dict):
            value = _dataclass_from_dict(hint, value)
        kwargs[field_info.name] = value
    return cls(**kwargs)


def config_from_dict(payload: Dict[str, Any]) -> SystemConfig:
    """Inverse of :func:`config_to_dict`, exact for every config field.

    Shard manifests freeze the planner's scaled configuration as plain JSON;
    workers on other hosts rebuild the identical ``SystemConfig`` from it,
    which is what keeps their run-cache keys — and therefore their results —
    byte-compatible with the plan.
    """
    return _dataclass_from_dict(SystemConfig, payload)


def config_hash_of(config: SystemConfig) -> str:
    """``sha256:<hex>`` digest of the canonical config JSON."""
    digest = hashlib.sha256(
        canonical_json(config_to_dict(config)).encode("utf-8")).hexdigest()
    return f"sha256:{digest}"


def scale_to_dict(scale: ExperimentScale) -> Dict[str, Any]:
    return dataclasses.asdict(scale)


def scale_from_dict(payload: Dict[str, Any]) -> ExperimentScale:
    return ExperimentScale(**payload)


def run_cache_key(spec: RunSpec, config: SystemConfig,
                  scale: ExperimentScale) -> str:
    """Content address of one run: hash of everything that determines it.

    ``trace:<path>`` workloads are normalised before hashing: a file whose
    recorded provenance matches this run's scale and dataset override is
    bit-identical to the in-memory build of its source workload, so the
    key collapses to the plain workload name — the run cache, shard
    manifests and ``repro serve`` dedup then treat file-backed and
    in-memory submissions of the same workload as the same run.  Any other
    trace file keys on its chunking-invariant content hash, never on its
    path.
    """
    spec_payload = spec.canonical()
    scale_payload = scale_to_dict(scale)
    if spec.workload.startswith("trace:"):
        from ..trace.format import trace_run_identity  # lazy: no cycle
        spec_payload["workload"] = trace_run_identity(
            spec.workload, scale_payload, spec.dataset_bytes_override)
    elif spec.workload.startswith("scenario:"):
        # Same normalisation one level down: every trace-file tenant keys
        # on content (or collapses to its provenance workload), never on
        # a path, so scenario submissions dedup content-addressed too.
        from ..scenario.spec import scenario_run_identity  # lazy: no cycle
        spec_payload["workload"] = scenario_run_identity(
            spec.workload, scale_payload)
    digest = hashlib.sha256(canonical_json({
        "schema": RUN_SCHEMA,
        "spec": spec_payload,
        "scale": scale_payload,
        "config": config_to_dict(config),
    }).encode("utf-8"))
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# RunResult (de)serialisation
# ---------------------------------------------------------------------------


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Flatten a RunResult into JSON-serialisable plain data."""
    return {
        "platform": result.platform,
        "workload": result.workload,
        "suite": result.suite,
        "operation_unit": result.operation_unit,
        "operations": result.operations,
        "total_ns": result.total_ns,
        "app_ns": result.app_ns,
        "os_ns": result.os_ns,
        "ssd_ns": result.ssd_ns,
        "memory_stall_ns": result.memory_stall_ns,
        "compute_ns": result.compute_ns,
        "instructions": result.instructions,
        "memory_accesses": result.memory_accesses,
        "offchip_accesses": result.offchip_accesses,
        "ipc": result.ipc,
        "mips": result.mips,
        "energy": {
            "cpu_nj": result.energy.cpu_nj,
            "nvdimm_nj": result.energy.nvdimm_nj,
            "internal_dram_nj": result.energy.internal_dram_nj,
            "znand_nj": result.energy.znand_nj,
        },
        "memory_delay": dict(result.memory_delay),
        "extras": dict(result.extras),
        # Per-tenant scenario statistics travel only when present, so
        # pre-scenario artifacts and cache entries stay byte-stable.
        **({"tenants": {name: dict(stats)
                        for name, stats in result.tenants.items()}}
           if result.tenants else {}),
    }


def run_result_from_dict(payload: Dict[str, Any]) -> RunResult:
    """Rebuild the exact RunResult a previous run serialised."""
    return RunResult(
        platform=payload["platform"],
        workload=payload["workload"],
        suite=payload["suite"],
        operation_unit=payload["operation_unit"],
        operations=payload["operations"],
        total_ns=payload["total_ns"],
        app_ns=payload["app_ns"],
        os_ns=payload["os_ns"],
        ssd_ns=payload["ssd_ns"],
        memory_stall_ns=payload["memory_stall_ns"],
        compute_ns=payload["compute_ns"],
        instructions=payload["instructions"],
        memory_accesses=payload["memory_accesses"],
        offchip_accesses=payload["offchip_accesses"],
        ipc=payload["ipc"],
        mips=payload["mips"],
        energy=EnergyBreakdown(**payload["energy"]),
        memory_delay=dict(payload["memory_delay"]),
        extras=dict(payload["extras"]),
        tenants={name: dict(stats)
                 for name, stats in (payload.get("tenants") or {}).items()},
    )


# ---------------------------------------------------------------------------
# Content-addressed run cache
# ---------------------------------------------------------------------------


class RunCache:
    """Stores one JSON file per run, addressed by :func:`run_cache_key`.

    ``root=None`` disables the cache entirely (every lookup misses, stores
    are dropped).  ``--force`` semantics live in the runner: it skips
    :meth:`load` but still calls :meth:`store`, refreshing the entries.
    """

    def __init__(self, root: Optional[Path]) -> None:
        self.root = Path(root) if root is not None else None
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def path_for(self, key: str) -> Optional[Path]:
        if self.root is None:
            return None
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[RunResult]:
        path = self.path_for(key)
        if path is None or not path.is_file():
            self.misses += 1
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if payload.get("schema") != RUN_SCHEMA:
            self.misses += 1
            return None
        self.hits += 1
        return run_result_from_dict(payload["result"])

    def store(self, key: str, spec: RunSpec, result: RunResult) -> None:
        path = self.path_for(key)
        if path is None:
            return
        payload = {
            "schema": RUN_SCHEMA,
            "key": key,
            "spec": spec.canonical(),
            "result": run_result_to_dict(result),
        }
        # Atomic so shard workers sharing one cache directory can never
        # observe (or leave behind, if killed mid-store) a torn entry; two
        # workers racing on the same key both write the identical bytes, and
        # whichever rename lands last wins harmlessly.
        atomic_write_json(path, payload)


# ---------------------------------------------------------------------------
# Experiment artifacts
# ---------------------------------------------------------------------------


def experiment_to_artifact(name: str, experiment: ExperimentResult,
                           config: SystemConfig,
                           meta: Optional[Dict[str, Any]] = None
                           ) -> Dict[str, Any]:
    """Assemble the versioned experiment artifact payload."""
    runs: List[Dict[str, Any]] = []
    for (platform_key, workload_key), result in experiment.results.items():
        runs.append({
            "platform_key": platform_key,
            "workload_key": workload_key,
            "operations_per_second": result.operations_per_second,
            "result": run_result_to_dict(result),
        })
    payload: Dict[str, Any] = {
        "schema": EXPERIMENT_SCHEMA,
        "experiment": name,
        "created_unix": time.time(),
        "scale": scale_to_dict(experiment.scale),
        "config_hash": config_hash_of(config),
        "runs": runs,
    }
    if meta:
        payload["meta"] = dict(meta)
    return payload


def write_experiment_artifact(directory: Path, name: str,
                              experiment: ExperimentResult,
                              config: SystemConfig,
                              meta: Optional[Dict[str, Any]] = None) -> Path:
    """Write ``<directory>/<name>.json`` and return its path."""
    path = Path(directory) / f"{name}.json"
    return atomic_write_json(path,
                             experiment_to_artifact(name, experiment,
                                                    config, meta))


def load_experiment_artifact(path: Path) -> Dict[str, Any]:
    """Read and validate one experiment artifact."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != EXPERIMENT_SCHEMA:
        raise ValueError(
            f"{path}: unsupported artifact schema {payload.get('schema')!r} "
            f"(expected {EXPERIMENT_SCHEMA})")
    return payload


def experiment_from_artifact(payload: Dict[str, Any]) -> ExperimentResult:
    """Rebuild the ExperimentResult an artifact was written from."""
    experiment = ExperimentResult(scale=scale_from_dict(payload["scale"]))
    for run in payload["runs"]:
        experiment.add(run["platform_key"], run["workload_key"],
                       run_result_from_dict(run["result"]))
    return experiment
