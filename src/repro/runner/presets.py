"""Named experiment presets: the figure matrices as reusable definitions.

Each preset names the (platforms x workloads) matrix one of the paper's
figures replays, so the CLI, the benchmark harness and ad-hoc scripts all
agree on what e.g. "fig16" means.  Presets hold only names — the scale and
config are supplied by the runner — so they are trivially serialisable and
hashable into artifact metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..platforms.registry import PLATFORM_NAMES
from ..workloads.registry import (
    ExperimentScale,
    MICROBENCH_WORKLOADS,
    SQLITE_WORKLOADS,
    all_workload_names,
)

#: Scale used by ``repro run --smoke`` (and the CI benchmark smoke job):
#: small enough that the full preset list replays in seconds, large enough
#: that the relative platform ordering still matches the figures.
SMOKE_SCALE = ExperimentScale(capacity_scale=1 / 256, min_accesses=200,
                              max_accesses=600)

_HAMS_VARIANTS = ("hams-LP", "hams-LE", "hams-TP", "hams-TE")
_ALL_WORKLOADS = tuple(all_workload_names())


@dataclass(frozen=True)
class ExperimentPreset:
    """One named experiment matrix."""

    name: str
    figure: str
    description: str
    platforms: Tuple[str, ...]
    workloads: Tuple[str, ...]
    baseline: str = "mmap"

    @property
    def run_count(self) -> int:
        return len(self.platforms) * len(self.workloads)


_PRESETS: Dict[str, ExperimentPreset] = {
    preset.name: preset for preset in (
        ExperimentPreset(
            name="fig16",
            figure="Figure 16",
            description="Application performance: every platform on every "
                        "Table III workload",
            platforms=tuple(PLATFORM_NAMES),
            workloads=_ALL_WORKLOADS),
        ExperimentPreset(
            name="fig17",
            figure="Figure 17",
            description="Execution-time breakdown (app/OS/SSD) of mmap and "
                        "the HAMS variants",
            platforms=("mmap",) + _HAMS_VARIANTS,
            workloads=_ALL_WORKLOADS),
        ExperimentPreset(
            name="fig18",
            figure="Figure 18",
            description="Memory access delay breakdown of the HAMS variants",
            platforms=_HAMS_VARIANTS,
            workloads=_ALL_WORKLOADS,
            baseline="hams-LP"),
        ExperimentPreset(
            name="fig19",
            figure="Figure 19",
            description="Energy breakdown of mmap and the HAMS variants",
            platforms=("mmap",) + _HAMS_VARIANTS,
            workloads=_ALL_WORKLOADS),
        ExperimentPreset(
            name="mmf",
            figure="Figure 6",
            description="MMF (mmap) system on SATA / NVMe / ULL-Flash SSDs",
            platforms=("mmap-sata", "mmap-nvme", "mmap-ull"),
            workloads=tuple(MICROBENCH_WORKLOADS) + tuple(SQLITE_WORKLOADS),
            baseline="mmap-sata"),
        ExperimentPreset(
            name="bypass",
            figure="Figure 7b",
            description="IPC of the naive storage-as-memory bypass "
                        "strategies",
            platforms=("bypass-nvdimm", "bypass-ull", "bypass-ull-buff"),
            workloads=("rndRd", "rndWr", "rndSel", "update"),
            baseline="bypass-nvdimm"),
        ExperimentPreset(
            name="sqlite",
            figure="Figure 16b",
            description="SQLite throughput on the main comparison platforms",
            platforms=("mmap", "flatflash-M", "optane-M", "hams-LE",
                       "hams-TE", "oracle"),
            workloads=tuple(SQLITE_WORKLOADS)),
        ExperimentPreset(
            name="smoke",
            figure="CI smoke",
            description="Tiny cross-section of Fig. 16 for CI: four "
                        "platforms, three workload classes",
            platforms=("mmap", "hams-LE", "hams-TE", "oracle"),
            workloads=("seqRd", "update", "BFS")),
    )
}


def preset_names() -> List[str]:
    return list(_PRESETS)


def get_preset(name: str) -> ExperimentPreset:
    try:
        return _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; expected one of {preset_names()}"
        ) from None
