"""Picklable run specifications for the parallel experiment runner.

A :class:`RunSpec` is the unit of work the runner fans out: it names a
platform (by registry name), a workload (by Table III name) and the optional
knobs the figure harnesses sweep — a dataset override (Fig. 20b), per-section
config overrides (Fig. 20a's MoS page-size sweep) and platform constructor
keyword arguments (the oracle DIMM capacity).  Everything in a spec is plain
data, so it pickles cheaply to worker processes and serialises canonically
for the content-addressed run cache; workers rebuild the live platform and
trace objects locally from the spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from ..config import SystemConfig

#: Config sections a RunSpec may override, mirroring SystemConfig's fields.
CONFIG_SECTIONS = ("cpu", "caches", "os_stack", "nvdimm", "ssd", "pcie",
                   "sata", "nvme", "hams", "optane", "energy")


@dataclass(frozen=True)
class RunSpec:
    """One (platform, workload) replay, fully described by plain data.

    ``label`` renames the platform axis of the experiment result — parameter
    sweeps run the same platform several times under different keys (e.g.
    ``"4KB"`` ... ``"1024KB"`` for the page-size sweep).  ``workload_label``
    renames the workload axis the same way: file-backed ``trace:<path>``
    workloads use it to report under the trace's recorded workload name, so
    their rows line up with (and diff cleanly against) in-memory baselines.
    """

    platform: str
    workload: str
    dataset_bytes_override: Optional[int] = None
    config_overrides: Mapping[str, Mapping[str, Any]] = field(
        default_factory=dict)
    platform_kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: Optional[str] = None
    workload_label: Optional[str] = None

    @property
    def result_key(self) -> Tuple[str, str]:
        """Key under which this run lands in an ``ExperimentResult``."""
        return (self.label if self.label is not None else self.platform,
                self.workload_label if self.workload_label is not None
                else self.workload)

    def canonical(self) -> Dict[str, Any]:
        """A deterministically ordered dict used for hashing and artifacts."""
        return {
            "platform": self.platform,
            "workload": self.workload,
            "dataset_bytes_override": self.dataset_bytes_override,
            "config_overrides": {
                section: dict(sorted(fields.items()))
                for section, fields in sorted(self.config_overrides.items())
            },
            "platform_kwargs": dict(sorted(self.platform_kwargs.items())),
        }

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON form: the canonical payload plus the result-key label.

        The labels rename the experiment-result key but do not change what
        is executed, so they stay out of :meth:`canonical` (and hence out of
        the run-cache key) while shard manifests still need them to
        reproduce the exact experiment layout.
        """
        payload = self.canonical()
        payload["label"] = self.label
        payload["workload_label"] = self.workload_label
        return payload

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "RunSpec":
        """Rebuild the exact spec :meth:`to_dict` serialised."""
        return RunSpec(
            platform=payload["platform"],
            workload=payload["workload"],
            dataset_bytes_override=payload.get("dataset_bytes_override"),
            config_overrides={
                section: dict(fields)
                for section, fields in
                dict(payload.get("config_overrides") or {}).items()
            },
            platform_kwargs=dict(payload.get("platform_kwargs") or {}),
            label=payload.get("label"),
            workload_label=payload.get("workload_label"),
        )


def apply_config_overrides(config: SystemConfig,
                           overrides: Mapping[str, Mapping[str, Any]]
                           ) -> SystemConfig:
    """Return *config* with per-section field overrides applied.

    ``overrides`` maps a :data:`CONFIG_SECTIONS` name to ``{field: value}``,
    e.g. ``{"hams": {"mos_page_bytes": 4096}}``.  The input config is frozen
    and never mutated.
    """
    for section, fields in overrides.items():
        if section not in CONFIG_SECTIONS:
            raise ValueError(
                f"unknown config section {section!r}; "
                f"expected one of {CONFIG_SECTIONS}")
        section_config = replace(getattr(config, section), **dict(fields))
        config = replace(config, **{section: section_config})
    return config


def matrix_specs(platform_names, workloads) -> list:
    """Specs for the full (platform x workload) matrix.

    Iteration order matches the serial ``ExperimentRunner.run_matrix`` loop
    (workloads outer, platforms inner) so serial and parallel executions
    enumerate — and therefore report — runs identically.

    ``trace:<path>`` workloads are annotated with a ``workload_label``
    taken from the trace file's recorded workload name (provenance first,
    then footer metadata), so a file-backed run reports under the same
    result key as the in-memory run it replays — which is what lets CI
    threshold-diff a trace-smoke artifact against the committed baseline.
    Unreadable or unnamed files simply keep the ``trace:`` key.
    """
    return [RunSpec(platform=platform, workload=workload,
                    workload_label=workload_display_label(workload))
            for workload in workloads
            for platform in platform_names]


def workload_display_label(workload: str) -> Optional[str]:
    """A human-readable label for non-registry workload sources.

    ``trace:`` sources report the trace file's recorded workload name
    (provenance first, then footer metadata); ``scenario:`` sources report
    the scenario's name.  Registry names — already readable — and
    unreadable/unnamed files return ``None``, keeping the raw key.
    Report tables and ``repro list`` use this so tenant mixes and trace
    files never print as canonical paths or JSON blobs.
    """
    if workload.startswith("scenario:"):
        from ..scenario.spec import parse_scenario_source  # lazy import
        try:
            return parse_scenario_source(workload).name
        except ValueError:
            return None  # execution will surface the real error
    if not workload.startswith("trace:"):
        return None
    from ..trace.format import (  # lazy: keeps spec import featherweight
        TraceFormatError,
        trace_source_path,
        trace_summary,
    )
    try:
        summary = trace_summary(trace_source_path(workload))
    except TraceFormatError:
        return None  # execution will surface the real error with context
    provenance = summary.get("provenance") or {}
    return provenance.get("workload") or summary["meta"].get("name")
