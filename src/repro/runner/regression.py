"""Artifact diffing: the ``repro report --diff`` perf-regression gate.

Two experiment artifacts (see :mod:`repro.runner.artifacts`) are compared
run by run on their throughput metric.  The replay is deterministic, so a
genuine re-run of unchanged code reproduces the baseline bit for bit; any
relative drop beyond the threshold therefore means the *code* changed the
modelled performance, which is exactly what the CI gate (a committed
baseline artifact vs. a fresh smoke run) is there to catch.  Improvements
and sub-threshold drift are reported but do not fail the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple

from .artifacts import load_experiment_artifact

#: Default relative-regression tolerance (2 %).
DEFAULT_THRESHOLD = 0.02


@dataclass(frozen=True)
class DiffEntry:
    """One (platform, workload) run present in both artifact sets."""

    platform: str
    workload: str
    baseline: float
    candidate: float

    @property
    def relative_change(self) -> float:
        """Candidate over baseline, minus one (negative = slower)."""
        if self.baseline == 0:
            return 0.0 if self.candidate == 0 else float("inf")
        return self.candidate / self.baseline - 1.0


@dataclass
class DiffReport:
    """Outcome of comparing a candidate artifact against a baseline."""

    baseline_name: str
    candidate_name: str
    threshold: float
    entries: List[DiffEntry] = field(default_factory=list)
    #: Runs present in the baseline but missing from the candidate.
    missing: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def regressions(self) -> List[DiffEntry]:
        """Entries whose relative drop exceeds the threshold."""
        return [entry for entry in self.entries
                if entry.relative_change < -self.threshold]

    @property
    def passed(self) -> bool:
        """True when nothing regressed and no baseline run disappeared."""
        return not self.regressions and not self.missing

    def format(self) -> str:
        """Human-readable summary table plus the verdict line."""
        lines = [f"diff: {self.candidate_name} vs baseline "
                 f"{self.baseline_name} "
                 f"(threshold {self.threshold:.1%})"]
        header = (f"{'platform':14s} {'workload':9s} {'baseline':>14s} "
                  f"{'candidate':>14s} {'change':>9s}")
        lines.append(header)
        lines.append("-" * len(header))
        for entry in sorted(self.entries,
                            key=lambda e: e.relative_change):
            marker = " <-- REGRESSION" \
                if entry.relative_change < -self.threshold else ""
            lines.append(
                f"{entry.platform:14s} {entry.workload:9s} "
                f"{entry.baseline:14.1f} {entry.candidate:14.1f} "
                f"{entry.relative_change:+9.2%}{marker}")
        for platform, workload in self.missing:
            lines.append(f"{platform:14s} {workload:9s} "
                         f"{'(missing in candidate)':>39s} <-- REGRESSION")
        verdict = ("PASS" if self.passed else
                   f"FAIL ({len(self.regressions)} regression(s), "
                   f"{len(self.missing)} missing run(s))")
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


def _runs_by_key(payload: Dict[str, Any]) -> Dict[Tuple[str, str], float]:
    return {(run["platform_key"], run["workload_key"]):
            run["operations_per_second"]
            for run in payload["runs"]}


def diff_payloads(baseline: Dict[str, Any], candidate: Dict[str, Any],
                  threshold: float = DEFAULT_THRESHOLD) -> DiffReport:
    """Compare two loaded experiment artifact payloads."""
    if threshold < 0:
        raise ValueError("threshold cannot be negative")
    report = DiffReport(baseline_name=baseline.get("experiment", "baseline"),
                        candidate_name=candidate.get("experiment",
                                                     "candidate"),
                        threshold=threshold)
    candidate_runs = _runs_by_key(candidate)
    for key, baseline_value in sorted(_runs_by_key(baseline).items()):
        if key not in candidate_runs:
            report.missing.append(key)
            continue
        report.entries.append(DiffEntry(platform=key[0], workload=key[1],
                                        baseline=baseline_value,
                                        candidate=candidate_runs[key]))
    return report


def diff_artifacts(baseline_path: Path, candidate_path: Path,
                   threshold: float = DEFAULT_THRESHOLD) -> DiffReport:
    """Load two artifact files and compare them."""
    return diff_payloads(load_experiment_artifact(Path(baseline_path)),
                         load_experiment_artifact(Path(candidate_path)),
                         threshold=threshold)
